//! Quickstart: generate uncoordinated unique IDs with every algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Spawns a few independent instances of each algorithm over a 64-bit ID
//! space (the size RocksDB uses for cache keys per 64-bit half), draws a
//! handful of IDs from each, and prints them — then shows the paper's §3
//! layout diagrams on a toy universe so the structural differences are
//! visible at a glance.

use uuidp_core::diagram::render_captioned;
use uuidp_core::prelude::*;

fn main() {
    // --- Part 1: production-sized universe. -----------------------------
    let space = IdSpace::with_bits(64).expect("64-bit space");
    println!("ID space: m = 2^64\n");

    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(space)),
        Box::new(Cluster::new(space)),
        Box::new(Bins::new(space, 1 << 20)),
        Box::new(ClusterStar::new(space)),
        Box::new(BinsStar::new(space)),
    ];

    for alg in &algorithms {
        println!("{}:", alg.name());
        // Three uncoordinated instances — think three database nodes that
        // have never heard of each other.
        for node in 0..3u64 {
            let mut gen = alg.spawn(0xFEED ^ node);
            let ids: Vec<String> = (0..4)
                .map(|_| format!("{:#034x}", gen.next_id().expect("fresh space").value()))
                .collect();
            println!("  node {node}: {}", ids.join(", "));
        }
        println!();
    }

    // --- Part 2: the paper's diagrams on a toy universe. ----------------
    println!("Layout diagrams (paper §3), m = 20, 8 requests:\n");
    let toy = IdSpace::new(20).expect("toy space");
    let toys: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(toy)),
        Box::new(Cluster::new(toy)),
        Box::new(Bins::new(toy, 3)),
        Box::new(ClusterStar::new(toy)),
    ];
    for alg in &toys {
        // Find a seed that serves all 8 requests (Cluster★ can fragment
        // on a 20-ID universe).
        let seed = (0..50)
            .find(|&s| alg.spawn(s).skip(8).is_ok())
            .expect("serving seed");
        let mut gen = alg.spawn(seed);
        println!("{}\n", render_captioned(&alg.name(), gen.as_mut(), 8, 20));
    }
}
