//! Capacity planning: how many IDs can a deployment safely draw?
//!
//! ```text
//! cargo run --example capacity_planning
//! ```
//!
//! The practical question behind the paper: given an ID width and a
//! collision-probability budget, how many objects can a fleet of `n`
//! uncoordinated instances create? We answer it with the exact/closed-form
//! machinery from `uuidp-analysis` — no simulation — for both Random
//! (GUIDs) and Cluster (RocksDB), at 64 and 128 bits.

use uuidp_adversary::profile::DemandProfile;
use uuidp_analysis::exact::cluster_union_bounds;
use uuidp_analysis::theory;

fn main() {
    println!("Safe total demand d for a collision budget, n uncoordinated instances\n");
    for bits in [64u32, 128] {
        // Work in f64 via the theory formulas; m up to 2^128 is fine.
        let m = 2f64.powi(bits as i32);
        println!("--- {bits}-bit IDs (m = 2^{bits}) ---");
        println!(
            "{:<10} {:>14} {:>22} {:>22}",
            "budget", "n", "d_max (Random)", "d_max (Cluster)"
        );
        for budget in [1e-9f64, 1e-6, 1e-3] {
            for n in [16f64, 1024.0, 65536.0] {
                // Random: p ≈ d²/m  ⇒  d ≈ √(p·m).
                let d_random = (budget * m).sqrt();
                // Cluster: p ≈ n·d/m ⇒  d ≈ p·m/n.
                let d_cluster = budget * m / n;
                println!(
                    "{:<10.0e} {:>14} {:>22} {:>22}",
                    budget,
                    n,
                    format_pow2(d_random),
                    format_pow2(d_cluster)
                );
            }
        }
        println!();
    }

    // A concrete sanity check against the exact machinery at a size the
    // exact formulas can verify: m = 2^40, n = 1024, one million objects.
    let m = 1u128 << 40;
    let n = 1024usize;
    let per_instance = 1u128 << 10;
    let profile = DemandProfile::uniform(n, per_instance);
    let (lo, hi) = cluster_union_bounds(&profile, m);
    let theta = theory::cluster(&profile, m);
    println!(
        "Exact check at m = 2^40, n = 1024, d = 2^20 (Cluster):\n  \
         exact collision probability in [{lo:.6}, {hi:.6}] — Θ-prediction {theta:.6}"
    );
    println!(
        "\nReading: at 128 bits, Random is exhausted near 2^64 objects for any\n\
         realistic budget, while Cluster pushes the wall to ~2^128/n — the paper's\n\
         'orders of magnitude beyond Random's capacity'."
    );
}

fn format_pow2(x: f64) -> String {
    if x < 1.0 {
        "< 1".to_string()
    } else {
        format!("~2^{:.1}", x.log2())
    }
}
