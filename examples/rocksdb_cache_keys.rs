//! The motivating system: RocksDB-style SST unique IDs and cache keys.
//!
//! ```text
//! cargo run --example rocksdb_cache_keys
//! ```
//!
//! Runs the same flush/read/compact/migrate workload over a deliberately
//! scaled-down ID space with two ID algorithms — GUID-style Random and
//! RocksDB's Cluster — and reports ID collisions and the silent cache
//! corruptions they cause. This is the paper's introduction as a runnable
//! program: at `d ≈ √m` files, Random starts serving wrong blocks;
//! Cluster at the same scale is clean.

use uuidp_core::prelude::*;
use uuidp_kvstore::prelude::*;

fn main() {
    // Scaled down from m = 2^128 so the Random failure is observable in
    // seconds: at m = 2^22 the birthday threshold √m is ~2^11 files.
    let space = IdSpace::with_bits(22).expect("space");
    let config = WorkloadConfig {
        instances: 12,
        operations: 40_000,
        blocks_per_file: 4,
        cache_capacity: 1 << 14,
        flush_weight: 4000,
        read_weight: 4000,
        compact_weight: 1000,
        migrate_weight: 999,
        restart_weight: 1, // rare crash-restarts, as in production
        lease_batch: 0,
    };

    println!("Deployment: 12 store instances, shared block cache, m = 2^22 (scaled)\n");
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Random::new(space)),
        Box::new(Cluster::new(space)),
        Box::new(SessionCounter::new(12, 10)),
    ];

    for alg in &algorithms {
        let report = run_workload(alg.as_ref(), config, 0xDB);
        println!("ID algorithm: {}", alg.name());
        println!("  files created:      {}", report.files_created);
        println!("  migrations:         {}", report.migrations);
        println!("  compactions:        {}", report.compactions);
        println!("  block reads:        {}", report.reads);
        println!("  ID collisions:      {}", report.id_collisions);
        println!(
            "  corrupt reads:      {} ({:.4}% of reads)",
            report.corrupt_reads,
            100.0 * report.corruption_rate()
        );
        println!(
            "  cache hit rate:     {:.1}%",
            100.0 * report.cache.hits as f64
                / (report.cache.hits + report.cache.misses).max(1) as f64
        );
        println!();
    }

    println!(
        "Reading: Random's collisions scale with d²/m (birthday); Cluster's with n·d/m.\n\
         At production scale (m = 2^128) the same separation is what lets RocksDB keep\n\
         128-bit cache keys collision-free beyond 2^64 objects — see the paper, §1."
    );
}
