//! The adaptive game: attack Cluster, watch Cluster★ shrug it off.
//!
//! ```text
//! cargo run --example adversarial_game
//! ```
//!
//! Plays the Lemma 7 nearest-pair attack and the RunHunter attack against
//! Cluster and Cluster★ on the same universe and budgets, printing the
//! measured collision probabilities side by side. A security-flavoured
//! demo of why an adaptive setting needs a different algorithm.

use uuidp_adversary::prelude::*;
use uuidp_core::prelude::*;
use uuidp_sim::prelude::*;

fn main() {
    let space = IdSpace::with_bits(20).expect("space");
    let m = space.size();
    let (n, d) = (16usize, 1u128 << 10);
    let trials = 4_000u64;

    println!("UUIDP adaptive game: m = 2^20, n = {n} instances, budget d = {d}\n");

    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Cluster::new(space)),
        Box::new(ClusterStar::new(space)),
    ];
    let attacks: Vec<Box<dyn AdversarySpec>> = vec![
        Box::new(NearestPair::new(n, d)),
        Box::new(RunHunter::new(n, d)),
    ];

    // Oblivious baseline: the same budget spent blindly (uniform profile).
    let uniform = DemandProfile::uniform(n, d / n as u128);
    println!(
        "{:<12} {:<24} {:>12}",
        "algorithm", "adversary", "p(collision)"
    );
    for alg in &algorithms {
        let (baseline, _) =
            estimate_oblivious(alg.as_ref(), &uniform, TrialConfig::new(trials * 4, 0xA11));
        println!(
            "{:<12} {:<24} {:>12.5}",
            alg.name(),
            "oblivious (uniform)",
            baseline.p_hat
        );
        for attack in &attacks {
            let (est, _) = estimate_adaptive(
                alg.as_ref(),
                attack.as_ref(),
                TrialConfig::new(trials, 0xA11),
            );
            println!(
                "{:<12} {:<24} {:>12.5}",
                alg.name(),
                attack.name(),
                est.p_hat
            );
        }
        println!();
    }

    let theory_cluster = (n * n) as f64 * d as f64 / m as f64;
    let theory_star = (n as f64 * d as f64 / m as f64) * (1.0 + d as f64 / n as f64).log2();
    println!("Lemma 7 lower bound for Cluster:   ~n²d/m        = {theory_cluster:.4}");
    println!("Theorem 8 upper bound for Cluster★: ~(nd/m)·log(1+d/n) = {theory_star:.4}");
    println!(
        "\nReading: the attack multiplies Cluster's collision probability by ~n,\n\
         while Cluster★'s doubling runs cap the damage at a log factor."
    );
}
