//! # uuidp — umbrella crate
//!
//! Re-exports the workspace's library crates under one roof so the
//! integration tests in `tests/` and the walkthroughs in `examples/`
//! can depend on a single package. Library users should depend on the
//! individual `uuidp-*` crates instead.

#![warn(missing_docs)]

pub use uuidp_adversary as adversary;
pub use uuidp_analysis as analysis;
pub use uuidp_client as client;
pub use uuidp_core as core;
pub use uuidp_fleet as fleet;
pub use uuidp_kvstore as kvstore;
pub use uuidp_netchaos as netchaos;
pub use uuidp_obs as obs;
pub use uuidp_service as service;
pub use uuidp_sim as sim;
