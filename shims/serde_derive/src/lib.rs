//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on snapshot types but
//! never serializes through a format crate, so the derives can expand to
//! nothing. Swapping in the real serde restores full functionality
//! without touching the annotated types.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
