//! Offline shim for `proptest` (see `shims/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, [`any`], numeric range
//! strategies, tuples, and [`collection::vec`]. Case generation is
//! deterministic — seeded from the test's module path and name — so runs
//! are exactly reproducible. There is no shrinking: a failing case
//! panics with the offending inputs left to the assertion message.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the test identified by `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// A value generator. The shim generates directly (no intermediate
/// `ValueTree`, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match ((hi - lo) as u128).checked_add(1) {
                    Some(span) => lo + (rng.next_u128() % span) as $t,
                    // Full-width inclusive u128 range.
                    None => (rng.next_u128() as $t).wrapping_add(lo),
                }
            }
        }
    )*};
}

impl_uint_ranges!(u8, u16, u32, u64, usize, u128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategy for a whole type's value space (shim: via `FullArbitrary`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types [`any`] can generate.
pub trait FullArbitrary: Sized {
    /// Generates an unconstrained value.
    fn full_arbitrary(rng: &mut TestRng) -> Self;
}

impl FullArbitrary for u64 {
    fn full_arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl FullArbitrary for u128 {
    fn full_arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl FullArbitrary for u32 {
    fn full_arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl FullArbitrary for bool {
    fn full_arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: FullArbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::full_arbitrary(rng)
    }
}

/// The `proptest::prelude::any` entry point.
pub fn any<T: FullArbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and a length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (shim: panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(test_id, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 1u128..=5, f in 0.25f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(v in collection::vec((0u128..50, 1u128..=4), 0..12)) {
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 50);
                prop_assert!((1..=4).contains(&b));
            }
        }

        #[test]
        fn full_width_inclusive_range_does_not_overflow(x in 0u128..=u128::MAX, y in 0u64..=u64::MAX) {
            // Exercises the checked_add(1) == None fallback (u128) and the
            // widened-span path (u64).
            let _ = (x, y);
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // x and y come from different stream positions; collisions are
            // possible but astronomically unlikely across the whole run.
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
