//! Offline shim for `parking_lot` (see `shims/README.md`).
//!
//! A `Mutex` with parking_lot's non-poisoning `lock()` signature,
//! implemented over `std::sync::Mutex`. Slower than the real crate but
//! semantically interchangeable for the workspace's uses.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that hands out guards without a poison
/// `Result`, matching `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
