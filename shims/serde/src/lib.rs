//! Offline shim for `serde` (see `shims/README.md`).
//!
//! Marker traits only: the workspace annotates snapshot types for
//! downstream persistence but contains no format crate, so no actual
//! serialization methods are required. The derive macros expand to
//! nothing; these traits exist so `use serde::{Serialize, Deserialize}`
//! resolves in both the type and macro namespaces.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
