//! Offline shim for `criterion` (see `shims/README.md`).
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with real wall-clock
//! measurement: warm-up, auto-calibrated iteration counts, and the
//! median over timed samples. No statistical regression analysis, no
//! HTML reports; output is one line per benchmark.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Number of timed samples per benchmark.
const SAMPLES: usize = 11;
/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(50);

/// Per-iteration throughput annotation, echoed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim treats all
/// variants identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched aggressively).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier, optionally `function/parameter`-structured.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An ID that is just a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The measurement driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration, set by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Benchmarks `routine` by timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP {
            std_black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        let batch = ((SAMPLE_TARGET.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        self.ns_per_iter = median(&mut samples) * 1e9;
    }

    /// Benchmarks `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up / calibrate.
        let mut per_call;
        let mut probe = 4u64;
        loop {
            let inputs: Vec<I> = (0..probe).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            per_call = t.elapsed().as_secs_f64() / probe as f64;
            if t.elapsed() >= Duration::from_millis(5) || probe >= 1 << 20 {
                break;
            }
            probe *= 4;
        }
        let batch = ((SAMPLE_TARGET.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        self.ns_per_iter = median(&mut samples) * 1e9;
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    samples[samples.len() / 2]
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its result line.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id.id);
        let ns = bencher.ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>12}/s", si(n as f64 / (ns * 1e-9), "elem"))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:>12}/s", si(n as f64 / (ns * 1e-9), "B"))
            }
            None => String::new(),
        };
        println!("{full:<56} time: {:>12}{rate}", fmt_ns(ns));
        self.criterion.results.push((full, ns));
        self
    }

    /// Ends the group (separator line, matching criterion's API).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_owned(),
            throughput: None,
        };
        group.bench_function(name, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // allow a substring filter as the first free argument (unused).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(4));
            g.bench_function(BenchmarkId::from_parameter("mul"), |b| {
                b.iter(|| std::hint::black_box(7u64).wrapping_mul(9))
            });
            g.bench_function("batched", |b| {
                b.iter_batched(|| 3u64, |x| x.wrapping_mul(11), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
    }
}
