//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Provides the three-method [`RngCore`] trait the workspace's own PRNGs
//! implement, plus [`rng`] as an OS-entropy-seeded generator for the
//! CLI's non-deterministic default mode.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The core RNG interface (the subset of `rand::RngCore` in use).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A process-local generator seeded from environmental entropy.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: u64,
}

impl ThreadRng {
    #[inline]
    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.splitmix() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.splitmix()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.splitmix().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Returns a generator seeded from ambient entropy (hasher randomness,
/// wall clock, and a process-wide counter). Not cryptographic — neither
/// is `rand::rng()`.
pub fn rng() -> ThreadRng {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // RandomState draws per-process random keys from the OS.
    let hasher_entropy = RandomState::new().build_hasher().finish();
    let clock = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    ThreadRng {
        state: hasher_entropy ^ clock.rotate_left(32) ^ count.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = rng();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 zero bytes from a random source is a 2^-104 event.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn successive_rngs_differ() {
        let (mut a, mut b) = (rng(), rng());
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
