//! # uuidp-fleet — the multi-node cluster harness
//!
//! Everything below `uuidp-fleet` simulates *n uncoordinated instances*
//! inside one process, or serves one node over TCP. This crate
//! exercises the paper's actual deployment shape: **many independent
//! nodes**, a router playing the adversary *across* them, and instances
//! that must survive crash-restarts without ever repeating an ID — the
//! RocksDB motivation (SST unique IDs, PRs #8990/#9126) made literal.
//!
//! ```text
//!                       Scheduler (uniform / skewed / adaptive hunter)
//!                            │ tenant t
//!                            ▼
//!    ┌──────────────────── Router ────────────────────┐
//!    │  tenant-affine: node = t mod N                 │
//!    │  one persistent connection per node            │
//!    │  global LeaseAudit (survives every crash)      │
//!    └──┬──────────────────┬──────────────────────┬───┘
//!       ▼ TCP              ▼ TCP                  ▼ TCP
//!   ┌────────┐        ┌────────┐   chaos:    ┌────────┐
//!   │ node 0 │        │ node 1 │ ◄─ crash ─  │ node 2 │ ...
//!   │ shards │        │ shards │   restart   │ shards │
//!   │ audit  │        │ audit  │             │ audit  │
//!   └───┬────┘        └───┬────┘             └───┬────┘
//!       ▼ write-ahead     ▼                      ▼
//!    node-0/           node-1/                node-2/   snapshot dirs
//! ```
//!
//! * [`cluster`] — booting, crashing, and restarting loopback nodes,
//!   each with a durable per-node state directory;
//! * [`router`] — tenant-affine placement, persistent connections, the
//!   cross-node request schedulers (reusing the `uuidp-adversary`
//!   strategies), and the crash-surviving **global collision audit**;
//! * [`run`] — the end-to-end runner and [`run::FleetReport`];
//! * [`series`] — per-`(node, incarnation)` time-series aggregation,
//!   the merged cluster windows and their same-seed fingerprint, and
//!   the multi-window burn-rate alert evaluators.
//!
//! The headline guarantees, pinned by the crate's tests and the
//! repository's integration suite:
//!
//! 1. **Determinism across topology** — for a fixed seed and schedule,
//!    the global audit's `duplicate_ids` is bit-identical for every
//!    `(nodes, shards, audit_threads)` combination.
//! 2. **Cross-node detection** — same-seed twin tenants on *different*
//!    nodes are invisible to every node-local audit and still counted
//!    exactly by the router's global audit.
//! 3. **Crash safety** — with chaos restarts on, recovered nodes
//!    contribute **zero** duplicates: recovery restores the persisted
//!    state and abandons the whole write-ahead reservation window
//!    (see [`uuidp_core::persist`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod router;
pub mod run;
pub mod series;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::cluster::{Fleet, FleetNode};
    pub use crate::router::{owner_key, Placement, Router, Scheduler};
    pub use crate::run::{run_fleet, FleetConfig, FleetReport, NodeReport};
    pub use crate::series::FleetSeries;
}
