//! Fleet topology: booting, crashing, and restarting loopback nodes.
//!
//! A [`Fleet`] owns `N` independent [`TcpServer`] nodes, each a full
//! `uuidp-service` instance (its own worker shards, audit pipeline, and
//! TCP front-end on an ephemeral loopback port) with its own durable
//! state directory under the fleet's root. Nodes share nothing at
//! runtime — the only cross-node artifact is the *seed convention*:
//! every node uses the same master seed, so a tenant's ID stream
//! depends only on its tenant number, never on which node serves it.
//! That is what lets the global audit pin bit-identical totals across
//! node counts (tenants are pinned to nodes, so no tenant is ever
//! served by two nodes in one run).
//!
//! [`Fleet::crash`] is the chaos lever: it pulls the node down via
//! [`TcpServer::halt`] and **discards** the node's in-memory state —
//! its final generator positions and its node-local audit die with it,
//! exactly as in a power cut. What survives is what the durability
//! layer persisted write-ahead; [`Fleet::restart`] boots a successor
//! on a fresh port that recovers every tenant from those records.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use uuidp_obs::{Registry, TraceRecorder};
use uuidp_service::net::TcpServer;
use uuidp_service::service::{DurabilityConfig, ServiceConfig, ServiceReport};

/// One node of the fleet: a service + TCP front-end with durable state.
pub struct FleetNode {
    index: usize,
    dir: PathBuf,
    addr: SocketAddr,
    server: Option<TcpServer>,
    incarnation: u32,
}

impl FleetNode {
    /// The node's position in the fleet (stable across restarts).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The node's current listen address (changes on restart).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many times this node has been crash-restarted.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Whether the node is currently serving.
    pub fn is_up(&self) -> bool {
        self.server.is_some()
    }

    /// The node's durable state directory.
    pub fn state_dir(&self) -> &Path {
        &self.dir
    }

    /// The live incarnation's metric registry, if the node is up.
    /// Crash-restarts boot a fresh registry: in-memory counters die in
    /// the power cut with everything else, so handles must be re-taken
    /// after [`Fleet::restart`].
    pub fn registry(&self) -> Option<Arc<Registry>> {
        self.server.as_ref().map(TcpServer::registry)
    }

    /// The live incarnation's trace recorder, if the node is up (same
    /// restart caveat as [`FleetNode::registry`]).
    pub fn trace(&self) -> Option<Arc<TraceRecorder>> {
        self.server.as_ref().map(TcpServer::trace)
    }
}

/// A running fleet of loopback nodes.
pub struct Fleet {
    template: ServiceConfig,
    reservation: u128,
    nodes: Vec<FleetNode>,
}

impl Fleet {
    /// Boots `nodes ≥ 1` nodes from the shared `template`
    /// configuration, each with durable state under
    /// `state_dir/node-<i>` and the given write-ahead reservation
    /// window. Any `durability` already present on the template is
    /// replaced by the per-node configuration.
    pub fn launch(
        template: ServiceConfig,
        nodes: usize,
        state_dir: &Path,
        reservation: u128,
    ) -> io::Result<Fleet> {
        assert!(nodes >= 1, "a fleet needs at least one node");
        let mut fleet = Fleet {
            template,
            reservation,
            nodes: Vec::with_capacity(nodes),
        };
        for index in 0..nodes {
            let dir = state_dir.join(format!("node-{index}"));
            let server = TcpServer::bind("127.0.0.1:0", fleet.node_config(&dir))?;
            fleet.nodes.push(FleetNode {
                index,
                addr: server.local_addr(),
                dir,
                server: Some(server),
                incarnation: 0,
            });
        }
        Ok(fleet)
    }

    fn node_config(&self, dir: &Path) -> ServiceConfig {
        let mut config = self.template.clone();
        config.durability = Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            reservation: self.reservation,
            sync: false,
            halt_after_persists: None,
        });
        config
    }

    /// Number of nodes (up or down).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes, for inspection.
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// The current address of node `index`.
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.nodes[index].addr
    }

    /// Crash node `index`: sever its connections, tear it down, and
    /// throw away everything it only held in memory. Returns what the
    /// node would have reported — callers modelling a true power cut
    /// should ignore it (the fleet runner does); it is surfaced for
    /// tests that want to inspect the lost state.
    pub fn crash(&mut self, index: usize) -> Option<ServiceReport> {
        let node = &mut self.nodes[index];
        node.server.take().and_then(TcpServer::halt)
    }

    /// Boots a fresh incarnation of a crashed node on a new ephemeral
    /// port. Its tenants are rebuilt lazily from the write-ahead
    /// records in the node's state directory — restored and advanced
    /// past each abandoned reservation window.
    pub fn restart(&mut self, index: usize) -> io::Result<SocketAddr> {
        assert!(
            self.nodes[index].server.is_none(),
            "node {index} is still up; crash it first"
        );
        let server = TcpServer::bind("127.0.0.1:0", self.node_config(&self.nodes[index].dir))?;
        let node = &mut self.nodes[index];
        node.addr = server.local_addr();
        node.server = Some(server);
        node.incarnation += 1;
        Ok(node.addr)
    }

    /// [`crash`](Self::crash) + [`restart`](Self::restart) in one step,
    /// returning the successor's address.
    pub fn crash_restart(&mut self, index: usize) -> io::Result<SocketAddr> {
        self.crash(index);
        self.restart(index)
    }

    /// Collects node `index`'s server-side shutdown report after a
    /// client-initiated `shutdown` command, joining its threads.
    /// Returns `None` if the node is down or never received one.
    pub fn join_node(&mut self, index: usize) -> Option<ServiceReport> {
        self.nodes[index].server.take().and_then(TcpServer::join)
    }

    /// Crashes every node that is still up (end-of-run teardown for
    /// aborted runs; normal runs shut nodes down via the protocol).
    pub fn teardown(&mut self) {
        for index in 0..self.nodes.len() {
            self.crash(index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;
    use uuidp_core::id::IdSpace;
    use uuidp_service::net::RemoteClient;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uuidp-fleet-cluster-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn template(bits: u32) -> ServiceConfig {
        ServiceConfig::new(AlgorithmKind::Cluster, IdSpace::with_bits(bits).unwrap())
    }

    #[test]
    fn launch_boots_distinct_nodes_with_own_state_dirs() {
        let dir = temp_dir("launch");
        let mut fleet = Fleet::launch(template(40), 3, &dir, 256).unwrap();
        assert_eq!(fleet.node_count(), 3);
        let addrs: Vec<_> = (0..3).map(|i| fleet.addr(i)).collect();
        assert!(addrs.windows(2).all(|w| w[0] != w[1]), "ports must differ");
        assert!(fleet.nodes().iter().all(|n| n.is_up()));
        // Serving creates the per-node snapshot layout.
        let space = IdSpace::with_bits(40).unwrap();
        let mut client = RemoteClient::connect(fleet.addr(1), space).unwrap();
        assert_eq!(client.lease(7, 10).unwrap().granted, 10);
        client.drain().unwrap();
        assert!(dir.join("node-1").join("tenant-7.snap").is_file());
        fleet.teardown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_restart_recovers_past_everything_emitted() {
        let dir = temp_dir("recover");
        let mut fleet = Fleet::launch(template(24), 1, &dir, 64).unwrap();
        let space = IdSpace::with_bits(24).unwrap();
        let mut client = RemoteClient::connect(fleet.addr(0), space).unwrap();
        let first = client.lease(3, 100).unwrap();
        assert_eq!(fleet.nodes()[0].incarnation(), 0);

        let lost = fleet.crash(0);
        assert!(lost.is_some(), "halt yields the (discarded) report");
        assert!(!fleet.nodes()[0].is_up());
        let addr = fleet.restart(0).unwrap();
        assert_eq!(fleet.nodes()[0].incarnation(), 1);

        let mut client2 = RemoteClient::connect(addr, space).unwrap();
        let second = client2.lease(3, 100).unwrap();
        // The recovered tenant continues its own permutation strictly
        // after the abandoned window: no arc overlap with the pre-crash
        // lease (Cluster arcs are contiguous, so compare coverage).
        let covered: Vec<(u128, u128)> = first
            .arcs
            .iter()
            .map(|a| (a.start.value(), a.start.value() + a.len))
            .collect();
        for arc in &second.arcs {
            let (lo, hi) = (arc.start.value(), arc.start.value() + arc.len);
            for &(flo, fhi) in &covered {
                assert!(hi <= flo || lo >= fhi, "recovered lease overlaps pre-crash");
            }
        }
        client2.shutdown().unwrap();
        assert!(fleet.join_node(0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
