//! Fleet-wide time-series aggregation and burn-rate alerting.
//!
//! The fleet driver scrapes every node at fixed request-count windows
//! (never wall clock — the window index is the tick the driver hands
//! in, so a seeded run ticks identically every time). Each scrape is
//! ingested into a per-`(node, incarnation)` [`TimeSeries`]: a
//! crash-restart boots a fresh registry *and* a fresh incarnation, so
//! its counters restart under a new series key and the cluster rate
//! dips instead of going negative. The [`TimeSeries`] reset clamp is
//! the belt to this suspender — an in-place counter regression (same
//! incarnation) is absorbed as a fresh-from-zero delta.
//!
//! Per tick the node windows are merged into one cluster [`Window`],
//! and the deterministic counter families ([`CLUSTER_FAMILIES`]) are
//! folded into a running fingerprint: two same-seed runs must print the
//! same pin. Families fed by free-running threads (audit lag, reactor
//! wakeups) are ingested into the series for dashboards but excluded
//! from the fingerprint.
//!
//! Two multi-window burn-rate alert evaluators ride on top: lease
//! availability (router-side exhausted retries over submissions) and
//! scrape health (failed scrapes over attempts). A failed scrape never
//! aborts the run — it increments `uuidp_fleet_scrape_errors_total` in
//! the scraper's own registry and degrades that node's series for the
//! tick (satellite: degrade, don't abort).

use std::collections::BTreeMap;
use std::sync::Arc;

use uuidp_core::codec::fnv1a;
use uuidp_obs::{
    AlertRule, AlertTransition, BurnRateAlerts, Counter, Registry, Snapshot, TimeSeries, Window,
};

/// Counter families folded into the cluster fingerprint. These move
/// synchronously with the (sequential) request loop, so their values at
/// any window boundary are a pure function of the seed; audit-pipeline
/// and reactor families lag nondeterministically and stay out.
pub const CLUSTER_FAMILIES: [&str; 3] = [
    "uuidp_leases_total",
    "uuidp_ids_issued_total",
    "uuidp_lease_errors_total",
];

/// Windows the driver aims for across a run (the width in requests is
/// `max(1, requests / TARGET_WINDOWS)`).
pub const TARGET_WINDOWS: u64 = 16;

/// Ring capacity of every per-incarnation series (constant memory per
/// node regardless of run length).
const SERIES_CAPACITY: usize = 64;

/// The fleet scraper's aggregation state: per-incarnation series, the
/// merged cluster windows, the alert evaluators, and the fingerprint.
#[derive(Debug)]
pub struct FleetSeries {
    width_requests: u64,
    per_node: BTreeMap<(usize, u32), TimeSeries>,
    cluster: Vec<Window>,
    availability: BurnRateAlerts,
    scrape_health: BurnRateAlerts,
    transitions: Vec<AlertTransition>,
    digest: Vec<u8>,
    ticks: u64,
    registry: Arc<Registry>,
    scrape_errors: Arc<Counter>,
}

impl FleetSeries {
    /// A series sized for `requests` total submissions: one window per
    /// `max(1, requests / TARGET_WINDOWS)` requests.
    pub fn new(requests: u64) -> FleetSeries {
        let registry = Arc::new(Registry::new());
        let scrape_errors = registry.counter("uuidp_fleet_scrape_errors_total");
        FleetSeries {
            width_requests: (requests / TARGET_WINDOWS).max(1),
            per_node: BTreeMap::new(),
            cluster: Vec::new(),
            availability: BurnRateAlerts::new(vec![AlertRule::availability()]),
            scrape_health: BurnRateAlerts::new(vec![AlertRule::scrape_health()]),
            transitions: Vec::new(),
            digest: Vec::new(),
            ticks: 0,
            registry,
            scrape_errors,
        }
    }

    /// Requests per window.
    pub fn width_requests(&self) -> u64 {
        self.width_requests
    }

    /// The scraper's own registry (`uuidp_fleet_scrape_errors_total`
    /// lives here — the errors belong to the scraper, not to any node).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// One aggregation tick: ingest each node's scrape (keyed by its
    /// current incarnation; `None` marks a failed scrape, which
    /// degrades that node for the tick and feeds the scrape-health
    /// alert), merge the cluster window, fold the fingerprint, and
    /// evaluate the availability alert over `(bad, total)` — the
    /// router-side exhausted-retry and submission deltas for the
    /// window. Returns the alert transitions this tick produced.
    pub fn tick(
        &mut self,
        tick: u64,
        scrapes: &[Option<(u32, Snapshot)>],
        bad: u64,
        total: u64,
    ) -> Vec<AlertTransition> {
        self.ticks += 1;
        let mut cluster = Window::new(tick);
        for (node, scrape) in scrapes.iter().enumerate() {
            let Some((incarnation, snap)) = scrape else {
                self.scrape_errors.inc();
                continue;
            };
            let series = self
                .per_node
                .entry((node, *incarnation))
                .or_insert_with(|| TimeSeries::new(1, SERIES_CAPACITY));
            series.ingest(tick, snap);
            if let Some(window) = series.window_at(tick) {
                cluster.merge(window);
            }
        }
        self.digest.extend_from_slice(&tick.to_le_bytes());
        for family in CLUSTER_FAMILIES {
            self.digest
                .extend_from_slice(&cluster.counter(family).to_le_bytes());
        }
        self.cluster.push(cluster);
        if self.cluster.len() > SERIES_CAPACITY {
            self.cluster.remove(0);
        }
        let failed = scrapes.iter().filter(|s| s.is_none()).count() as u64;
        let mut fired = self.availability.observe(bad, total);
        fired.extend(self.scrape_health.observe(failed, scrapes.len() as u64));
        self.transitions.extend(fired.iter().cloned());
        fired
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Retained merged cluster windows, oldest first.
    pub fn cluster_windows(&self) -> &[Window] {
        &self.cluster
    }

    /// Distinct `(node, incarnation)` series opened — ≥ the node count,
    /// and strictly greater whenever a crash-restart landed mid-run.
    pub fn incarnation_series(&self) -> usize {
        self.per_node.len()
    }

    /// Per-`(node, incarnation)` series, for dashboards.
    pub fn series(&self) -> &BTreeMap<(usize, u32), TimeSeries> {
        &self.per_node
    }

    /// In-place counter regressions absorbed by the reset clamp, summed
    /// over every series (incarnation keying should keep this at zero).
    pub fn resets(&self) -> u64 {
        self.per_node.values().map(|s| s.resets_total()).sum()
    }

    /// FNV-1a over `(tick, CLUSTER_FAMILIES values)` for every tick so
    /// far — the cluster-series pin two same-seed runs must share.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.digest)
    }

    /// Scrapes that failed (and were degraded rather than fatal).
    pub fn scrape_errors(&self) -> u64 {
        self.scrape_errors.get()
    }

    /// Every alert transition, in firing order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// Rules firing right now, across both evaluators.
    pub fn firing_rules(&self) -> Vec<&'static str> {
        let mut rules = self.availability.firing_rules();
        rules.extend(self.scrape_health.firing_rules());
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_obs::MetricValue;

    fn snap(leases: u64, ids: u64, errors: u64) -> Snapshot {
        let mut metrics = BTreeMap::new();
        metrics.insert("uuidp_leases_total".into(), MetricValue::Counter(leases));
        metrics.insert("uuidp_ids_issued_total".into(), MetricValue::Counter(ids));
        metrics.insert(
            "uuidp_lease_errors_total".into(),
            MetricValue::Counter(errors),
        );
        Snapshot { metrics }
    }

    #[test]
    fn failed_scrapes_degrade_the_node_and_count_instead_of_aborting() {
        let mut series = FleetSeries::new(32);
        let fired = series.tick(0, &[Some((0, snap(10, 100, 0))), None], 0, 16);
        // Half the fleet unscrapeable is a 50× burn on a 99% objective:
        // the scrape-health alert fires on the spot.
        assert_eq!(fired.len(), 1);
        assert!(
            fired[0].render().contains("scrape-burn firing"),
            "{fired:?}"
        );
        assert_eq!(series.scrape_errors(), 1);
        // The healthy node's series ingested; the dead node opened none.
        assert_eq!(series.incarnation_series(), 1);
        assert_eq!(
            series.cluster_windows()[0].counter("uuidp_leases_total"),
            10
        );
        // The error is a real metric family on the scraper's registry.
        assert_eq!(
            series
                .registry()
                .snapshot()
                .scalar("uuidp_fleet_scrape_errors_total"),
            Some(1.0)
        );
    }

    #[test]
    fn a_restart_opens_a_fresh_incarnation_series_and_the_rate_dips_not_negative() {
        let mut series = FleetSeries::new(32);
        series.tick(0, &[Some((0, snap(10, 100, 0)))], 0, 8);
        series.tick(1, &[Some((0, snap(20, 200, 0)))], 0, 8);
        // Crash-restart: incarnation bumps, counters start over smaller.
        series.tick(2, &[Some((1, snap(3, 30, 0)))], 0, 8);
        assert_eq!(series.incarnation_series(), 2);
        assert_eq!(series.resets(), 0, "incarnation keying avoids the clamp");
        let ids: Vec<u64> = series
            .cluster_windows()
            .iter()
            .map(|w| w.counter("uuidp_ids_issued_total"))
            .collect();
        // 100 fresh, then +100, then the restart's fresh-from-zero 30:
        // a dip, never a negative (u64 could not even express one — the
        // clamp and the keying are what keep the arithmetic honest).
        assert_eq!(ids, vec![100, 100, 30]);
    }

    #[test]
    fn same_feed_reproduces_fingerprint_and_transitions() {
        let run = || {
            let mut series = FleetSeries::new(64);
            for tick in 0..16u64 {
                let bad = if (6..=9).contains(&tick) { 4 } else { 0 };
                series.tick(tick, &[Some((0, snap(tick * 4, tick * 64, 0)))], bad, 4);
            }
            (
                series.fingerprint(),
                series
                    .transitions()
                    .iter()
                    .map(|t| t.render())
                    .collect::<Vec<_>>(),
            )
        };
        let (fp_a, tr_a) = run();
        let (fp_b, tr_b) = run();
        assert_eq!(fp_a, fp_b);
        assert_eq!(tr_a, tr_b);
        assert!(
            tr_a.iter().any(|t| t.contains("availability-burn firing")),
            "the error burst must fire the availability alert: {tr_a:?}"
        );
    }
}
