//! The fleet runner: drive a whole cluster through a placement
//! schedule, optionally crash-restarting nodes along the way, and
//! aggregate everything into one [`FleetReport`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use uuidp_core::clock;

use uuidp_client::{ProtoVersion, RetryPolicy};
use uuidp_core::codec::fnv1a;
use uuidp_core::id::IdSpace;
use uuidp_core::rng::{uniform_below, Xoshiro256pp};
use uuidp_netchaos::{schedule_fingerprint, ChaosProxy, ChaosSpec, FaultCounts};
use uuidp_obs::families::REQUIRED as REQUIRED_FAMILIES;
use uuidp_obs::{parse_exposition, AlertTransition, Snapshot, Stage};
use uuidp_service::metrics::FaultCounters;
use uuidp_service::net::RemoteClient;
use uuidp_service::service::{AuditReport, AuditThreadReport, ServiceConfig, ServiceReport};
use uuidp_sim::audit::AuditCounts;

use crate::cluster::Fleet;
use crate::router::{Placement, Router, Scheduler};
use crate::series::FleetSeries;

/// Per-request bound on every router dial/read when chaos is on.
const CHAOS_TIMEOUT: Duration = Duration::from_secs(5);

/// Connection plans covered by each node's schedule fingerprint (a
/// fixed count, so the pin depends only on the spec and seed).
const FINGERPRINT_CONNS: u64 = 64;

/// The seed lane for node `index`'s chaos proxy.
fn node_chaos_seed(chaos_seed: u64, index: usize) -> u64 {
    chaos_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Points node `index`'s chaos proxy at the node's *current*
/// incarnation's registry and trace recorder, so the proxy's
/// `uuidp_netchaos_*` counters show up in that node's scrapes. Called
/// at launch and re-called after every crash-restart (the successor
/// boots a fresh registry).
fn attach_node_obs(fleet: &Fleet, proxy: &ChaosProxy, index: usize) {
    let node = &fleet.nodes()[index];
    if let (Some(registry), Some(trace)) = (node.registry(), node.trace()) {
        proxy.attach_obs(&registry, trace);
    }
}

/// One direct (proxy-bypassing) exposition scrape of node `index`,
/// asserting every required family is present.
fn scrape_node(fleet: &Fleet, index: usize, space: IdSpace) -> io::Result<BTreeMap<String, f64>> {
    let mut client = RemoteClient::connect(fleet.addr(index), space)?;
    let families = parse_exposition(&client.metrics()?);
    client.quit()?;
    for family in REQUIRED_FAMILIES {
        assert!(
            families.contains_key(*family),
            "node {index} scrape is missing required family `{family}`"
        );
    }
    Ok(families)
}

/// One direct typed scrape of node `index` for time-series ingestion.
fn scrape_node_snapshot(fleet: &Fleet, index: usize, space: IdSpace) -> io::Result<Snapshot> {
    let mut client = RemoteClient::connect(fleet.addr(index), space)?;
    let snap = Snapshot::parse_prometheus(&client.metrics()?);
    client.quit()?;
    Ok(snap)
}

/// One fleet-series aggregation tick: scrape every node (a failed
/// scrape degrades that node for the tick instead of aborting), feed
/// the evaluators, and fan the resulting alert transitions out — each
/// live node's registry gains `uuidp_alert_transitions_total` /
/// `uuidp_alerts_firing` and its trace ring is stamped with a
/// [`Stage::Alert`] event, so a crash's flight-recorder dump carries
/// the alert history that preceded it.
fn series_tick(
    fleet: &Fleet,
    series: &mut FleetSeries,
    space: IdSpace,
    tick: u64,
    bad: u64,
    total: u64,
) -> Vec<AlertTransition> {
    let scrapes: Vec<Option<(u32, Snapshot)>> = (0..fleet.node_count())
        .map(|i| {
            scrape_node_snapshot(fleet, i, space)
                .ok()
                .map(|snap| (fleet.nodes()[i].incarnation(), snap))
        })
        .collect();
    let fired = series.tick(tick, &scrapes, bad, total);
    let firing = series.firing_rules().len() as i64;
    for node in fleet.nodes() {
        let (Some(registry), Some(trace)) = (node.registry(), node.trace()) else {
            continue;
        };
        registry.gauge("uuidp_alerts_firing").set(firing);
        let transitions = registry.counter("uuidp_alert_transitions_total");
        for t in &fired {
            transitions.inc();
            // Window index as the timestamp: the trace ring's clock is
            // whatever the recorder is handed, and the window index is
            // the only deterministic time the fleet has.
            trace.record(0, 0, Stage::Alert, t.detail, tick);
        }
    }
    fired
}

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The per-node service template (algorithm, universe, shards,
    /// audit pipeline, master seed, fault injection). `durability` is
    /// managed by the fleet — per node, under `state_dir`.
    pub service: ServiceConfig,
    /// Number of nodes.
    pub nodes: usize,
    /// Tenants generating load (pinned to nodes by `tenant % nodes`).
    pub tenants: u64,
    /// Lease requests to route.
    pub requests: u64,
    /// IDs per lease (the hunter placement overrides this with 1).
    pub count: u128,
    /// Cross-node request scheduling.
    pub placement: Placement,
    /// Chaos mode: crash-restart a random node every `K` requests.
    pub kill_every: Option<u64>,
    /// Adversarial-network mode: when set, every node gets a
    /// [`ChaosProxy`] built from this spec in front of it, the router
    /// dials the proxies, and node failures are retried (same node
    /// only) instead of failing the run.
    pub chaos: Option<ChaosSpec>,
    /// Seed for the proxies' fault schedules and the retry jitter.
    pub chaos_seed: u64,
    /// Write-ahead reservation window for node durability.
    pub reservation: u128,
    /// Stripes of the router's global audits.
    pub audit_stripes: usize,
    /// Wire protocol the router speaks to every node (the nodes
    /// negotiate per connection, so mixed-protocol fleets are fine).
    pub protocol: ProtoVersion,
    /// Scrape every node's metric registry over the wire — once at the
    /// halfway mark and once after the last drain — asserting the
    /// required families are present and `_total`/`_count` families
    /// never move backwards on a stable incarnation.
    pub scrape: bool,
    /// Root directory for per-node durable state.
    pub state_dir: PathBuf,
}

impl FleetConfig {
    /// A fleet of `nodes` nodes over `service`, with durable state
    /// under `state_dir` and modest defaults.
    pub fn new(service: ServiceConfig, nodes: usize, state_dir: impl Into<PathBuf>) -> Self {
        FleetConfig {
            service,
            nodes,
            tenants: 8,
            requests: 1000,
            count: 64,
            placement: Placement::Uniform,
            kill_every: None,
            chaos: None,
            chaos_seed: 0,
            reservation: 1024,
            audit_stripes: 16,
            protocol: ProtoVersion::V1,
            scrape: false,
            state_dir: state_dir.into(),
        }
    }
}

/// One node's end-of-run accounting.
#[derive(Debug)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Crash-restarts this node went through.
    pub restarts: u32,
    /// The final incarnation's server-side report. Earlier
    /// incarnations' reports died in their crashes, which is the
    /// point: only the router's global audit spans them.
    pub report: ServiceReport,
}

/// What one fleet run measured.
#[derive(Debug)]
pub struct FleetReport {
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Placement schedule that drove the run.
    pub placement: Placement,
    /// Leases routed.
    pub requests: u64,
    /// Total IDs issued (router-side count; authoritative across
    /// crashes).
    pub issued_ids: u128,
    /// Leases whose grant fell short.
    pub errors: u64,
    /// Wall clock from first request to last drain.
    pub elapsed: Duration,
    /// Aggregate issue rate through the fleet front door.
    pub ids_per_sec: f64,
    /// Median client-side lease latency through the router,
    /// microseconds (includes retry and backoff time).
    pub p50_us: f64,
    /// 99th-percentile client-side lease latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile client-side lease latency, microseconds.
    pub p999_us: f64,
    /// The router's per-fault-class ledger (all-zero without chaos).
    pub faults: FaultCounters,
    /// The adversarial-network stamp, when proxies were interposed.
    pub chaos: Option<FleetChaosReport>,
    /// Per-node wire scrapes of the metric registries, when enabled.
    pub metrics: Option<FleetMetricsReport>,
    /// Windowed time-series aggregation and burn-rate alert history,
    /// when scraping was enabled.
    pub series: Option<FleetSeriesReport>,
    /// Crash-restarts performed.
    pub restarts: u32,
    /// Incarnation-keyed global audit counters (restart-aware).
    pub global: AuditCounts,
    /// IDs issued to more than one *tenant* (restart-blind — genuine
    /// cross-tenant collisions, e.g. injected same-seed twins).
    pub cross_tenant_duplicate_ids: u128,
    /// IDs a tenant re-emitted across its own restarts. Non-zero means
    /// the durability layer failed; chaos runs hard-fail on it.
    pub recovered_duplicate_ids: u128,
    /// All surviving node audits merged ([`AuditReport::merge`] over
    /// every node's pipeline threads). Note what this *cannot* see:
    /// duplicates spanning two nodes — that is the router's global
    /// audit's job, and the gap between the two is the whole reason
    /// the fleet layer exists.
    pub merged_nodes: AuditReport,
    /// Per-node breakdown.
    pub per_node: Vec<NodeReport>,
}

/// What the fleet's chaos proxies did, stamped into the report.
#[derive(Debug, Clone, Copy)]
pub struct FleetChaosReport {
    /// The fault intensities every proxy was built from.
    pub spec: ChaosSpec,
    /// The seed the per-node schedules were derived from.
    pub seed: u64,
    /// FNV-1a over each node's [`schedule_fingerprint`] (first
    /// [`FINGERPRINT_CONNS`] plans) — a pure function of
    /// `(spec, seed, nodes)`, identical on every same-seed rerun.
    pub fingerprint: u64,
    /// What the proxies injected, summed across nodes.
    pub injected: FaultCounts,
}

/// The fleet's windowed time-series aggregation, summarized.
#[derive(Debug, Clone)]
pub struct FleetSeriesReport {
    /// Aggregation ticks taken (one merged cluster window each).
    pub windows: u64,
    /// Requests per window — the tick width; request-count windows keep
    /// a seeded run's window boundaries identical across reruns.
    pub width_requests: u64,
    /// Distinct `(node, incarnation)` series opened. Greater than the
    /// node count exactly when crash-restarts landed mid-run: a
    /// restarted node's counters start over under a fresh key, so the
    /// cluster rate dips but never goes negative.
    pub incarnation_series: usize,
    /// In-place counter resets the clamp absorbed (expected 0 — the
    /// incarnation keying catches restarts first).
    pub resets: u64,
    /// FNV-1a over every merged cluster window's deterministic counter
    /// families ([`crate::series::CLUSTER_FAMILIES`]): two same-seed
    /// runs print the same pin.
    pub cluster_fingerprint: u64,
    /// Scrapes that failed and degraded their node's series for the
    /// tick (also exported as `uuidp_fleet_scrape_errors_total`).
    pub scrape_errors: u64,
    /// Every burn-rate alert transition, in firing order.
    pub transitions: Vec<AlertTransition>,
    /// Rules still firing at shutdown.
    pub firing: Vec<&'static str>,
}

/// Per-node wire scrapes of the fleet's metric registries.
#[derive(Debug, Clone)]
pub struct FleetMetricsReport {
    /// Mid-run scrapes that completed (one per node, taken while the
    /// load loop paused at the halfway mark).
    pub mid_scrapes: usize,
    /// End-of-run exposition families per node, flattened by
    /// [`parse_exposition`]. These are the *final incarnation's*
    /// registries: a crash-restart boots a fresh registry, so on
    /// restarted nodes the totals cover post-recovery traffic only.
    pub per_node: Vec<BTreeMap<String, f64>>,
}

impl FleetReport {
    /// Renders the human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "nodes:        {} ({} crash-restarts)\nplacement:    {}\n\
             requests:     {} leases, {} IDs issued, {} errors\n\
             elapsed:      {:.3}s\nthroughput:   {:.2}M IDs/s\n\
             lease p50:    {:.2} us (client-side, p99 {:.2} us, p999 {:.2} us)\n\
             global audit: {} IDs recorded, {} duplicate IDs \
             ({} cross-tenant, {} from recovered nodes)\n\
             node audits:  {} duplicate IDs across {} pipeline threads \
             (cross-node duplicates are invisible here)\n",
            self.nodes,
            self.restarts,
            self.placement,
            self.requests,
            self.issued_ids,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.ids_per_sec / 1e6,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.global.recorded_ids,
            self.global.duplicate_ids,
            self.cross_tenant_duplicate_ids,
            self.recovered_duplicate_ids,
            self.merged_nodes.counts.duplicate_ids,
            self.merged_nodes.per_thread.len(),
        );
        for n in &self.per_node {
            let _ = writeln!(
                out,
                "  node {}: {} leases, {} IDs, {} dup (final incarnation; {} restarts)",
                n.node,
                n.report.leases,
                n.report.issued_ids,
                n.report.audit.counts.duplicate_ids,
                n.restarts,
            );
        }
        if let Some(metrics) = &self.metrics {
            let issued: f64 = metrics
                .per_node
                .iter()
                .filter_map(|f| f.get("uuidp_ids_issued_total"))
                .sum();
            let _ = writeln!(
                out,
                "metrics:      {} nodes scraped ({} mid-run), {} IDs on final-incarnation registries",
                metrics.per_node.len(),
                metrics.mid_scrapes,
                issued,
            );
        }
        if let Some(series) = &self.series {
            let _ = writeln!(
                out,
                "series:       {} windows × {} requests, {} node-incarnation series, \
                 {} resets, cluster fingerprint {:016x}",
                series.windows,
                series.width_requests,
                series.incarnation_series,
                series.resets,
                series.cluster_fingerprint,
            );
            if series.scrape_errors > 0 {
                let _ = writeln!(
                    out,
                    "scrape errors: {} (degraded ticks, run kept going)",
                    series.scrape_errors
                );
            }
            for t in &series.transitions {
                let _ = writeln!(out, "{}", t.render());
            }
            if series.firing.is_empty() {
                out.push_str("alerts at shutdown: none firing\n");
            } else {
                let _ = writeln!(
                    out,
                    "alerts at shutdown: {} firing",
                    series.firing.join(", ")
                );
            }
        }
        if let Some(chaos) = &self.chaos {
            let _ = writeln!(
                out,
                "chaos:        spec `{}`, seed {}, schedule fingerprint {:016x}\n  injected:     \
                 {} conns: {} refused, {} req-drops, {} reply-truncs, {} reply-corrupts, \
                 {} resealed, {} upstream-failures",
                chaos.spec,
                chaos.seed,
                chaos.fingerprint,
                chaos.injected.connections,
                chaos.injected.refused,
                chaos.injected.dropped_requests,
                chaos.injected.truncated_replies,
                chaos.injected.corrupted_replies,
                chaos.injected.resealed_replies,
                chaos.injected.upstream_failures,
            );
        }
        if self.chaos.is_some() || self.faults != FaultCounters::default() {
            out.push_str(&self.faults.render_slo(self.requests));
            out.push('\n');
        }
        out
    }
}

/// Runs one fleet scenario end to end: launch `nodes` durable nodes,
/// route `requests` leases per the placement schedule (crash-restarting
/// victims if chaos is on), then shut every node down gracefully and
/// merge the accounting. On any mid-run error the surviving nodes are
/// torn down before the error propagates — no leaked accept threads or
/// listeners in long-lived embedders.
pub fn run_fleet(config: FleetConfig) -> io::Result<FleetReport> {
    assert!(
        config.tenants < 1 << crate::router::INCARNATION_SHIFT,
        "tenant space too wide for incarnation tagging"
    );
    // A zero interval would silently disable chaos while the report
    // still advertises it — reject instead of misleading.
    assert!(
        config.kill_every != Some(0),
        "kill_every must be at least 1 (None disables chaos)"
    );
    let mut fleet = Fleet::launch(
        config.service.clone(),
        config.nodes,
        &config.state_dir,
        config.reservation,
    )?;
    let result = drive_fleet(&mut fleet, &config);
    if result.is_err() {
        fleet.teardown();
    }
    result
}

/// The fallible body of [`run_fleet`], against an already-launched
/// fleet (split out so the caller owns error-path teardown).
fn drive_fleet(fleet: &mut Fleet, config: &FleetConfig) -> io::Result<FleetReport> {
    let space = config.service.space;
    let mut router = Router::new(space, config.nodes, config.audit_stripes, config.protocol);
    // Adversarial-network mode: one deterministic proxy per node, the
    // router dials the proxies, and failures are retried (same node —
    // tenant affinity is what keeps retries duplicate-free).
    let proxies: Vec<ChaosProxy> = match config.chaos {
        Some(spec) => {
            router.set_dial_timeout(Some(CHAOS_TIMEOUT));
            router.set_retry_policy(RetryPolicy {
                seed: config.chaos_seed,
                ..RetryPolicy::default()
            });
            (0..config.nodes)
                .map(|i| {
                    ChaosProxy::launch(fleet.addr(i), spec, node_chaos_seed(config.chaos_seed, i))
                })
                .collect::<io::Result<_>>()?
        }
        None => Vec::new(),
    };
    // Each proxy mirrors its fault tally into its node's registry, so
    // node scrapes expose `uuidp_netchaos_*` next to the service's own
    // families (attached before any traffic can reach the proxy).
    for (i, proxy) in proxies.iter().enumerate() {
        attach_node_obs(fleet, proxy, i);
    }
    for i in 0..config.nodes {
        match proxies.get(i) {
            // Lazy under chaos: the first request probes (even the
            // initial dial can land in a partition window).
            Some(proxy) => router.set_addr(i, proxy.addr()),
            None => router.connect(i, fleet.addr(i))?,
        }
    }
    let mut scheduler = Scheduler::new(
        config.placement,
        config.tenants,
        config.requests,
        space,
        config.service.master_seed,
    );
    // The kill schedule gets its own seed lane so traffic and kill
    // choices stay independently reproducible.
    let mut chaos_rng = Xoshiro256pp::new(config.service.master_seed ^ 0xC4A0_5EED);
    let mut restarts = 0u32;

    let started_ns = clock::monotonic_ns();
    let mut submitted = 0u64;
    // Mid-run scrape state: `(incarnation, families)` per node, taken
    // while the load loop pauses at the halfway mark.
    let mid_scrape_at = config.requests / 2;
    let mut mid: Vec<(u32, BTreeMap<String, f64>)> = Vec::new();
    // Time-series aggregation ticks by *request count*, not wall clock:
    // a seeded rerun crosses every window boundary at the same request,
    // so the cluster fingerprint and alert sequence replay exactly.
    let mut series = config.scrape.then(|| FleetSeries::new(config.requests));
    let width = series.as_ref().map_or(u64::MAX, |s| s.width_requests());
    let mut next_tick_at = width;
    let mut ticks = 0u64;
    let mut ticked_bad = 0u64;
    let mut ticked_submitted = 0u64;
    while submitted < config.requests {
        if config.scrape && submitted == mid_scrape_at && mid.is_empty() {
            for i in 0..config.nodes {
                mid.push((
                    fleet.nodes()[i].incarnation(),
                    scrape_node(fleet, i, space)?,
                ));
            }
        }
        if let Some(k) = config.kill_every {
            if submitted > 0 && submitted.is_multiple_of(k) {
                let victim = uniform_below(&mut chaos_rng, config.nodes as u128) as usize;
                let addr = fleet.crash_restart(victim)?;
                match proxies.get(victim) {
                    // The proxy's listen address is stable: point it at
                    // the successor and let the next request reconnect.
                    Some(proxy) => {
                        proxy.retarget(addr);
                        attach_node_obs(fleet, proxy, victim);
                        router.mark_restarted(victim);
                    }
                    None => router.reconnect_after_crash(victim, addr)?,
                }
                restarts += 1;
            }
        }
        let Some(tenant) = scheduler.next(submitted) else {
            break;
        };
        let count = scheduler.forced_count().unwrap_or(config.count);
        match router.lease(tenant, count) {
            Ok(arcs) => {
                if let Some(arc) = arcs.first() {
                    scheduler.observe(tenant, arc.start);
                }
            }
            // Under chaos an exhausted retry budget abandons the
            // request (counted against the SLO) instead of failing the
            // run; on a supposedly clean network it is a real bug.
            Err(e) if config.chaos.is_some() => {
                let _ = e;
            }
            Err(e) => return Err(e),
        }
        submitted += 1;
        if let Some(s) = series.as_mut() {
            if submitted >= next_tick_at || submitted == config.requests {
                // "Bad" for the availability burn is a request the
                // router gave up on: an exhausted retry budget (the
                // only way a submission fails to land under chaos).
                let bad = router.fault_counters().exhausted + router.errors();
                series_tick(
                    fleet,
                    s,
                    space,
                    ticks,
                    bad - ticked_bad,
                    submitted - ticked_submitted,
                );
                ticked_bad = bad;
                ticked_submitted = submitted;
                ticks += 1;
                next_tick_at = submitted + width;
            }
        }
    }
    // An early scheduler exit (e.g. an exhausted hunter budget) can
    // leave a partial window unticked — flush it so the series covers
    // every submission.
    if let Some(s) = series.as_mut() {
        if submitted > ticked_submitted {
            let bad = router.fault_counters().exhausted + router.errors();
            series_tick(
                fleet,
                s,
                space,
                ticks,
                bad - ticked_bad,
                submitted - ticked_submitted,
            );
        }
    }
    let elapsed = Duration::from_nanos(clock::monotonic_ns().saturating_sub(started_ns));

    // Graceful teardown: every surviving node drains and reports. The
    // proxies go passthrough first so the accounting can't be a
    // casualty of a fault scheduled mid-shutdown — and each node gets a
    // fresh (clean) connection rather than one carrying an unfired
    // fault plan.
    for (i, proxy) in proxies.iter().enumerate() {
        proxy.set_passthrough(true);
        router.set_addr(i, proxy.addr());
    }
    // Final scrape, before the nodes drain: every `_total`/`_count`
    // family must be at or above its mid-run reading — unless the node
    // crash-restarted in between, which lawfully resets its registry.
    let metrics = if config.scrape {
        let mut scraped = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let families = scrape_node(fleet, i, space)?;
            if let Some((incarnation, earlier)) = mid.get(i) {
                if *incarnation == fleet.nodes()[i].incarnation() {
                    for (name, value) in earlier {
                        if name.ends_with("_total") || name.ends_with("_count") {
                            let now = families.get(name).copied().unwrap_or(-1.0);
                            assert!(
                                now >= *value,
                                "node {i} family `{name}` went backwards: {value} -> {now}"
                            );
                        }
                    }
                }
            }
            scraped.push(families);
        }
        Some(FleetMetricsReport {
            mid_scrapes: mid.len(),
            per_node: scraped,
        })
    } else {
        None
    };
    let mut per_node = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        router.shutdown_node(i)?;
        // An error (not a panic) so run_fleet's teardown still reaps
        // the remaining nodes.
        let report = fleet.join_node(i).ok_or_else(|| {
            io::Error::other(format!("node {i} exited without a shutdown report"))
        })?;
        per_node.push(NodeReport {
            node: i,
            restarts: fleet.nodes()[i].incarnation(),
            report,
        });
    }

    let merged_nodes = AuditReport::merge(
        per_node
            .iter()
            .flat_map(|n| n.report.audit.per_thread.iter().copied())
            .collect::<Vec<AuditThreadReport>>(),
    );
    let issued_ids = router.issued();
    let global = router.global_counts();
    debug_assert_eq!(
        global.recorded_ids, issued_ids,
        "every issued ID reaches the global audit"
    );
    let chaos = config.chaos.map(|spec| {
        let mut injected = FaultCounts::default();
        let mut pin_bytes = Vec::with_capacity(proxies.len() * 8);
        for (i, proxy) in proxies.iter().enumerate() {
            injected.merge(&proxy.counts());
            let node_pin = schedule_fingerprint(
                &spec,
                node_chaos_seed(config.chaos_seed, i),
                FINGERPRINT_CONNS,
            );
            pin_bytes.extend_from_slice(&node_pin.to_le_bytes());
        }
        FleetChaosReport {
            spec,
            seed: config.chaos_seed,
            fingerprint: fnv1a(&pin_bytes),
            injected,
        }
    });
    let series = series.map(|s| FleetSeriesReport {
        windows: s.ticks(),
        width_requests: s.width_requests(),
        incarnation_series: s.incarnation_series(),
        resets: s.resets(),
        cluster_fingerprint: s.fingerprint(),
        scrape_errors: s.scrape_errors(),
        transitions: s.transitions().to_vec(),
        firing: s.firing_rules(),
    });
    Ok(FleetReport {
        nodes: config.nodes,
        placement: config.placement,
        requests: submitted,
        issued_ids,
        errors: router.errors(),
        elapsed,
        ids_per_sec: issued_ids as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: router.latency().quantile_ns(0.50) / 1e3,
        p99_us: router.latency().quantile_ns(0.99) / 1e3,
        p999_us: router.latency().quantile_ns(0.999) / 1e3,
        faults: router.fault_counters(),
        chaos,
        metrics,
        series,
        restarts,
        global,
        cross_tenant_duplicate_ids: router.cross_tenant_counts().duplicate_ids,
        recovered_duplicate_ids: router.recovered_duplicate_ids(),
        merged_nodes,
        per_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;
    use uuidp_core::id::IdSpace;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uuidp-fleet-run-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn base(kind: AlgorithmKind, bits: u32, nodes: usize, tag: &str) -> FleetConfig {
        let service = ServiceConfig::new(kind, IdSpace::with_bits(bits).unwrap());
        let mut cfg = FleetConfig::new(service, nodes, temp_dir(tag));
        cfg.requests = 240;
        cfg.tenants = 6;
        cfg.count = 32;
        cfg
    }

    #[test]
    fn clean_uniform_run_issues_everything_and_stays_duplicate_free() {
        let cfg = base(AlgorithmKind::ClusterStar, 44, 3, "clean");
        let dir = cfg.state_dir.clone();
        let report = run_fleet(cfg).unwrap();
        assert_eq!(report.requests, 240);
        assert_eq!(report.issued_ids, 240 * 32);
        assert_eq!(report.errors, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.global.recorded_ids, report.issued_ids);
        assert_eq!(report.global.duplicate_ids, 0);
        assert_eq!(report.recovered_duplicate_ids, 0);
        // Every node served something and reported in.
        assert_eq!(report.per_node.len(), 3);
        assert!(report.per_node.iter().all(|n| n.report.issued_ids > 0));
        // Node audits saw every ID too (no cross-node traffic is lost).
        assert_eq!(
            report.merged_nodes.counts.recorded_ids, report.issued_ids,
            "merged node audits must cover the whole fleet's issuance"
        );
        let text = report.render();
        assert!(text.contains("nodes:        3"));
        assert!(text.contains("global audit:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_node_twins_are_invisible_to_node_audits_but_not_the_router() {
        // The demonstration the fleet layer exists for: tenants 0 and 1
        // share a seed but live on different nodes, so no node-local
        // audit can ever see the duplicates — the global audit must.
        let mut cfg = base(AlgorithmKind::Cluster, 48, 2, "twins");
        cfg.service.seed_alias = Some((0, 1));
        let dir = cfg.state_dir.clone();
        let report = run_fleet(cfg).unwrap();
        let per_tenant = 240 / 6;
        assert_eq!(
            report.cross_tenant_duplicate_ids,
            per_tenant as u128 * 32,
            "every twin-issued ID is a cross-node duplicate"
        );
        assert_eq!(
            report.merged_nodes.counts.duplicate_ids, 0,
            "node-local audits cannot see cross-node duplicates"
        );
        assert_eq!(report.recovered_duplicate_ids, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn skewed_and_hunter_placements_route_and_audit_cleanly() {
        for placement in [Placement::Skewed, Placement::Hunter] {
            let mut cfg = base(
                AlgorithmKind::ClusterStar,
                40,
                3,
                &format!("mix-{placement}"),
            );
            cfg.placement = placement;
            cfg.requests = 150;
            let dir = cfg.state_dir.clone();
            let report = run_fleet(cfg).unwrap();
            assert!(report.requests > 0);
            assert_eq!(report.global.recorded_ids, report.issued_ids);
            assert_eq!(report.recovered_duplicate_ids, 0, "{placement}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn protocol_v2_fleet_matches_v1_totals_and_survives_chaos() {
        // The cross-protocol fleet differential: the same scenario
        // routed over v1 text connections and v2 multiplexed framed
        // connections must produce bit-identical global audit totals —
        // and under chaos, v2 recovery must stay duplicate-free too.
        let run_with = |proto: ProtoVersion, chaos: bool, tag: &str| {
            let mut cfg = base(AlgorithmKind::ClusterStar, 40, 3, tag);
            cfg.protocol = proto;
            cfg.service.seed_alias = Some((0, 1)); // live duplicate counter
            if chaos {
                cfg.kill_every = Some(40);
                cfg.reservation = 64;
            }
            let dir = cfg.state_dir.clone();
            let report = run_fleet(cfg).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            report
        };
        let v1 = run_with(ProtoVersion::V1, false, "diff-v1");
        let v2 = run_with(ProtoVersion::V2, false, "diff-v2");
        assert_eq!(v1.issued_ids, v2.issued_ids);
        assert_eq!(v1.global.duplicate_ids, v2.global.duplicate_ids);
        assert!(v2.global.duplicate_ids > 0, "twins must collide");
        assert_eq!(v1.cross_tenant_duplicate_ids, v2.cross_tenant_duplicate_ids);
        let chaotic = run_with(ProtoVersion::V2, true, "chaos-v2");
        assert!(chaotic.restarts > 0, "chaos must actually restart nodes");
        assert_eq!(
            chaotic.recovered_duplicate_ids, 0,
            "v2 recovery re-emitted pre-crash IDs"
        );
        assert_eq!(chaotic.global.recorded_ids, chaotic.issued_ids);
    }

    #[test]
    fn adversarial_network_fleet_stays_duplicate_free_and_stamps_its_schedule() {
        // The PR's acceptance scenario: 3 nodes over v2, partitions +
        // latency + torn frames + corrupted replies from the proxies,
        // AND --kill-every crash-restarts — the run completes, the
        // global audit is duplicate-free, and the same seed re-stamps
        // the same schedule fingerprint.
        let run = |seed: u64, tag: &str| {
            let mut cfg = base(AlgorithmKind::ClusterStar, 44, 3, tag);
            cfg.protocol = ProtoVersion::V2;
            cfg.chaos = Some(uuidp_netchaos::ChaosSpec::small());
            cfg.chaos_seed = seed;
            cfg.kill_every = Some(60);
            cfg.reservation = 64;
            let dir = cfg.state_dir.clone();
            let report = run_fleet(cfg).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            report
        };
        let report = run(0xFEED, "netchaos-a");
        assert_eq!(report.requests, 240);
        assert!(report.restarts > 0, "kill-every must fire");
        assert_eq!(report.global.duplicate_ids, 0, "chaos duplicated an ID");
        assert_eq!(report.recovered_duplicate_ids, 0);
        assert_eq!(
            report.global.recorded_ids, report.issued_ids,
            "router audit lost issued IDs"
        );
        let chaos = report.chaos.expect("chaos stamp");
        let text = report.render();
        assert!(text.contains("chaos:"), "{text}");
        assert!(text.contains("slo:"), "{text}");
        // Replayability: the same seed pins the same schedule, another
        // seed diverges.
        let again = run(0xFEED, "netchaos-b");
        assert_eq!(
            chaos.fingerprint,
            again.chaos.expect("chaos stamp").fingerprint
        );
        let other = run(0xBEEF, "netchaos-c");
        assert_ne!(
            chaos.fingerprint,
            other.chaos.expect("chaos stamp").fingerprint
        );
    }

    #[test]
    fn scraped_fleet_exports_required_families_on_every_node() {
        let mut cfg = base(AlgorithmKind::ClusterStar, 44, 3, "scrape");
        cfg.scrape = true;
        let dir = cfg.state_dir.clone();
        let report = run_fleet(cfg).unwrap();
        let metrics = report.metrics.as_ref().expect("scrape report");
        assert_eq!(metrics.per_node.len(), 3);
        assert_eq!(
            metrics.mid_scrapes, 3,
            "the halfway scrape must cover every node"
        );
        // No restarts, so the final-incarnation registries cover the
        // whole run: their summed counter equals the router's count.
        let issued: f64 = metrics
            .per_node
            .iter()
            .map(|f| f["uuidp_ids_issued_total"])
            .sum();
        assert_eq!(
            issued, report.issued_ids as f64,
            "registry totals must match the router's authoritative count"
        );
        assert!(report.render().contains("metrics:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_fleet_scrapes_expose_netchaos_counters_per_node() {
        let mut cfg = base(AlgorithmKind::ClusterStar, 44, 3, "scrape-chaos");
        cfg.protocol = ProtoVersion::V2;
        cfg.chaos = Some(uuidp_netchaos::ChaosSpec::small());
        cfg.chaos_seed = 0x0B5;
        cfg.scrape = true;
        let dir = cfg.state_dir.clone();
        let report = run_fleet(cfg).unwrap();
        let metrics = report.metrics.as_ref().expect("scrape report");
        for (i, families) in metrics.per_node.iter().enumerate() {
            let conns = families
                .get("uuidp_netchaos_connections_total")
                .copied()
                .unwrap_or(0.0);
            assert!(conns > 0.0, "node {i}'s registry never saw its proxy");
        }
        // The scrape predates the shutdown round-trips, so the mirror
        // can only lag the proxies' final tallies — never exceed them.
        let chaos = report.chaos.expect("chaos stamp");
        let scraped: f64 = metrics
            .per_node
            .iter()
            .map(|f| f["uuidp_netchaos_connections_total"])
            .sum();
        assert!(scraped <= chaos.injected.connections as f64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_chaos_fleet_replays_alert_sequence_and_cluster_fingerprint() {
        // The PR's acceptance scenario: a scraped chaos fleet with
        // crash-restarts, run twice with one seed, must reproduce the
        // exact alert-transition sequence and cluster-series pin —
        // request-count windows and a sequential driver leave no room
        // for the wall clock to leak in.
        let run = |tag: &str| {
            let mut cfg = base(AlgorithmKind::ClusterStar, 44, 3, tag);
            cfg.protocol = ProtoVersion::V2;
            // Hostile enough that some retry budgets exhaust — the
            // availability burn must actually transition, or the
            // determinism claim compares two empty lists.
            cfg.chaos =
                Some(uuidp_netchaos::ChaosSpec::parse("small,refuse:900,drop:600").unwrap());
            cfg.chaos_seed = 0xA1E7;
            cfg.kill_every = Some(60);
            cfg.reservation = 64;
            cfg.scrape = true;
            let dir = cfg.state_dir.clone();
            let report = run_fleet(cfg).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            report
        };
        let a = run("series-a");
        let b = run("series-b");
        let series_a = a.series.as_ref().expect("series report");
        let series_b = b.series.as_ref().expect("series report");
        assert_eq!(series_a.cluster_fingerprint, series_b.cluster_fingerprint);
        let lines =
            |s: &FleetSeriesReport| s.transitions.iter().map(|t| t.render()).collect::<Vec<_>>();
        assert!(!lines(series_a).is_empty(), "no alert ever transitioned");
        assert_eq!(lines(series_a), lines(series_b));
        // Kills landed, so restarted nodes opened fresh incarnation
        // series — and the reset clamp never had to fire.
        assert!(a.restarts > 0);
        assert!(series_a.incarnation_series > 3);
        assert_eq!(series_a.resets, 0);
        assert_eq!(series_a.windows, 16);
        let text = a.render();
        assert!(text.contains("cluster fingerprint"), "{text}");
    }

    #[test]
    fn chaos_restarts_leave_zero_recovered_duplicates() {
        let mut cfg = base(AlgorithmKind::ClusterStar, 40, 3, "chaos");
        cfg.kill_every = Some(40);
        cfg.reservation = 64;
        let dir = cfg.state_dir.clone();
        let report = run_fleet(cfg).unwrap();
        assert!(report.restarts > 0, "chaos must actually restart nodes");
        assert_eq!(report.issued_ids, 240 * 32);
        assert_eq!(
            report.recovered_duplicate_ids, 0,
            "a recovered node re-emitted a pre-crash ID"
        );
        assert_eq!(report.global.recorded_ids, report.issued_ids);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
