//! The tenant-affine router: the fleet's front door and its adversary.
//!
//! The [`Router`] plays two roles at once:
//!
//! * **Placement + transport** — every tenant is pinned to one node
//!   (`tenant % nodes`), and the router keeps **one persistent
//!   [`RemoteClient`] connection per node** for the whole run
//!   (re-established only when chaos kills the node). The pinning is
//!   what makes the whole fleet deterministic: a tenant's stream is a
//!   function of its seed alone, and no tenant is ever served by two
//!   nodes, so changing the node count only re-partitions the same set
//!   of per-tenant streams.
//! * **Global collision audit** — per-node audits die with their node
//!   and, worse, can never see a duplicate that spans two nodes (the
//!   cross-node same-seed twin, the paper's headline hazard). The
//!   router therefore tees every lease reply that crosses the wire
//!   into fleet-level [`LeaseAudit`]s that survive every crash.
//!
//! Two parallel audits are kept, differing only in owner key:
//!
//! * keyed by `(incarnation, tenant)` — a restarted node's tenants
//!   audit as *new* owners, so a recovery bug that re-emits pre-crash
//!   IDs counts as duplicates;
//! * keyed by `tenant` alone — blind to restarts, so it counts only
//!   genuine cross-tenant collisions.
//!
//! For any ID the incarnation-keyed owner set refines the tenant-keyed
//! one, hence `dup_incarnation ≥ dup_tenant`, and the difference is
//! *exactly* the IDs a tenant re-emitted across its own restarts —
//! the quantity chaos mode hard-fails on (see [`crate::run`]).
//!
//! The request *schedulers* ([`Placement`]) reuse the repository's
//! adversary taxonomy across nodes: uniform rotation (the oblivious
//! uniform profile), a power-law profile from
//! [`uuidp_adversary::profile::power_law`], and the adaptive
//! [`RunHunter`] choosing each next victim from the IDs the fleet
//! actually returned — the cross-node adaptive game.

use std::fmt;
use std::io;
use std::net::SocketAddr;

use uuidp_adversary::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};
use uuidp_adversary::profile::power_law;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_client::ProtoVersion;
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;
use uuidp_core::rng::{SeedDomain, SeedTree, Xoshiro256pp};
use uuidp_service::net::DialedClient;
use uuidp_sim::audit::{AuditCounts, LeaseAudit};

/// Tenants must fit under the incarnation tag in the global audit's
/// owner key.
pub const INCARNATION_SHIFT: u32 = 40;

/// How lease requests are scheduled across tenants (and therefore
/// across nodes — tenants are node-pinned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Round-robin over tenants: the uniform demand profile.
    #[default]
    Uniform,
    /// Power-law tenant choice (`α = 1.2` like the stress driver's
    /// skewed mix), weights from the adversary crate's profile
    /// machinery.
    Skewed,
    /// The adaptive [`RunHunter`] plays across the fleet: single-ID
    /// requests, each chosen from every ID observed so far.
    Hunter,
}

impl Placement {
    /// Parses a placement name (`uniform | skewed | hunter`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(Placement::Uniform),
            "skewed" | "zipf" => Ok(Placement::Skewed),
            "hunter" | "adaptive" => Ok(Placement::Hunter),
            other => Err(format!(
                "unknown placement `{other}` (uniform | skewed | hunter)"
            )),
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::Uniform => "uniform",
            Placement::Skewed => "skewed",
            Placement::Hunter => "hunter",
        })
    }
}

/// Per-request tenant scheduler for one fleet run. Deterministic given
/// `(placement, tenants, master seed)` — and for the hunter, the
/// observed IDs, which are themselves deterministic — so fleet totals
/// are reproducible and node-count-invariant.
pub struct Scheduler {
    tenants: u64,
    kind: SchedulerKind,
}

enum SchedulerKind {
    Uniform,
    Skewed {
        /// Prefix-sum CDF over tenant weights.
        cdf: Vec<f64>,
        rng: Xoshiro256pp,
    },
    Hunter {
        adversary: Box<dyn AdaptiveAdversary>,
        histories: Vec<Vec<Id>>,
        space: IdSpace,
    },
}

impl Scheduler {
    /// A scheduler for `requests` leases over `tenants` tenants.
    pub fn new(
        placement: Placement,
        tenants: u64,
        requests: u64,
        space: IdSpace,
        master_seed: u64,
    ) -> Scheduler {
        assert!(tenants >= 1, "at least one tenant");
        let kind = match placement {
            Placement::Uniform => SchedulerKind::Uniform,
            Placement::Skewed => {
                // The α = 1.2 power-law profile; `power_law` yields the
                // integer demand profile, used here as sampling weights.
                let profile = power_law(tenants as usize, (tenants as u128) * 1000, 1.2);
                let total: u128 = profile.demands().iter().sum();
                let mut acc = 0.0;
                let cdf = profile
                    .demands()
                    .iter()
                    .map(|&d| {
                        acc += d as f64 / total as f64;
                        acc
                    })
                    .collect();
                SchedulerKind::Skewed {
                    cdf,
                    rng: SeedTree::new(master_seed).rng(SeedDomain::Workload),
                }
            }
            Placement::Hunter => {
                // The hunt needs at least two instances to pit against
                // each other; with `tenants = 1` a second tenant is
                // conscripted (it still routes to a valid node).
                let n = tenants.max(2) as usize;
                let budget = (requests as u128).max(n as u128);
                SchedulerKind::Hunter {
                    adversary: RunHunter::new(n, budget).spawn(master_seed),
                    histories: Vec::new(),
                    space,
                }
            }
        };
        Scheduler { tenants, kind }
    }

    /// The tenant for request number `submitted`, or `None` when an
    /// adaptive scheduler stops early.
    pub fn next(&mut self, submitted: u64) -> Option<u64> {
        match &mut self.kind {
            SchedulerKind::Uniform => Some(submitted % self.tenants),
            SchedulerKind::Skewed { cdf, rng } => {
                let u = (rng.next_value() >> 11) as f64 / (1u64 << 53) as f64;
                Some(cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64)
            }
            SchedulerKind::Hunter {
                adversary,
                histories,
                space,
            } => {
                let action = adversary.next_action(&GameView {
                    space: *space,
                    histories,
                    // The global audit runs as the IDs come back; the
                    // attacker plays its budget out rather than
                    // stopping at first blood.
                    collision: false,
                    total_requests: submitted as u128,
                });
                let tenant = match action {
                    Action::Stop => return None,
                    Action::Activate => {
                        histories.push(Vec::new());
                        histories.len() - 1
                    }
                    Action::Request(i) => i,
                };
                Some(tenant as u64)
            }
        }
    }

    /// The per-lease ID count this scheduler imposes, if any (the
    /// hunter plays single-ID requests).
    pub fn forced_count(&self) -> Option<u128> {
        match self.kind {
            SchedulerKind::Hunter { .. } => Some(1),
            _ => None,
        }
    }

    /// Feeds an observed ID back to adaptive schedulers.
    pub fn observe(&mut self, tenant: u64, id: Id) {
        if let SchedulerKind::Hunter { histories, .. } = &mut self.kind {
            if let Some(h) = histories.get_mut(tenant as usize) {
                h.push(id);
            }
        }
    }
}

/// The global audit owner key: incarnation tag above the tenant number.
pub fn owner_key(tenant: u64, incarnation: u32) -> u64 {
    assert!(
        tenant < 1 << INCARNATION_SHIFT,
        "tenant id too wide for incarnation tagging"
    );
    ((incarnation as u64) << INCARNATION_SHIFT) | tenant
}

/// The tenant-affine fleet router (see the module docs).
pub struct Router {
    space: IdSpace,
    protocol: ProtoVersion,
    clients: Vec<Option<DialedClient>>,
    incarnations: Vec<u32>,
    audit: LeaseAudit,
    audit_by_tenant: LeaseAudit,
    issued: u128,
    leases: u64,
    errors: u64,
}

impl Router {
    /// A router for `nodes` nodes over `space`, auditing globally with
    /// `audit_stripes` stripes and speaking `protocol` to every node
    /// (v1: one line-protocol connection per node; v2: one multiplexed
    /// framed connection per node).
    pub fn new(
        space: IdSpace,
        nodes: usize,
        audit_stripes: usize,
        protocol: ProtoVersion,
    ) -> Router {
        assert!(nodes >= 1, "at least one node");
        Router {
            space,
            protocol,
            clients: (0..nodes).map(|_| None).collect(),
            incarnations: vec![0; nodes],
            audit: LeaseAudit::new(space, audit_stripes),
            audit_by_tenant: LeaseAudit::new(space, audit_stripes),
            issued: 0,
            leases: 0,
            errors: 0,
        }
    }

    /// The node pinned to `tenant`.
    pub fn node_of(&self, tenant: u64) -> usize {
        (tenant % self.clients.len() as u64) as usize
    }

    /// Opens (or replaces) the persistent connection to node `index`.
    pub fn connect(&mut self, index: usize, addr: SocketAddr) -> io::Result<()> {
        self.clients[index] = Some(DialedClient::connect(addr, self.space, self.protocol)?);
        Ok(())
    }

    /// The wire protocol this router dials nodes with.
    pub fn protocol(&self) -> ProtoVersion {
        self.protocol
    }

    /// Reconnects to a crash-restarted node: fresh connection, and all
    /// the node's tenants audit under the next incarnation from here
    /// on (so any overlap with their pre-crash material counts).
    pub fn reconnect_after_crash(&mut self, index: usize, addr: SocketAddr) -> io::Result<()> {
        self.incarnations[index] += 1;
        self.connect(index, addr)
    }

    /// The incarnation the router currently attributes to node `index`.
    pub fn incarnation(&self, index: usize) -> u32 {
        self.incarnations[index]
    }

    /// Routes one lease to the tenant's node over the persistent
    /// connection and records the granted arcs in both global audits.
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<Vec<Arc>> {
        let node = self.node_of(tenant);
        let incarnation = self.incarnations[node];
        let client = self.clients[node]
            .as_mut()
            .expect("router must be connected to the tenant's node");
        let lease = client.lease(tenant, count)?;
        self.leases += 1;
        self.issued += lease.granted;
        self.errors += lease.error.is_some() as u64;
        let owner = owner_key(tenant, incarnation);
        for &arc in &lease.arcs {
            self.audit.record(owner, arc);
            self.audit_by_tenant.record(tenant, arc);
        }
        Ok(lease.arcs)
    }

    /// Total IDs issued through this router.
    pub fn issued(&self) -> u128 {
        self.issued
    }

    /// Leases routed.
    pub fn leases(&self) -> u64 {
        self.leases
    }

    /// Leases whose grant fell short (generator exhaustion).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The incarnation-keyed global audit counters (restart-aware).
    pub fn global_counts(&self) -> AuditCounts {
        self.audit.counts()
    }

    /// The tenant-keyed global audit counters (restart-blind: genuine
    /// cross-tenant duplicates only).
    pub fn cross_tenant_counts(&self) -> AuditCounts {
        self.audit_by_tenant.counts()
    }

    /// IDs a tenant re-emitted across its own restarts — the recovery
    /// failure metric, provably `global − cross_tenant` (the owner
    /// refinement argument in the module docs).
    pub fn recovered_duplicate_ids(&self) -> u128 {
        self.audit.counts().duplicate_ids - self.audit_by_tenant.counts().duplicate_ids
    }

    /// Sends `shutdown` over node `index`'s connection, consuming it.
    /// The node's own summary line is parsed and dropped — the caller
    /// collects the richer server-side report via
    /// [`Fleet::join_node`](crate::cluster::Fleet::join_node).
    pub fn shutdown_node(&mut self, index: usize) -> io::Result<()> {
        if let Some(client) = self.clients[index].take() {
            client.shutdown()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_keys_separate_incarnations_and_tenants() {
        assert_eq!(owner_key(7, 0), 7);
        assert_ne!(owner_key(7, 1), owner_key(7, 0));
        assert_ne!(owner_key(7, 1), owner_key(8, 1));
        assert_eq!(owner_key(7, 1) & ((1 << INCARNATION_SHIFT) - 1), 7);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn oversized_tenants_are_rejected() {
        owner_key(1 << INCARNATION_SHIFT, 0);
    }

    #[test]
    fn placement_parses_and_displays() {
        for (name, want) in [
            ("uniform", Placement::Uniform),
            ("skewed", Placement::Skewed),
            ("zipf", Placement::Skewed),
            ("hunter", Placement::Hunter),
            ("adaptive", Placement::Hunter),
        ] {
            assert_eq!(Placement::parse(name).unwrap(), want);
        }
        assert!(Placement::parse("mesh").is_err());
        assert_eq!(Placement::Skewed.to_string(), "skewed");
    }

    #[test]
    fn uniform_and_skewed_schedules_are_deterministic() {
        let space = IdSpace::with_bits(32).unwrap();
        for placement in [Placement::Uniform, Placement::Skewed] {
            let mut a = Scheduler::new(placement, 6, 100, space, 42);
            let mut b = Scheduler::new(placement, 6, 100, space, 42);
            for r in 0..100 {
                let (x, y) = (a.next(r), b.next(r));
                assert_eq!(x, y, "{placement} diverged at {r}");
                assert!(x.unwrap() < 6);
            }
        }
    }

    #[test]
    fn skewed_schedule_actually_skews() {
        let space = IdSpace::with_bits(32).unwrap();
        let mut s = Scheduler::new(Placement::Skewed, 8, 4000, space, 7);
        let mut counts = [0u32; 8];
        for r in 0..4000 {
            counts[s.next(r).unwrap() as usize] += 1;
        }
        assert!(
            counts[0] > counts[7] * 2,
            "power law should favor tenant 0: {counts:?}"
        );
    }

    #[test]
    fn hunter_schedule_respects_the_tenant_budget_shape() {
        let space = IdSpace::with_bits(24).unwrap();
        let mut s = Scheduler::new(Placement::Hunter, 4, 50, space, 3);
        assert_eq!(s.forced_count(), Some(1));
        let mut submitted = 0u64;
        while submitted < 50 {
            let Some(tenant) = s.next(submitted) else {
                break;
            };
            assert!(tenant < 4, "hunter chose tenant {tenant} of 4");
            // Feed a fabricated observation to keep the game moving.
            s.observe(tenant, Id(submitted as u128 * 17 % (1 << 24)));
            submitted += 1;
        }
        assert!(submitted >= 4, "probe phase must run");
    }
}
