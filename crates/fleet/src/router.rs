//! The tenant-affine router: the fleet's front door and its adversary.
//!
//! The [`Router`] plays two roles at once:
//!
//! * **Placement + transport** — every tenant is pinned to one node
//!   (`tenant % nodes`), and the router keeps **one persistent
//!   [`RemoteClient`] connection per node** for the whole run
//!   (re-established only when chaos kills the node). The pinning is
//!   what makes the whole fleet deterministic: a tenant's stream is a
//!   function of its seed alone, and no tenant is ever served by two
//!   nodes, so changing the node count only re-partitions the same set
//!   of per-tenant streams.
//! * **Global collision audit** — per-node audits die with their node
//!   and, worse, can never see a duplicate that spans two nodes (the
//!   cross-node same-seed twin, the paper's headline hazard). The
//!   router therefore tees every lease reply that crosses the wire
//!   into fleet-level [`LeaseAudit`]s that survive every crash.
//!
//! Two parallel audits are kept, differing only in owner key:
//!
//! * keyed by `(incarnation, tenant)` — a restarted node's tenants
//!   audit as *new* owners, so a recovery bug that re-emits pre-crash
//!   IDs counts as duplicates;
//! * keyed by `tenant` alone — blind to restarts, so it counts only
//!   genuine cross-tenant collisions.
//!
//! For any ID the incarnation-keyed owner set refines the tenant-keyed
//! one, hence `dup_incarnation ≥ dup_tenant`, and the difference is
//! *exactly* the IDs a tenant re-emitted across its own restarts —
//! the quantity chaos mode hard-fails on (see [`crate::run`]).
//!
//! The request *schedulers* ([`Placement`]) reuse the repository's
//! adversary taxonomy across nodes: uniform rotation (the oblivious
//! uniform profile), a power-law profile from
//! [`uuidp_adversary::profile::power_law`], and the adaptive
//! [`RunHunter`] choosing each next victim from the IDs the fleet
//! actually returned — the cross-node adaptive game.

use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use uuidp_core::clock;

use uuidp_adversary::adaptive::{Action, AdaptiveAdversary, AdversarySpec, GameView};
use uuidp_adversary::profile::power_law;
use uuidp_adversary::run_hunter::RunHunter;
use uuidp_client::{classify, ErrorClass, ProtoVersion, RetryPolicy};
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::Arc;
use uuidp_core::rng::{SeedDomain, SeedTree, Xoshiro256pp};
use uuidp_service::metrics::{FaultCounters, LatencyHistogram};
use uuidp_service::net::DialedClient;
use uuidp_sim::audit::{AuditCounts, LeaseAudit};

/// Tenants must fit under the incarnation tag in the global audit's
/// owner key.
pub const INCARNATION_SHIFT: u32 = 40;

/// How lease requests are scheduled across tenants (and therefore
/// across nodes — tenants are node-pinned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Round-robin over tenants: the uniform demand profile.
    #[default]
    Uniform,
    /// Power-law tenant choice (`α = 1.2` like the stress driver's
    /// skewed mix), weights from the adversary crate's profile
    /// machinery.
    Skewed,
    /// The adaptive [`RunHunter`] plays across the fleet: single-ID
    /// requests, each chosen from every ID observed so far.
    Hunter,
}

impl Placement {
    /// Parses a placement name (`uniform | skewed | hunter`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(Placement::Uniform),
            "skewed" | "zipf" => Ok(Placement::Skewed),
            "hunter" | "adaptive" => Ok(Placement::Hunter),
            other => Err(format!(
                "unknown placement `{other}` (uniform | skewed | hunter)"
            )),
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::Uniform => "uniform",
            Placement::Skewed => "skewed",
            Placement::Hunter => "hunter",
        })
    }
}

/// Per-request tenant scheduler for one fleet run. Deterministic given
/// `(placement, tenants, master seed)` — and for the hunter, the
/// observed IDs, which are themselves deterministic — so fleet totals
/// are reproducible and node-count-invariant.
pub struct Scheduler {
    tenants: u64,
    kind: SchedulerKind,
}

enum SchedulerKind {
    Uniform,
    Skewed {
        /// Prefix-sum CDF over tenant weights.
        cdf: Vec<f64>,
        rng: Xoshiro256pp,
    },
    Hunter {
        adversary: Box<dyn AdaptiveAdversary>,
        histories: Vec<Vec<Id>>,
        space: IdSpace,
    },
}

impl Scheduler {
    /// A scheduler for `requests` leases over `tenants` tenants.
    pub fn new(
        placement: Placement,
        tenants: u64,
        requests: u64,
        space: IdSpace,
        master_seed: u64,
    ) -> Scheduler {
        assert!(tenants >= 1, "at least one tenant");
        let kind = match placement {
            Placement::Uniform => SchedulerKind::Uniform,
            Placement::Skewed => {
                // The α = 1.2 power-law profile; `power_law` yields the
                // integer demand profile, used here as sampling weights.
                let profile = power_law(tenants as usize, (tenants as u128) * 1000, 1.2);
                let total: u128 = profile.demands().iter().sum();
                let mut acc = 0.0;
                let cdf = profile
                    .demands()
                    .iter()
                    .map(|&d| {
                        acc += d as f64 / total as f64;
                        acc
                    })
                    .collect();
                SchedulerKind::Skewed {
                    cdf,
                    rng: SeedTree::new(master_seed).rng(SeedDomain::Workload),
                }
            }
            Placement::Hunter => {
                // The hunt needs at least two instances to pit against
                // each other; with `tenants = 1` a second tenant is
                // conscripted (it still routes to a valid node).
                let n = tenants.max(2) as usize;
                let budget = (requests as u128).max(n as u128);
                SchedulerKind::Hunter {
                    adversary: RunHunter::new(n, budget).spawn(master_seed),
                    histories: Vec::new(),
                    space,
                }
            }
        };
        Scheduler { tenants, kind }
    }

    /// The tenant for request number `submitted`, or `None` when an
    /// adaptive scheduler stops early.
    pub fn next(&mut self, submitted: u64) -> Option<u64> {
        match &mut self.kind {
            SchedulerKind::Uniform => Some(submitted % self.tenants),
            SchedulerKind::Skewed { cdf, rng } => {
                let u = (rng.next_value() >> 11) as f64 / (1u64 << 53) as f64;
                Some(cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64)
            }
            SchedulerKind::Hunter {
                adversary,
                histories,
                space,
            } => {
                let action = adversary.next_action(&GameView {
                    space: *space,
                    histories,
                    // The global audit runs as the IDs come back; the
                    // attacker plays its budget out rather than
                    // stopping at first blood.
                    collision: false,
                    total_requests: submitted as u128,
                });
                let tenant = match action {
                    Action::Stop => return None,
                    Action::Activate => {
                        histories.push(Vec::new());
                        histories.len() - 1
                    }
                    Action::Request(i) => i,
                };
                Some(tenant as u64)
            }
        }
    }

    /// The per-lease ID count this scheduler imposes, if any (the
    /// hunter plays single-ID requests).
    pub fn forced_count(&self) -> Option<u128> {
        match self.kind {
            SchedulerKind::Hunter { .. } => Some(1),
            _ => None,
        }
    }

    /// Feeds an observed ID back to adaptive schedulers.
    pub fn observe(&mut self, tenant: u64, id: Id) {
        if let SchedulerKind::Hunter { histories, .. } = &mut self.kind {
            if let Some(h) = histories.get_mut(tenant as usize) {
                h.push(id);
            }
        }
    }
}

/// The global audit owner key: incarnation tag above the tenant number.
pub fn owner_key(tenant: u64, incarnation: u32) -> u64 {
    assert!(
        tenant < 1 << INCARNATION_SHIFT,
        "tenant id too wide for incarnation tagging"
    );
    ((incarnation as u64) << INCARNATION_SHIFT) | tenant
}

/// A node's health as the router sees it.
///
/// `Healthy → Suspect` on the first failure, `Suspect → Down` after
/// [`DOWN_AFTER`] consecutive failures, and any state `→ Healthy` the
/// moment a request (which doubles as the recovery probe — every
/// attempt against a disconnected node redials it first) succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    /// The last request succeeded.
    #[default]
    Healthy,
    /// At least one recent failure; the node is being probed by the
    /// very requests routed to it.
    Suspect,
    /// [`DOWN_AFTER`] or more consecutive failures. Still probed — a
    /// node is never written off, only its error budget is.
    Down,
}

impl fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Down => "down",
        })
    }
}

/// Consecutive failures that demote a suspect node to down.
pub const DOWN_AFTER: u32 = 3;

/// The router's view of one node: where it listens, the persistent
/// connection (if live), and the health bookkeeping.
struct NodeLink {
    addr: Option<SocketAddr>,
    client: Option<DialedClient>,
    incarnation: u32,
    health: NodeHealth,
    consecutive_failures: u32,
}

impl NodeLink {
    fn new() -> NodeLink {
        NodeLink {
            addr: None,
            client: None,
            incarnation: 0,
            health: NodeHealth::Healthy,
            consecutive_failures: 0,
        }
    }
}

/// The tenant-affine fleet router (see the module docs).
pub struct Router {
    space: IdSpace,
    protocol: ProtoVersion,
    links: Vec<NodeLink>,
    policy: RetryPolicy,
    dial_timeout: Option<Duration>,
    faults: FaultCounters,
    latency: LatencyHistogram,
    audit: LeaseAudit,
    audit_by_tenant: LeaseAudit,
    issued: u128,
    leases: u64,
    errors: u64,
}

impl Router {
    /// A router for `nodes` nodes over `space`, auditing globally with
    /// `audit_stripes` stripes and speaking `protocol` to every node
    /// (v1: one line-protocol connection per node; v2: one multiplexed
    /// framed connection per node).
    pub fn new(
        space: IdSpace,
        nodes: usize,
        audit_stripes: usize,
        protocol: ProtoVersion,
    ) -> Router {
        assert!(nodes >= 1, "at least one node");
        Router {
            space,
            protocol,
            links: (0..nodes).map(|_| NodeLink::new()).collect(),
            policy: RetryPolicy::none(),
            dial_timeout: None,
            faults: FaultCounters::default(),
            latency: LatencyHistogram::new(),
            audit: LeaseAudit::new(space, audit_stripes),
            audit_by_tenant: LeaseAudit::new(space, audit_stripes),
            issued: 0,
            leases: 0,
            errors: 0,
        }
    }

    /// The node pinned to `tenant`.
    pub fn node_of(&self, tenant: u64) -> usize {
        (tenant % self.links.len() as u64) as usize
    }

    /// Installs the retry schedule for node failures. The default is
    /// [`RetryPolicy::none`] — fail fast, the right behavior when the
    /// network is supposed to be clean and an error means a bug.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Bounds every dial and reply read (`None` = block forever). Set
    /// this whenever a chaos proxy sits on the path.
    pub fn set_dial_timeout(&mut self, timeout: Option<Duration>) {
        self.dial_timeout = timeout;
    }

    /// Opens (or replaces) the persistent connection to node `index`.
    pub fn connect(&mut self, index: usize, addr: SocketAddr) -> io::Result<()> {
        self.links[index].addr = Some(addr);
        match DialedClient::connect_with(addr, self.space, self.protocol, self.dial_timeout) {
            Ok(client) => {
                let link = &mut self.links[index];
                link.client = Some(client);
                link.health = NodeHealth::Healthy;
                link.consecutive_failures = 0;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Records node `index`'s address without dialing: the first
    /// request routed there probes it. This is how a router starts
    /// against a chaotic network, where even the first dial may be
    /// inside a partition window.
    pub fn set_addr(&mut self, index: usize, addr: SocketAddr) {
        let link = &mut self.links[index];
        link.addr = Some(addr);
        link.client = None;
    }

    /// The wire protocol this router dials nodes with.
    pub fn protocol(&self) -> ProtoVersion {
        self.protocol
    }

    /// Reconnects to a crash-restarted node: fresh connection, and all
    /// the node's tenants audit under the next incarnation from here
    /// on (so any overlap with their pre-crash material counts).
    pub fn reconnect_after_crash(&mut self, index: usize, addr: SocketAddr) -> io::Result<()> {
        self.links[index].incarnation += 1;
        self.connect(index, addr)
    }

    /// The crash acknowledgement for proxied topologies, where the
    /// node's *proxy* address is stable across the restart: bumps the
    /// incarnation and drops the (dead) connection — dropping a v2
    /// client fails its pending waiters with a typed broken-connection
    /// error, so in-flight work is drained, never stranded. The next
    /// request to the node redials through the stored address.
    pub fn mark_restarted(&mut self, index: usize) {
        let link = &mut self.links[index];
        link.incarnation += 1;
        link.client = None;
        link.health = NodeHealth::Suspect;
    }

    /// The incarnation the router currently attributes to node `index`.
    pub fn incarnation(&self, index: usize) -> u32 {
        self.links[index].incarnation
    }

    /// Node `index`'s health as of the last request routed to it.
    pub fn health(&self, index: usize) -> NodeHealth {
        self.links[index].health
    }

    /// The per-fault-class ledger of everything [`Router::lease`]
    /// absorbed (all-zero under a clean network).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    /// Client-side lease latency through this router (includes retry
    /// and backoff time — the latency a caller actually experienced).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// One lease attempt against node `index`, redialing first if the
    /// connection is down (the probe half of probed recovery).
    fn try_lease_once(
        &mut self,
        node: usize,
        tenant: u64,
        count: u128,
    ) -> io::Result<uuidp_service::protocol::WireLease> {
        if self.links[node].client.is_none() {
            let addr = self.links[node].addr.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotConnected,
                    format!("router has no address for node {node}"),
                )
            })?;
            let client =
                DialedClient::connect_with(addr, self.space, self.protocol, self.dial_timeout)?;
            self.links[node].client = Some(client);
            self.faults.reconnects += 1;
        }
        self.links[node]
            .client
            .as_mut()
            .expect("just dialed")
            .lease(tenant, count)
    }

    /// Routes one lease to the tenant's node over the persistent
    /// connection and records the granted arcs in both global audits.
    ///
    /// Failures are classified and retried under the installed
    /// [`RetryPolicy`] — always against the tenant's *own* node. There
    /// is no cross-node failover, by design: every node derives the
    /// same per-tenant streams from the shared master seed, so serving
    /// a tenant from a second node would manufacture the exact
    /// duplicates this whole system exists to prevent. A lost reply
    /// means the granted IDs leak; a retry gets fresh ones
    /// (leak-not-duplicate, pinned by the global audit).
    pub fn lease(&mut self, tenant: u64, count: u128) -> io::Result<Vec<Arc>> {
        let node = self.node_of(tenant);
        let started_ns = clock::monotonic_ns();
        let mut attempt = 0u32;
        loop {
            match self.try_lease_once(node, tenant, count) {
                Ok(lease) => {
                    let link = &mut self.links[node];
                    link.health = NodeHealth::Healthy;
                    link.consecutive_failures = 0;
                    self.latency.record(Duration::from_nanos(
                        clock::monotonic_ns().saturating_sub(started_ns),
                    ));
                    self.leases += 1;
                    self.issued += lease.granted;
                    self.errors += lease.error.is_some() as u64;
                    let owner = owner_key(tenant, link.incarnation);
                    for &arc in &lease.arcs {
                        self.audit.record(owner, arc);
                        self.audit_by_tenant.record(tenant, arc);
                    }
                    return Ok(lease.arcs);
                }
                Err(e) => {
                    self.faults.observe(&e);
                    let link = &mut self.links[node];
                    link.client = None; // poisoned either way
                    link.consecutive_failures += 1;
                    link.health = if link.consecutive_failures >= DOWN_AFTER {
                        NodeHealth::Down
                    } else {
                        NodeHealth::Suspect
                    };
                    let fatal = classify(&e) == ErrorClass::Fatal;
                    if fatal || !self.policy.allows(attempt) {
                        self.faults.exhausted += 1;
                        return Err(e);
                    }
                    self.faults.retries += 1;
                    std::thread::sleep(self.policy.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Total IDs issued through this router.
    pub fn issued(&self) -> u128 {
        self.issued
    }

    /// Leases routed.
    pub fn leases(&self) -> u64 {
        self.leases
    }

    /// Leases whose grant fell short (generator exhaustion).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The incarnation-keyed global audit counters (restart-aware).
    pub fn global_counts(&self) -> AuditCounts {
        self.audit.counts()
    }

    /// The tenant-keyed global audit counters (restart-blind: genuine
    /// cross-tenant duplicates only).
    pub fn cross_tenant_counts(&self) -> AuditCounts {
        self.audit_by_tenant.counts()
    }

    /// IDs a tenant re-emitted across its own restarts — the recovery
    /// failure metric, provably `global − cross_tenant` (the owner
    /// refinement argument in the module docs).
    pub fn recovered_duplicate_ids(&self) -> u128 {
        self.audit.counts().duplicate_ids - self.audit_by_tenant.counts().duplicate_ids
    }

    /// Sends `shutdown` over node `index`'s connection, consuming it.
    /// The node's own summary line is parsed and dropped — the caller
    /// collects the richer server-side report via
    /// [`Fleet::join_node`](crate::cluster::Fleet::join_node).
    ///
    /// Like [`Router::lease`], the shutdown survives a poisoned
    /// connection: on failure a fresh connection is dialed (up to the
    /// retry budget) so the run's accounting is never lost to a fault
    /// that was scheduled mid-teardown.
    pub fn shutdown_node(&mut self, index: usize) -> io::Result<()> {
        let mut client = self.links[index].client.take();
        if client.is_none() && self.links[index].addr.is_none() {
            return Ok(()); // never connected, nothing to shut down
        }
        let mut attempt = 0u32;
        loop {
            let result = match client.take() {
                Some(c) => c.shutdown().map(|_| ()),
                None => {
                    let addr = self.links[index].addr.expect("checked above");
                    DialedClient::connect_with(addr, self.space, self.protocol, self.dial_timeout)
                        .and_then(|c| c.shutdown())
                        .map(|_| ())
                }
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.faults.observe(&e);
                    if !self.policy.allows(attempt) {
                        self.faults.exhausted += 1;
                        return Err(e);
                    }
                    self.faults.retries += 1;
                    std::thread::sleep(self.policy.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::AlgorithmKind;
    use uuidp_service::net::TcpServer;
    use uuidp_service::service::ServiceConfig;

    #[test]
    fn health_walks_suspect_to_down_and_recovers_on_success() {
        let space = IdSpace::with_bits(40).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::Cluster, space);
        let server = TcpServer::bind("127.0.0.1:0", config.clone()).unwrap();
        let mut router = Router::new(space, 1, 4, ProtoVersion::V2);
        router.set_retry_policy(RetryPolicy {
            max_retries: 1,
            base: Duration::from_micros(100),
            max: Duration::from_micros(200),
            ..RetryPolicy::default()
        });
        router.connect(0, server.local_addr()).unwrap();
        assert_eq!(router.health(0), NodeHealth::Healthy);
        assert_eq!(router.lease(0, 10).unwrap().len(), 1);

        // Kill the node; every lease now burns 1 try + 1 retry = 2
        // consecutive failures, so the second lease crosses DOWN_AFTER.
        let halted = server.halt();
        assert!(halted.is_some());
        assert!(router.lease(0, 10).is_err());
        assert_eq!(router.health(0), NodeHealth::Suspect);
        assert!(router.lease(0, 10).is_err());
        assert_eq!(router.health(0), NodeHealth::Down);
        let faults = router.fault_counters();
        assert!(faults.failed_attempts() >= 4, "{faults:?}");
        assert_eq!(faults.exhausted, 2);

        // A successor node comes up; the next request probes it back to
        // healthy without an explicit connect call.
        let server2 = TcpServer::bind("127.0.0.1:0", config).unwrap();
        router.set_addr(0, server2.local_addr());
        assert_eq!(router.lease(0, 10).unwrap().len(), 1);
        assert_eq!(router.health(0), NodeHealth::Healthy);
        assert!(router.latency().count() >= 2);
        router.shutdown_node(0).unwrap();
        assert!(server2.join().is_some());
    }

    #[test]
    fn owner_keys_separate_incarnations_and_tenants() {
        assert_eq!(owner_key(7, 0), 7);
        assert_ne!(owner_key(7, 1), owner_key(7, 0));
        assert_ne!(owner_key(7, 1), owner_key(8, 1));
        assert_eq!(owner_key(7, 1) & ((1 << INCARNATION_SHIFT) - 1), 7);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn oversized_tenants_are_rejected() {
        owner_key(1 << INCARNATION_SHIFT, 0);
    }

    #[test]
    fn placement_parses_and_displays() {
        for (name, want) in [
            ("uniform", Placement::Uniform),
            ("skewed", Placement::Skewed),
            ("zipf", Placement::Skewed),
            ("hunter", Placement::Hunter),
            ("adaptive", Placement::Hunter),
        ] {
            assert_eq!(Placement::parse(name).unwrap(), want);
        }
        assert!(Placement::parse("mesh").is_err());
        assert_eq!(Placement::Skewed.to_string(), "skewed");
    }

    #[test]
    fn uniform_and_skewed_schedules_are_deterministic() {
        let space = IdSpace::with_bits(32).unwrap();
        for placement in [Placement::Uniform, Placement::Skewed] {
            let mut a = Scheduler::new(placement, 6, 100, space, 42);
            let mut b = Scheduler::new(placement, 6, 100, space, 42);
            for r in 0..100 {
                let (x, y) = (a.next(r), b.next(r));
                assert_eq!(x, y, "{placement} diverged at {r}");
                assert!(x.unwrap() < 6);
            }
        }
    }

    #[test]
    fn skewed_schedule_actually_skews() {
        let space = IdSpace::with_bits(32).unwrap();
        let mut s = Scheduler::new(Placement::Skewed, 8, 4000, space, 7);
        let mut counts = [0u32; 8];
        for r in 0..4000 {
            counts[s.next(r).unwrap() as usize] += 1;
        }
        assert!(
            counts[0] > counts[7] * 2,
            "power law should favor tenant 0: {counts:?}"
        );
    }

    #[test]
    fn hunter_schedule_respects_the_tenant_budget_shape() {
        let space = IdSpace::with_bits(24).unwrap();
        let mut s = Scheduler::new(Placement::Hunter, 4, 50, space, 3);
        assert_eq!(s.forced_count(), Some(1));
        let mut submitted = 0u64;
        while submitted < 50 {
            let Some(tenant) = s.next(submitted) else {
                break;
            };
            assert!(tenant < 4, "hunter chose tenant {tenant} of 4");
            // Feed a fabricated observation to keep the game moving.
            s.observe(tenant, Id(submitted as u128 * 17 % (1 << 24)));
            submitted += 1;
        }
        assert!(submitted >= 4, "probe phase must run");
    }
}
