//! Constant-memory windowed time-series over registry snapshots.
//!
//! A [`TimeSeries`] slices a monotonically advancing clock (real
//! nanoseconds, or any deterministic tick supplied by the caller) into
//! fixed-width windows and keeps a bounded ring of the most recent
//! ones. Each ingested [`Snapshot`] is diffed against the previous
//! sample:
//!
//! * **counters** store per-window *deltas* — a sample that goes
//!   backwards is a counter reset (the process restarted with a fresh
//!   registry), and the new value is taken as a fresh-from-zero delta,
//!   so a restart produces a rate *dip*, never a negative rate;
//! * **gauges** store the *last* value observed in the window;
//! * **histograms** store per-window delta histograms (via
//!   [`Histogram::delta_since`]), so windowed quantiles reflect only
//!   the samples recorded inside that window.
//!
//! Memory is constant: `capacity` windows, each bounded by the number
//! of metric families — nothing grows with run length. Windows
//! [`merge`](Window::merge) commutatively and associatively (counters
//! add, gauges add, histograms merge), which is what lets per-node
//! series collapse into a cluster series in any arrival order; the
//! proptests in `tests/proptest_obs.rs` pin that invariance.

use std::collections::{BTreeMap, VecDeque};

use crate::registry::{Histogram, MetricValue, Snapshot};

/// One fixed-width window of counter deltas, gauge last-values, and
/// delta histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Window {
    /// Window number: `at_ns / width_ns` of every sample inside it.
    pub index: u64,
    /// Per-family counter increments observed during the window.
    pub counters: BTreeMap<String, u64>,
    /// Per-family last gauge value observed during the window. A
    /// merged (cluster) window holds the *sum* across members.
    pub gauges: BTreeMap<String, i64>,
    /// Per-family histogram of samples recorded during the window.
    pub histograms: BTreeMap<String, Histogram>,
    /// Counter resets detected while ingesting this window.
    pub resets: u64,
}

impl Window {
    /// An empty window at `index` — the accumulator for cluster
    /// assembly ([`Window::merge`] over per-node windows).
    pub fn new(index: u64) -> Window {
        Window {
            index,
            ..Window::default()
        }
    }

    /// Folds `other` into `self`: counters add, gauges add (a cluster
    /// gauge is the sum of its members' levels), histograms merge,
    /// resets add. Commutative and associative up to f-p-free integer
    /// arithmetic, so cluster assembly order cannot change the result.
    pub fn merge(&mut self, other: &Window) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        self.resets += other.resets;
    }

    /// The counter delta for `name` in this window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The last gauge value for `name` in this window.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The delta histogram for `name` in this window.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// Bounded ring of fixed-width windows fed from registry snapshots.
///
/// The series never reads a clock: callers pass `at_ns`, which may be
/// real time (`uuidp top`) or a deterministic request tick (fleet
/// runs), keeping same-seed runs bit-identical.
#[derive(Debug)]
pub struct TimeSeries {
    width_ns: u64,
    capacity: usize,
    windows: VecDeque<Window>,
    /// Previous absolute sample per family, for delta computation.
    last: BTreeMap<String, MetricValue>,
    resets_total: u64,
}

impl TimeSeries {
    /// A series of `capacity` windows, each `width_ns` ticks wide.
    /// Both are clamped to at least 1.
    pub fn new(width_ns: u64, capacity: usize) -> TimeSeries {
        TimeSeries {
            width_ns: width_ns.max(1),
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            last: BTreeMap::new(),
            resets_total: 0,
        }
    }

    /// Window width in ticks (nanoseconds or request counts).
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Total counter resets detected over the series' lifetime.
    pub fn resets_total(&self) -> u64 {
        self.resets_total
    }

    /// Ingests one absolute snapshot observed at `at_ns`. Multiple
    /// snapshots landing in the same window accumulate their deltas;
    /// out-of-order samples (older window than the newest) are
    /// ignored rather than smeared into the wrong window.
    pub fn ingest(&mut self, at_ns: u64, snap: &Snapshot) {
        let index = at_ns / self.width_ns;
        if let Some(newest) = self.windows.back() {
            if index < newest.index {
                return;
            }
        }
        if self.windows.back().map(|w| w.index) != Some(index) {
            self.windows.push_back(Window {
                index,
                ..Window::default()
            });
            while self.windows.len() > self.capacity {
                self.windows.pop_front();
            }
        }
        let window = self.windows.back_mut().expect("window just ensured");
        for (name, value) in &snap.metrics {
            match (value, self.last.get(name)) {
                (MetricValue::Counter(now), prev) => {
                    let then = match prev {
                        Some(MetricValue::Counter(v)) => *v,
                        _ => 0,
                    };
                    let delta = if *now < then {
                        // Reset: the process restarted and the counter
                        // began again from zero — the whole new value
                        // is this window's increment.
                        window.resets += 1;
                        self.resets_total += 1;
                        *now
                    } else {
                        *now - then
                    };
                    *window.counters.entry(name.clone()).or_insert(0) += delta;
                }
                (MetricValue::Gauge(v), _) => {
                    window.gauges.insert(name.clone(), *v);
                }
                (MetricValue::Histogram(now), prev) => {
                    let delta = match prev {
                        Some(MetricValue::Histogram(then)) => {
                            if now.count() < then.count() {
                                window.resets += 1;
                                self.resets_total += 1;
                            }
                            now.delta_since(then)
                        }
                        _ => (**now).clone(),
                    };
                    if delta.count() > 0 {
                        window
                            .histograms
                            .entry(name.clone())
                            .or_default()
                            .merge(&delta);
                    }
                }
            }
            self.last.insert(name.clone(), value.clone());
        }
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// The most recent window, if any sample has been ingested.
    pub fn latest(&self) -> Option<&Window> {
        self.windows.back()
    }

    /// The retained window with exactly this index, if present.
    pub fn window_at(&self, index: u64) -> Option<&Window> {
        self.windows.iter().rev().find(|w| w.index == index)
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Counter rate (increments per tick) averaged over the most
    /// recent `lookback` retained windows. With `width_ns` in real
    /// nanoseconds this is events/ns; multiply by 1e9 for events/s.
    pub fn rate(&self, name: &str, lookback: usize) -> f64 {
        let lookback = lookback.max(1).min(self.windows.len());
        if lookback == 0 {
            return 0.0;
        }
        let total: u64 = self
            .windows
            .iter()
            .rev()
            .take(lookback)
            .map(|w| w.counter(name))
            .sum();
        total as f64 / (lookback as u64 * self.width_ns) as f64
    }

    /// The `q`-quantile of `name`'s samples over the most recent
    /// `lookback` windows, merging their delta histograms. `None`
    /// when no window holds samples for the family.
    pub fn quantile_ns(&self, name: &str, lookback: usize, q: f64) -> Option<f64> {
        let lookback = lookback.max(1);
        let mut merged = Histogram::new();
        for w in self.windows.iter().rev().take(lookback) {
            if let Some(h) = w.histogram(name) {
                merged.merge(h);
            }
        }
        if merged.count() == 0 {
            None
        } else {
            Some(merged.quantile_ns(q))
        }
    }

    /// The most recent gauge value for `name` across retained windows.
    pub fn gauge_last(&self, name: &str) -> Option<i64> {
        self.windows.iter().rev().find_map(|w| w.gauge(name))
    }

    /// A unicode sparkline of `name`'s per-window counter deltas over
    /// the most recent `width` windows, oldest left. Scales to the
    /// visible maximum; an all-zero history renders as flat baseline.
    pub fn sparkline(&self, name: &str, width: usize) -> String {
        const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let take = width.max(1).min(self.windows.len());
        let deltas: Vec<u64> = self
            .windows
            .iter()
            .skip(self.windows.len() - take)
            .map(|w| w.counter(name))
            .collect();
        let max = deltas.iter().copied().max().unwrap_or(0);
        deltas
            .iter()
            .map(|&d| {
                if max == 0 {
                    RAMP[0]
                } else {
                    RAMP[((d as u128 * (RAMP.len() as u128 - 1)).div_ceil(max as u128)) as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap(leases: u64, inflight: i64, lat: &[u64]) -> Snapshot {
        let r = Registry::new();
        r.counter("uuidp_leases_total").add(leases);
        r.gauge("uuidp_inflight").set(inflight);
        let h = r.histogram("uuidp_lease_latency_ns");
        for &ns in lat {
            h.record_ns(ns);
        }
        r.snapshot()
    }

    #[test]
    fn deltas_accumulate_within_a_window_and_split_across_windows() {
        let mut ts = TimeSeries::new(100, 8);
        ts.ingest(0, &snap(10, 3, &[50]));
        ts.ingest(40, &snap(25, 5, &[50, 60]));
        ts.ingest(150, &snap(40, 2, &[50, 60, 70]));
        assert_eq!(ts.len(), 2);
        let w0 = ts.window_at(0).unwrap();
        assert_eq!(w0.counter("uuidp_leases_total"), 25, "10 + (25-10)");
        assert_eq!(w0.gauge("uuidp_inflight"), Some(5), "last value wins");
        assert_eq!(w0.histogram("uuidp_lease_latency_ns").unwrap().count(), 2);
        let w1 = ts.window_at(1).unwrap();
        assert_eq!(w1.counter("uuidp_leases_total"), 15);
        assert_eq!(w1.histogram("uuidp_lease_latency_ns").unwrap().count(), 1);
        assert_eq!(ts.resets_total(), 0);
    }

    #[test]
    fn counter_reset_dips_but_never_goes_negative() {
        let mut ts = TimeSeries::new(10, 8);
        ts.ingest(0, &snap(100, 0, &[1, 2, 3]));
        // Restart: counters come back smaller than the previous sample.
        ts.ingest(10, &snap(7, 0, &[9]));
        let w1 = ts.window_at(1).unwrap();
        assert_eq!(w1.counter("uuidp_leases_total"), 7, "fresh-from-zero");
        assert_eq!(w1.histogram("uuidp_lease_latency_ns").unwrap().count(), 1);
        assert_eq!(ts.resets_total(), 2, "counter + histogram resets");
        assert!(ts.rate("uuidp_leases_total", 4) >= 0.0);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let mut ts = TimeSeries::new(1, 4);
        for i in 0..10u64 {
            ts.ingest(i, &snap(i * 10, 0, &[]));
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.windows().next().unwrap().index, 6);
        assert_eq!(ts.latest().unwrap().index, 9);
    }

    #[test]
    fn merge_is_commutative() {
        let mut ts = TimeSeries::new(10, 8);
        ts.ingest(0, &snap(5, 1, &[100]));
        ts.ingest(5, &snap(11, 2, &[100, 200]));
        let a = ts.latest().unwrap().clone();
        let mut ts2 = TimeSeries::new(10, 8);
        ts2.ingest(0, &snap(30, 4, &[400]));
        let b = ts2.latest().unwrap().clone();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("uuidp_leases_total"), 41);
        assert_eq!(ab.gauge("uuidp_inflight"), Some(6), "cluster gauges sum");
    }

    #[test]
    fn sparkline_scales_to_visible_max() {
        let mut ts = TimeSeries::new(1, 8);
        let mut total = 0u64;
        for (i, d) in [0u64, 1, 4, 8].iter().enumerate() {
            total += d;
            ts.ingest(i as u64, &snap(total, 0, &[]));
        }
        let s = ts.sparkline("uuidp_leases_total", 8);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }

    #[test]
    fn parse_prometheus_round_trips_through_the_series() {
        let r = Registry::new();
        r.counter("uuidp_leases_total").add(42);
        r.gauge("uuidp_audit_duplicate_ids").set(-1);
        let h = r.histogram("uuidp_lease_latency_ns");
        h.record_ns(100);
        h.record_ns(100_000);
        let text = r.snapshot().render_prometheus();
        let parsed = Snapshot::parse_prometheus(&text);
        assert_eq!(parsed.scalar("uuidp_leases_total"), Some(42.0));
        assert_eq!(parsed.scalar("uuidp_audit_duplicate_ids"), Some(-1.0));
        let MetricValue::Histogram(ph) = &parsed.metrics["uuidp_lease_latency_ns"] else {
            panic!("histogram lost in round trip");
        };
        assert_eq!(ph.count(), 2);
        let mut ts = TimeSeries::new(10, 4);
        ts.ingest(0, &parsed);
        assert_eq!(ts.latest().unwrap().counter("uuidp_leases_total"), 42);
    }
}
