//! # uuidp-obs — the observability core
//!
//! A zero-dependency (std-only) telemetry subsystem shared by every
//! layer of the uuidp stack: client retries, netchaos injections,
//! server demux, worker persistence, audit recording, fleet routing.
//! Three pieces, one discipline:
//!
//! * **[`Registry`]** — named metric handles (monotonic [`Counter`]s,
//!   [`Gauge`]s, streaming [`AtomicHistogram`]s). Handles are
//!   `Arc`-shared atomics: registration takes a lock once, the hot
//!   path never does. Everything is constant-memory and merges with
//!   **interleaving-invariant totals** — the same commutative-add
//!   discipline as `LeaseAudit`, so same-seed twin runs produce
//!   bit-identical counter values no matter how threads interleave.
//! * **[`TraceRecorder`]** — per-thread ring buffers of
//!   [`TraceEvent`]s keyed by the v2 wire correlation id. Sampled
//!   spans assemble into a printable causal timeline
//!   (client send → proxy → demux → persist → emit → audit → reply).
//! * **[`flight::dump_flight`]** — the crash flight recorder: on a
//!   twin-validation failure, audit duplicate, or node crash, the
//!   last-N events plus a registry snapshot land in the node's state
//!   dir as `flight-<reason>-<n>.log` for postmortems.
//!
//! PR 9 grows the snapshot layer into a monitoring system:
//!
//! * **[`TimeSeries`]** — a constant-memory ring of fixed-width
//!   [`Window`]s fed from registry snapshots: per-window counter
//!   deltas (with counter-reset detection, so restarts dip rather
//!   than go negative), gauge last-values, and delta histograms, all
//!   merging order-invariantly into cluster series.
//! * **[`BurnRateAlerts`]** — deterministic multi-window burn-rate
//!   evaluation ([`AlertRule`] fast/slow lookback pairs) whose
//!   [`AlertTransition`]s export as a metric family and stamp into
//!   the trace ring ([`Stage::Alert`]).
//! * **[`TailSampler`]** — bounded worst-K lease sampling whose
//!   retained corr ids get full timelines fetched over the wire.
//!
//! Export surfaces: [`Snapshot::render_prometheus`] (text exposition,
//! served by the service's v1 `metrics` command and v2 metrics frame)
//! and [`Snapshot::render_json`] (consumed by `repro bench-json`).
//! [`parse_exposition`] reads the text form back for monotonicity
//! checks in smoke tests; [`Snapshot::parse_prometheus`] reconstructs
//! a *typed* snapshot (histogram buckets included) for time-series
//! ingestion by `uuidp top` and the fleet aggregator.
//!
//! Determinism note: nothing in this crate reads a clock. Histogram
//! *values* are timing and therefore vary run-to-run, but every
//! counter/gauge and every bucket-merge is a pure fold of what callers
//! fed in — trace timestamps are caller-supplied (`at_ns`), so tests
//! can pin exact timelines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alert;
pub mod families;
pub mod flight;
pub mod registry;
pub mod tail;
pub mod timeseries;
pub mod trace;

pub use alert::{AlertRule, AlertState, AlertTransition, BurnRateAlerts};
pub use flight::dump_flight;
pub use registry::{
    parse_exposition, AtomicHistogram, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot,
};
pub use tail::{SlowLease, TailSampler};
pub use timeseries::{TimeSeries, Window};
pub use trace::{Stage, TraceEvent, TraceRecorder};
