//! Corr-id trace spans: a per-thread ring-buffer recorder for lease
//! lifecycle events, keyed by the v2 wire correlation id.
//!
//! Every layer stamps the stages it owns — client send, netchaos proxy
//! connection, server demux, worker persist/emit, audit record, reply
//! sent, client receive — and [`TraceRecorder::timeline`] reassembles
//! one correlation id's events into a printable causal timeline.
//! Recording is a shard lock (per-thread, so uncontended in steady
//! state) and a ring write; details are `&'static str` so the hot path
//! never allocates. Timestamps are **caller-supplied** (`at_ns`,
//! typically `uuidp_core::clock::monotonic_ns()`): the recorder itself
//! never reads a clock, which keeps this crate dependency-free and
//! lets tests pin exact timelines.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A lease lifecycle stage, in causal order along the happy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Client encoded and wrote the request frame.
    ClientSend,
    /// A netchaos proxy accepted the carrying connection.
    ProxyConn,
    /// Server demux thread decoded the frame and routed it.
    ServerDemux,
    /// Worker persisted the write-ahead record (pre-reply durability).
    WorkerPersist,
    /// Worker emitted the lease arcs.
    WorkerEmit,
    /// Audit tap recorded the emission.
    AuditRecord,
    /// Server wrote the reply frame.
    ReplySent,
    /// Client matched the reply to its pending request.
    ClientRecv,
    /// A burn-rate alert rule changed state (corr 0, run-level) —
    /// stamped so flight-recorder dumps carry alert history.
    Alert,
}

impl Stage {
    /// Stable wire/log name for the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientSend => "client-send",
            Stage::ProxyConn => "proxy-conn",
            Stage::ServerDemux => "server-demux",
            Stage::WorkerPersist => "worker-persist",
            Stage::WorkerEmit => "worker-emit",
            Stage::AuditRecord => "audit-record",
            Stage::ReplySent => "reply-sent",
            Stage::ClientRecv => "client-recv",
            Stage::Alert => "alert",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (monotone across all shards).
    pub seq: u64,
    /// v2 correlation id (0 for connection-level events).
    pub corr: u64,
    /// Tenant the event concerns (0 when not applicable).
    pub tenant: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Free-form static detail (`"lease"`, `"halt"`, …).
    pub detail: &'static str,
    /// Caller-supplied monotonic timestamp in nanoseconds.
    pub at_ns: u64,
}

/// Fixed-capacity event ring (one per shard).
#[derive(Debug, Default)]
struct Ring {
    events: Vec<TraceEvent>,
    head: usize,
}

impl Ring {
    fn push(&mut self, capacity: usize, ev: TraceEvent) {
        if self.events.len() < capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % capacity;
        }
    }
}

/// The per-thread ring-buffer recorder.
///
/// Shards are selected by hashing the recording thread's id, so
/// steady-state recording never contends. A `sample_mask` thins
/// recording by correlation id: corr ids with any masked bit set are
/// skipped (mask 0 records everything), keeping span assembly cheap on
/// hot runs while every sampled corr id gets its *complete* span —
/// sampling whole spans, not random events.
#[derive(Debug)]
pub struct TraceRecorder {
    shards: Vec<Mutex<Ring>>,
    per_shard: usize,
    seq: AtomicU64,
    sample_mask: u64,
}

impl TraceRecorder {
    /// A recorder holding up to ~`capacity` events across 8 shards,
    /// recording every correlation id.
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder::with_sampling(capacity, 0)
    }

    /// [`TraceRecorder::new`] with span sampling: corr ids where
    /// `corr & sample_mask != 0` are not recorded. Connection-level
    /// events (corr 0) always record.
    pub fn with_sampling(capacity: usize, sample_mask: u64) -> TraceRecorder {
        let shards = 8.min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards).max(1);
        TraceRecorder {
            shards: (0..shards).map(|_| Mutex::new(Ring::default())).collect(),
            per_shard,
            seq: AtomicU64::new(0),
            sample_mask,
        }
    }

    /// A disabled recorder: zero capacity, every record is a no-op.
    /// For measuring compiled-in-but-idle overhead.
    pub fn off() -> TraceRecorder {
        TraceRecorder {
            shards: Vec::new(),
            per_shard: 0,
            seq: AtomicU64::new(0),
            sample_mask: 0,
        }
    }

    /// Whether `corr` passes the sampling mask.
    pub fn sampled(&self, corr: u64) -> bool {
        !self.shards.is_empty() && corr & self.sample_mask == 0
    }

    /// Records one event (no-op when disabled or `corr` unsampled).
    pub fn record(&self, corr: u64, tenant: u64, stage: Stage, detail: &'static str, at_ns: u64) {
        if !self.sampled(corr) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // The recording thread's shard draw is a pure function of its
        // thread id — hash it once per thread, not once per event.
        thread_local! {
            static SHARD_DRAW: u64 = {
                let mut hasher = DefaultHasher::new();
                std::thread::current().id().hash(&mut hasher);
                hasher.finish()
            };
        }
        let shard = (SHARD_DRAW.with(|draw| *draw) % self.shards.len() as u64) as usize;
        let ev = TraceEvent {
            seq,
            corr,
            tenant,
            stage,
            detail,
            at_ns,
        };
        self.shards[shard]
            .lock()
            .expect("trace shard lock")
            .push(self.per_shard, ev);
    }

    /// Every retained event, in global `seq` order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("trace shard lock").events.clone())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// The last `n` retained events, in `seq` order.
    pub fn last_events(&self, n: usize) -> Vec<TraceEvent> {
        let mut all = self.events();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Assembles the retained span for one correlation id: its events
    /// in record order, rendered as a causal timeline. Empty string if
    /// nothing was retained for `corr`.
    pub fn timeline(&self, corr: u64) -> String {
        let events: Vec<TraceEvent> = self
            .events()
            .into_iter()
            .filter(|e| e.corr == corr)
            .collect();
        if events.is_empty() {
            return String::new();
        }
        let t0 = events.iter().map(|e| e.at_ns).min().unwrap_or(0);
        let mut out = format!("span corr={corr}\n");
        for e in &events {
            let _ = writeln!(
                out,
                "  +{:>9}ns {:<14} tenant={} {}",
                e.at_ns.saturating_sub(t0),
                e.stage.name(),
                e.tenant,
                e.detail,
            );
        }
        out
    }

    /// The correlation id of the most recent retained event with
    /// `corr != 0` — the natural focus for a crash-time flight dump.
    pub fn last_corr(&self) -> Option<u64> {
        self.events()
            .into_iter()
            .rev()
            .find(|e| e.corr != 0)
            .map(|e| e.corr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_global_order_and_assemble_timelines() {
        let t = TraceRecorder::new(64);
        t.record(1, 7, Stage::ClientSend, "lease", 100);
        t.record(2, 8, Stage::ClientSend, "lease", 110);
        t.record(1, 7, Stage::ServerDemux, "lease", 200);
        t.record(1, 7, Stage::WorkerPersist, "wa", 300);
        t.record(1, 7, Stage::ReplySent, "lease", 400);
        let evs = t.events();
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        let line = t.timeline(1);
        assert!(line.contains("span corr=1"), "{line}");
        assert!(line.contains("client-send"), "{line}");
        assert!(line.contains("worker-persist"), "{line}");
        assert!(line.contains("0ns client-send"), "{line}");
        assert!(line.contains("200ns worker-persist"), "{line}");
        assert!(!line.contains("tenant=8"), "{line}");
        assert_eq!(t.last_corr(), Some(1));
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        // One thread lands on one shard, which retains capacity/8
        // events — the tail of what was recorded.
        let t = TraceRecorder::new(64);
        for i in 0..1000u64 {
            t.record(i + 1, 0, Stage::ClientSend, "x", i);
        }
        let evs = t.events();
        assert!(evs.len() <= 64, "ring overflowed: {}", evs.len());
        assert!(!evs.is_empty());
        assert!(evs.iter().all(|e| e.seq >= 1000 - 64), "old events leaked");
        assert_eq!(t.last_events(3).len(), 3);
    }

    #[test]
    fn sampling_thins_by_corr_and_off_is_a_noop() {
        let t = TraceRecorder::with_sampling(64, 0b11);
        assert!(t.sampled(4) && t.sampled(0) && !t.sampled(5));
        t.record(4, 0, Stage::ClientSend, "kept", 1);
        t.record(5, 0, Stage::ClientSend, "thinned", 2);
        assert_eq!(t.events().len(), 1);
        let off = TraceRecorder::off();
        off.record(4, 0, Stage::ClientSend, "dropped", 1);
        assert!(off.events().is_empty());
        assert!(!off.sampled(0));
        assert_eq!(off.timeline(4), "");
    }
}
