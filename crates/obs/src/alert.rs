//! Multi-window burn-rate alerting over windowed bad/total counts.
//!
//! A burn rate is the observed bad fraction divided by the SLO's error
//! budget (`1 − objective`): burning at exactly 1.0× consumes the
//! budget precisely at the objective's pace. Each [`AlertRule`] pairs
//! a **fast** lookback (catches sharp regressions quickly) with a
//! **slow** lookback (suppresses single-window blips): the rule fires
//! only when *both* lookbacks burn above their thresholds, and
//! resolves as soon as either drops below — the classic multi-window,
//! multi-burn-rate pager recipe.
//!
//! The engine is deterministic by construction: it never reads a
//! clock, consumes one `(bad, total)` pair per window in caller order,
//! and does integer-fed f64 arithmetic only — same seed, same window
//! feed, bit-identical transition sequence. Callers export transitions
//! as metric families and stamp them into the trace ring (see
//! [`Stage::Alert`](crate::trace::Stage)) so flight-recorder dumps
//! carry alert history.

use std::collections::VecDeque;
use std::fmt;

/// One multi-window burn-rate rule over a windowed SLO feed.
#[derive(Debug, Clone, Copy)]
pub struct AlertRule {
    /// Rule name, rendered in transitions and stamped into traces.
    pub name: &'static str,
    /// SLO objective, e.g. `0.999` for a 99.9% availability target;
    /// the error budget is `1 − objective`.
    pub objective: f64,
    /// Fast lookback length in windows.
    pub fast_windows: usize,
    /// Slow lookback length in windows.
    pub slow_windows: usize,
    /// Fire when the fast lookback burns at least this many budgets.
    pub fast_burn: f64,
    /// …and the slow lookback burns at least this many budgets.
    pub slow_burn: f64,
    /// Static trace detail stamped on an `ok → firing` transition.
    pub firing_detail: &'static str,
    /// Static trace detail stamped on a `firing → ok` transition.
    pub resolved_detail: &'static str,
}

impl AlertRule {
    /// Availability pager over the service SLO math
    /// (`service::metrics` renders the same 99.9% objective): a sharp
    /// 2-window spike burning ≥ 10 budgets plus an 8-window burn ≥ 2
    /// budgets pages; one clean fast lookback resolves it.
    pub fn availability() -> AlertRule {
        AlertRule {
            name: "availability-burn",
            objective: 0.999,
            fast_windows: 2,
            slow_windows: 8,
            fast_burn: 10.0,
            slow_burn: 2.0,
            firing_detail: "alert availability-burn firing",
            resolved_detail: "alert availability-burn resolved",
        }
    }

    /// Scrape-health pager: fleet metric scrapes that fail under
    /// chaos degrade a node's series; losing more than 1% of scrapes
    /// sustained across the slow lookback pages.
    pub fn scrape_health() -> AlertRule {
        AlertRule {
            name: "scrape-burn",
            objective: 0.99,
            fast_windows: 1,
            slow_windows: 4,
            fast_burn: 10.0,
            slow_burn: 2.0,
            firing_detail: "alert scrape-burn firing",
            resolved_detail: "alert scrape-burn resolved",
        }
    }
}

/// Alert state: boring or paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget.
    Ok,
    /// Both lookbacks burning above threshold.
    Firing,
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertState::Ok => "ok",
            AlertState::Firing => "firing",
        })
    }
}

/// One state change of one rule, with the burn rates that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Name of the rule that transitioned.
    pub rule: &'static str,
    /// Window index (0-based feed order) at which the change landed.
    pub window: u64,
    /// New state.
    pub to: AlertState,
    /// Fast-lookback burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-lookback burn rate at the transition.
    pub slow_burn: f64,
    /// Static trace detail for this transition (from the rule).
    pub detail: &'static str,
}

impl AlertTransition {
    /// Fixed-format render, greppable in CI:
    /// `alert: availability-burn firing at window 3 (fast 20.00x, slow 5.00x)`.
    pub fn render(&self) -> String {
        format!(
            "alert: {} {} at window {} (fast {:.2}x, slow {:.2}x)",
            self.rule, self.to, self.window, self.fast_burn, self.slow_burn
        )
    }
}

/// Evaluates a set of [`AlertRule`]s over one windowed bad/total feed.
#[derive(Debug)]
pub struct BurnRateAlerts {
    rules: Vec<AlertRule>,
    states: Vec<AlertState>,
    /// Ring of per-window `(bad, total)`, bounded by the longest
    /// lookback any rule needs.
    ring: VecDeque<(u64, u64)>,
    depth: usize,
    next_window: u64,
    transitions: Vec<AlertTransition>,
}

impl BurnRateAlerts {
    /// An engine over `rules`, all fed from the same bad/total stream.
    pub fn new(rules: Vec<AlertRule>) -> BurnRateAlerts {
        let depth = rules
            .iter()
            .map(|r| r.fast_windows.max(r.slow_windows))
            .max()
            .unwrap_or(1)
            .max(1);
        let states = vec![AlertState::Ok; rules.len()];
        BurnRateAlerts {
            rules,
            states,
            ring: VecDeque::new(),
            depth,
            next_window: 0,
            transitions: Vec::new(),
        }
    }

    fn burn(&self, lookback: usize, objective: f64) -> f64 {
        let lookback = lookback.max(1);
        let (mut bad, mut total) = (0u64, 0u64);
        for &(b, t) in self.ring.iter().rev().take(lookback) {
            bad += b;
            total += t;
        }
        if total == 0 {
            return 0.0;
        }
        let budget = 1.0 - objective;
        (bad as f64 / total as f64) / budget
    }

    /// Feeds one window's `(bad, total)` and returns the transitions
    /// it caused, in rule order. Deterministic in the feed sequence.
    pub fn observe(&mut self, bad: u64, total: u64) -> Vec<AlertTransition> {
        self.ring.push_back((bad, total));
        while self.ring.len() > self.depth {
            self.ring.pop_front();
        }
        let window = self.next_window;
        self.next_window += 1;
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let fast = self.burn(rule.fast_windows, rule.objective);
            let slow = self.burn(rule.slow_windows, rule.objective);
            let firing = fast >= rule.fast_burn && slow >= rule.slow_burn;
            let to = if firing {
                AlertState::Firing
            } else {
                AlertState::Ok
            };
            if to != self.states[i] {
                self.states[i] = to;
                out.push(AlertTransition {
                    rule: rule.name,
                    window,
                    to,
                    fast_burn: fast,
                    slow_burn: slow,
                    detail: match to {
                        AlertState::Firing => rule.firing_detail,
                        AlertState::Ok => rule.resolved_detail,
                    },
                });
            }
        }
        self.transitions.extend(out.iter().cloned());
        out
    }

    /// Number of rules currently firing.
    pub fn firing(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == AlertState::Firing)
            .count()
    }

    /// Names of currently firing rules, in rule order.
    pub fn firing_rules(&self) -> Vec<&'static str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| **s == AlertState::Firing)
            .map(|(r, _)| r.name)
            .collect()
    }

    /// Every transition since construction, in feed order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BurnRateAlerts {
        BurnRateAlerts::new(vec![AlertRule::availability()])
    }

    #[test]
    fn quiet_feed_never_transitions() {
        let mut e = engine();
        for _ in 0..32 {
            assert!(e.observe(0, 1000).is_empty());
        }
        assert_eq!(e.firing(), 0);
        assert!(e.transitions().is_empty());
    }

    #[test]
    fn sustained_burn_fires_then_clean_windows_resolve() {
        let mut e = engine();
        // 5% bad against a 0.1% budget: 50× burn on both lookbacks.
        let mut fired_at = None;
        for w in 0..4u64 {
            for t in e.observe(50, 1000) {
                assert_eq!(t.to, AlertState::Firing);
                fired_at = Some(w);
            }
        }
        assert_eq!(fired_at, Some(0), "first bad window already 50x");
        assert_eq!(e.firing(), 1);
        assert_eq!(e.firing_rules(), vec!["availability-burn"]);
        // Clean windows: fast lookback (2 windows) clears first.
        let mut resolved = false;
        for _ in 0..8 {
            for t in e.observe(0, 1000) {
                assert_eq!(t.to, AlertState::Ok);
                resolved = true;
            }
        }
        assert!(resolved);
        assert_eq!(e.firing(), 0);
        assert_eq!(e.transitions().len(), 2, "one firing, one resolved");
    }

    #[test]
    fn single_blip_below_fast_threshold_stays_quiet() {
        let mut e = engine();
        for _ in 0..4 {
            e.observe(0, 1000);
        }
        // 0.5% bad = 5× burn: above slow threshold (2×) but below the
        // fast threshold (10×) — the blip must not page.
        assert!(e.observe(5, 1000).is_empty());
        for _ in 0..4 {
            assert!(e.observe(0, 1000).is_empty());
        }
        assert_eq!(e.firing(), 0);
    }

    #[test]
    fn same_feed_is_bit_identical() {
        let feed: Vec<(u64, u64)> = (0..64)
            .map(|i| if i % 7 == 3 { (40, 997) } else { (0, 997) })
            .collect();
        let run = |feed: &[(u64, u64)]| {
            let mut e =
                BurnRateAlerts::new(vec![AlertRule::availability(), AlertRule::scrape_health()]);
            for &(b, t) in feed {
                e.observe(b, t);
            }
            e.transitions()
                .iter()
                .map(AlertTransition::render)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&feed), run(&feed));
        assert!(!run(&feed).is_empty(), "feed chosen to transition");
    }

    #[test]
    fn empty_total_windows_burn_nothing() {
        let mut e = engine();
        for _ in 0..8 {
            assert!(e.observe(0, 0).is_empty());
        }
        assert_eq!(e.firing(), 0);
    }
}
