//! The metric registry: named counters, gauges, and streaming
//! histograms with lock-free hot paths and interleaving-invariant
//! merges.
//!
//! Registration (`Registry::counter` & friends) takes the registry
//! lock once and returns an `Arc` handle; after that every increment
//! is a single relaxed atomic op. All aggregation is commutative
//! addition, so totals are bit-identical regardless of how threads or
//! shards interleave — the same discipline that makes `LeaseAudit`
//! twin-comparable, extended to telemetry.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonic counter. Cloning the `Arc` handle shares the cell.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a point-in-time level, not a rate.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Power-of-two-bucketed nanosecond histogram — the plain-value form.
///
/// `buckets[i]` counts samples with `floor(log2(ns)) == i` (bucket 0
/// also holds `ns == 0`). Recording is a `leading_zeros` and an
/// increment; quantiles are read back with sub-bucket linear
/// interpolation. Constant memory, additively mergeable: merging
/// per-thread histograms in any order yields bit-identical buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// Bucket index for a sample: `floor(log2(ns))`, with 0 for `ns == 0`.
#[inline]
pub(crate) fn bucket_of(ns: u64) -> usize {
    (63u32.saturating_sub(ns.leading_zeros())) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one sampled [`Duration`].
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds `other` into `self` (shutdown-time aggregation). Addition
    /// is commutative and associative, so any merge order over any
    /// partition of the samples produces identical buckets.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean cost in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The raw bucket counts (`buckets[i]` holds samples in
    /// `[2^i, 2^(i+1))`, with bucket 0 also holding zero).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Reassembles a histogram from exposition parts (per-bucket
    /// counts, total count, and summed nanoseconds). The wire
    /// exposition does not carry `max_ns`, so the reassembled maximum
    /// is the upper bound of the highest occupied bucket — an honest
    /// over-estimate that keeps dashboard quantiles meaningful.
    pub fn from_parts(buckets: [u64; 64], count: u64, sum_ns: u128) -> Histogram {
        let max_ns = buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| {
                if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                }
            })
            .unwrap_or(0);
        Histogram {
            buckets,
            count,
            sum_ns,
            max_ns,
        }
    }

    /// The per-window difference `self − earlier`, for time-series
    /// ingestion of cumulative histogram snapshots: bucket counts,
    /// `count`, and `sum_ns` subtract (saturating), `max_ns` keeps the
    /// later reading (a cumulative snapshot cannot say *when* its max
    /// landed, so the window inherits the series max — an upper bound).
    ///
    /// A snapshot whose `count` went **backwards** is a counter reset
    /// (the process restarted and began a fresh histogram): the whole
    /// later reading is returned as the delta — fresh-from-zero, so an
    /// ingested rate can dip but never go negative.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        if self.count < earlier.count {
            return self.clone();
        }
        let mut delta = Histogram::new();
        for (d, (now, then)) in delta
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *d = now.saturating_sub(*then);
        }
        delta.count = self.count - earlier.count;
        delta.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        delta.max_ns = self.max_ns;
        delta
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds, linearly
    /// interpolated within the containing power-of-two bucket. Returns
    /// 0 when empty; a single-sample histogram reports that sample's
    /// bucket for every quantile (never NaN).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 {
                    self.max_ns as f64
                } else {
                    (1u128 << (i + 1)) as f64
                };
                let into = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * into;
            }
            seen += c;
        }
        self.max_ns as f64
    }
}

/// The shared-atomic form of [`Histogram`]: recording from any number
/// of threads without locks. `snapshot()` projects it onto the plain
/// form for quantile reads and rendering.
///
/// `sum_ns` saturates at `u64::MAX` total nanoseconds (~584 years of
/// accumulated latency) rather than wrapping.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: [0u64; 64].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add: a CAS loop would serialize the hot path for a
        // case that takes centuries to reach; detect-and-pin is enough.
        if self.sum_ns.fetch_add(ns, Ordering::Relaxed) > u64::MAX - ns {
            self.sum_ns.store(u64::MAX, Ordering::Relaxed);
        }
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one sampled [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Projects onto the plain-value form. A snapshot taken while
    /// writers are active is per-field consistent (each field a valid
    /// point in time), which is all a scrape needs.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum_ns = self.sum_ns.load(Ordering::Relaxed) as u128;
        h.max_ns = self.max_ns.load(Ordering::Relaxed);
        h
    }
}

/// One registered metric: the handle the registry hands out.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

/// A metric value as it appears in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Full histogram state (boxed: a histogram is ~0.5 KiB of
    /// buckets, far larger than the scalar variants).
    Histogram(Box<Histogram>),
}

/// The metric registry: name → handle, get-or-register semantics.
///
/// Names follow Prometheus conventions (`snake_case`, `_total` suffix
/// on counters, `_ns` unit suffix where applicable). Asking for an
/// existing name with the same kind returns the *same* handle — two
/// subsystems can share `uuidp_leases_total` without coordination.
/// Asking with a different kind panics: that is a naming bug, not a
/// runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{name}` already registered as {other:?}, wanted counter"),
        }
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{name}` already registered as {other:?}, wanted gauge"),
        }
    }

    /// Get-or-register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(AtomicHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric `{name}` already registered as {other:?}, wanted histogram"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("registry lock");
        let metrics = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// A point-in-time copy of a [`Registry`], ready to render.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Name → value, sorted by name (BTreeMap order) for stable output.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Looks up a scalar value: counter totals and gauge levels by
    /// name, histogram `_count` reads via the base name.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name)? {
            MetricValue::Counter(v) => Some(*v as f64),
            MetricValue::Gauge(v) => Some(*v as f64),
            MetricValue::Histogram(h) => Some(h.count() as f64),
        }
    }

    /// Prometheus-style text exposition. Counters/gauges render as
    /// `name value`; a histogram renders `_count`, `_sum` (ns), a
    /// cumulative `_bucket{le="…"}` series over the power-of-two bucket
    /// upper bounds that hold samples, and `_bucket{le="+Inf"}`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = (i as u32 + 1).min(64);
                        let _ = writeln!(out, "{name}_bucket{{le=\"2^{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum_ns());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Parses a [`Snapshot::render_prometheus`] exposition back into a
    /// typed snapshot, reconstructing histogram buckets from the
    /// cumulative `_bucket{le="2^N"}` series. This is the ingestion
    /// path for `uuidp top` and the fleet time-series aggregator, which
    /// see remote registries only through the metrics wire frame.
    /// Unparseable lines are skipped; a histogram missing its `_count`
    /// sample is dropped rather than guessed at.
    pub fn parse_prometheus(text: &str) -> Snapshot {
        #[derive(Default)]
        struct HistParts {
            buckets: Vec<(usize, u64)>, // (bucket index, cumulative count)
            sum_ns: Option<u128>,
            count: Option<u64>,
        }
        let mut kinds: BTreeMap<String, &str> = BTreeMap::new();
        let mut scalars: BTreeMap<String, i128> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistParts> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.rsplit_once(' ') {
                    let kind = match kind {
                        "counter" => "counter",
                        "gauge" => "gauge",
                        "histogram" => "histogram",
                        _ => continue,
                    };
                    kinds.insert(name.to_string(), kind);
                    if kind == "histogram" {
                        hists.entry(name.to_string()).or_default();
                    }
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            if let Some((base, labels)) = series.split_once('{') {
                // `name_bucket{le="2^N"} cumulative` — +Inf is implied
                // by the _count sample, so only exponent buckets load.
                let (Some(name), Some(exp)) = (
                    base.strip_suffix("_bucket"),
                    labels
                        .strip_prefix("le=\"2^")
                        .and_then(|l| l.strip_suffix("\"}")),
                ) else {
                    continue;
                };
                let (Ok(exp), Ok(cumulative)) = (exp.parse::<usize>(), value.parse::<u64>()) else {
                    continue;
                };
                if (1..=64).contains(&exp) {
                    hists
                        .entry(name.to_string())
                        .or_default()
                        .buckets
                        .push((exp - 1, cumulative));
                }
                continue;
            }
            if let Some(name) = series.strip_suffix("_sum") {
                if hists.contains_key(name) {
                    if let Ok(v) = value.parse::<u128>() {
                        hists.get_mut(name).unwrap().sum_ns = Some(v);
                    }
                    continue;
                }
            }
            if let Some(name) = series.strip_suffix("_count") {
                if hists.contains_key(name) {
                    if let Ok(v) = value.parse::<u64>() {
                        hists.get_mut(name).unwrap().count = Some(v);
                    }
                    continue;
                }
            }
            if let Ok(v) = value.parse::<i128>() {
                scalars.insert(series.to_string(), v);
            }
        }
        let mut metrics = BTreeMap::new();
        for (name, parts) in hists {
            let Some(count) = parts.count else { continue };
            let mut buckets = [0u64; 64];
            let mut ordered = parts.buckets;
            ordered.sort_unstable();
            let mut prev = 0u64;
            for (idx, cumulative) in ordered {
                buckets[idx] = cumulative.saturating_sub(prev);
                prev = cumulative;
            }
            let h = Histogram::from_parts(buckets, count, parts.sum_ns.unwrap_or(0));
            metrics.insert(name, MetricValue::Histogram(Box::new(h)));
        }
        for (name, v) in scalars {
            let value = match kinds.get(&name).copied() {
                Some("gauge") => MetricValue::Gauge(v as i64),
                // Unannotated scalars default to counters: wire peers
                // always send TYPE lines, so this only covers tests.
                _ => MetricValue::Counter(v.max(0) as u64),
            };
            metrics.entry(name).or_insert(value);
        }
        Snapshot { metrics }
    }

    /// JSON object rendering for `repro bench-json` consumers:
    /// counters/gauges as numbers, histograms as
    /// `{count, sum_ns, max_ns, p50_ns, p99_ns, p999_ns}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"{name}\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"{name}\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"{name}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\
                         \"p50_ns\":{:.1},\"p99_ns\":{:.1},\"p999_ns\":{:.1}}}",
                        h.count(),
                        h.sum_ns(),
                        h.max_ns(),
                        h.quantile_ns(0.50),
                        h.quantile_ns(0.99),
                        h.quantile_ns(0.999),
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

/// Parses a [`Snapshot::render_prometheus`] exposition back into
/// name → value samples (histogram series appear under their suffixed
/// sample names, e.g. `foo_count`). Unparseable lines are skipped —
/// this is a smoke-test convenience, not a full Prometheus parser.
pub fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        // Collapse a `{le="…"}` label set into the bare series name so
        // lookups stay simple; later buckets overwrite earlier ones,
        // leaving the +Inf (total) sample.
        let name = match name.split_once('{') {
            Some((base, _)) => format!("{base}_le"),
            None => name.to_string(),
        };
        out.insert(name, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles_by_name() {
        let r = Registry::new();
        let a = r.counter("uuidp_leases_total");
        let b = r.counter("uuidp_leases_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "same name must alias the same cell");
        let g = r.gauge("uuidp_inflight");
        g.set(7);
        g.add(-3);
        assert_eq!(r.gauge("uuidp_inflight").get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_naming_bug() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let ah = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for ns in [0u64, 1, 100, 4096, 1_000_000, u64::MAX] {
            ah.record_ns(ns);
            plain.record_ns(ns);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.max_ns(), plain.max_ns());
        // sum saturates in the atomic form once u64::MAX lands.
        assert_eq!(snap.sum_ns(), u64::MAX as u128);
    }

    #[test]
    fn concurrent_recording_is_interleaving_invariant() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let h = r.histogram("uuidp_lease_latency_ns");
        let c = r.counter("uuidp_ops_total");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(t * 1000 + i);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4000);
        // Same samples recorded serially must give identical buckets.
        let mut serial = Histogram::new();
        for t in 0..4u64 {
            for i in 0..1000u64 {
                serial.record_ns(t * 1000 + i);
            }
        }
        assert_eq!(snap.buckets(), serial.buckets());
        assert_eq!(snap.sum_ns(), serial.sum_ns());
    }

    #[test]
    fn exposition_round_trips_scalars() {
        let r = Registry::new();
        r.counter("uuidp_leases_total").add(42);
        r.gauge("uuidp_nodes_up").set(3);
        let h = r.histogram("uuidp_lease_latency_ns");
        h.record_ns(100);
        h.record_ns(100_000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE uuidp_leases_total counter"), "{text}");
        assert!(text.contains("uuidp_leases_total 42"), "{text}");
        let parsed = parse_exposition(&text);
        assert_eq!(parsed["uuidp_leases_total"], 42.0);
        assert_eq!(parsed["uuidp_nodes_up"], 3.0);
        assert_eq!(parsed["uuidp_lease_latency_ns_count"], 2.0);
        assert_eq!(parsed["uuidp_lease_latency_ns_sum"], 100_100.0);
        assert_eq!(parsed["uuidp_lease_latency_ns_bucket_le"], 2.0);
    }

    #[test]
    fn json_rendering_is_an_object_with_quantiles() {
        let r = Registry::new();
        r.counter("a_total").inc();
        let h = r.histogram("b_ns");
        h.record_ns(1000);
        let json = r.snapshot().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"a_total\":1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99_ns\""), "{json}");
    }

    #[test]
    fn empty_and_single_sample_histograms_stay_finite() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0.0);
        assert_eq!(h.mean_ns(), 0.0);
        let mut h = Histogram::new();
        h.record_ns(777);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = h.quantile_ns(q);
            assert!(v.is_finite() && v > 0.0, "q={q} -> {v}");
        }
        assert!((h.mean_ns() - 777.0).abs() < 1e-9);
    }
}
