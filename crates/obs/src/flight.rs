//! The crash flight recorder: postmortem dumps of the last-N trace
//! events plus a full registry snapshot.
//!
//! On any twin-validation failure, audit duplicate, or node crash, the
//! owning layer calls [`dump_flight`] with the node's state dir. The
//! dump is a plain-text file named `flight-<reason>-<n>.log` (n picked
//! by probing for the first unused slot, so repeated crashes in one
//! dir never clobber each other):
//!
//! ```text
//! uuidp flight recorder
//! reason: audit-duplicate
//! == registry snapshot ==
//! <Prometheus text exposition>
//! == last events ==
//! seq=12 corr=3 tenant=7 stage=worker-persist detail=wa at_ns=91844
//! ...
//! == span timeline ==
//! span corr=3
//!   +        0ns client-send    tenant=7 lease
//!   ...
//! ```
//!
//! The span timeline focuses on `focus_corr` when the caller knows
//! which lease triggered the failure, else on the most recent non-zero
//! correlation id retained — "what was the service doing when it
//! died", assembled causally.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::registry::Snapshot;
use crate::trace::TraceRecorder;

/// How many trailing events a dump includes.
const LAST_EVENTS: usize = 256;

/// Writes a flight-recorder dump into `dir`, returning the file path.
/// `reason` becomes part of the filename (keep it to a short slug:
/// `audit-duplicate`, `halt`, `twin-mismatch`). Creates `dir` if
/// needed.
pub fn dump_flight(
    dir: &Path,
    reason: &str,
    snapshot: &Snapshot,
    trace: &TraceRecorder,
    focus_corr: Option<u64>,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = (0..)
        .map(|n| dir.join(format!("flight-{reason}-{n}.log")))
        .find(|p| !p.exists())
        .expect("unbounded probe always finds a free slot");
    let mut out = fs::File::create(&path)?;
    writeln!(out, "uuidp flight recorder")?;
    writeln!(out, "reason: {reason}")?;
    writeln!(out, "== registry snapshot ==")?;
    out.write_all(snapshot.render_prometheus().as_bytes())?;
    writeln!(out, "== last events ==")?;
    for e in trace.last_events(LAST_EVENTS) {
        writeln!(
            out,
            "seq={} corr={} tenant={} stage={} detail={} at_ns={}",
            e.seq,
            e.corr,
            e.tenant,
            e.stage.name(),
            e.detail,
            e.at_ns,
        )?;
    }
    writeln!(out, "== span timeline ==")?;
    let focus = focus_corr.or_else(|| trace.last_corr());
    match focus {
        Some(corr) => {
            let line = trace.timeline(corr);
            if line.is_empty() {
                writeln!(out, "(no events retained for corr={corr})")?;
            } else {
                out.write_all(line.as_bytes())?;
            }
        }
        None => writeln!(out, "(no correlated events retained)")?,
    }
    out.sync_all()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::trace::Stage;

    #[test]
    fn dumps_are_numbered_and_carry_snapshot_events_and_timeline() {
        let dir = std::env::temp_dir().join(format!(
            "uuidp-obs-flight-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let r = Registry::new();
        r.counter("uuidp_leases_total").add(3);
        let t = TraceRecorder::new(32);
        t.record(9, 4, Stage::ClientSend, "lease", 10);
        t.record(9, 4, Stage::WorkerPersist, "wa", 20);
        t.record(9, 4, Stage::ReplySent, "lease", 30);

        let p0 = dump_flight(&dir, "halt", &r.snapshot(), &t, Some(9)).expect("dump 0");
        let p1 = dump_flight(&dir, "halt", &r.snapshot(), &t, None).expect("dump 1");
        assert_ne!(p0, p1, "second dump must not clobber the first");
        assert!(p0.file_name().unwrap().to_str().unwrap() == "flight-halt-0.log");
        assert!(p1.file_name().unwrap().to_str().unwrap() == "flight-halt-1.log");

        let text = fs::read_to_string(&p0).expect("read dump");
        assert!(text.contains("reason: halt"), "{text}");
        assert!(text.contains("uuidp_leases_total 3"), "{text}");
        assert!(text.contains("stage=worker-persist"), "{text}");
        assert!(text.contains("span corr=9"), "{text}");
        // Focusless dump falls back to the last non-zero corr (also 9).
        let text1 = fs::read_to_string(&p1).expect("read dump 1");
        assert!(text1.contains("span corr=9"), "{text1}");
        let _ = fs::remove_dir_all(&dir);
    }
}
