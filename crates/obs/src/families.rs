//! The canonical metric-family contract: names every live node must
//! expose.
//!
//! This list used to live in `uuidp-service`'s stress driver, with the
//! fleet runner importing it from there — an observability contract
//! owned by a test harness. It belongs next to the [`Registry`] that
//! implements it: the obs crate defines the names, service nodes
//! register them at bind time, and every consumer (stress scrape
//! sidecar, fleet per-node assertions, `uuidp-lint`'s `metrics-family`
//! rule) checks against this one constant.
//!
//! Histogram families appear here by their exposition-derived names
//! (`*_count`): registering the base histogram covers them.
//!
//! [`Registry`]: crate::Registry

/// Metric families every scrape of a live service must expose — the
/// registry registers them all at service start, so their absence means
/// the export path is broken, not that the counter is still zero.
pub const REQUIRED: &[&str] = &[
    "uuidp_leases_total",
    "uuidp_ids_issued_total",
    "uuidp_lease_errors_total",
    "uuidp_audit_records_total",
    "uuidp_lease_latency_ns_count",
    "uuidp_net_wakeups_total",
    "uuidp_net_out_queue_bytes",
    "uuidp_net_severed_total",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_names_are_well_formed() {
        for name in REQUIRED {
            assert!(name.starts_with("uuidp_"), "{name} lacks the uuidp_ prefix");
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{name} is not snake_case"
            );
        }
        let mut sorted: Vec<_> = REQUIRED.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), REQUIRED.len(), "duplicate family in REQUIRED");
    }
}
