//! Tail-latency sampling: keep the worst leases, fetch their stories.
//!
//! A [`TailSampler`] is a tiny bounded top-K structure fed from the
//! request hot path: workers `offer` each lease's measured latency and
//! correlation id, and only offers above the threshold that also beat
//! the current K-th worst are kept — O(K) memory, no allocation for
//! the common (fast) case beyond the retained set.
//!
//! After the run, the driver asks each sampled lease's node for its
//! span events over the wire (`TimelineReq`, protocol v2) and attaches
//! the assembled client→demux→persist→reply timeline to the sample, so
//! stress and fleet reports can print end-to-end stories for the worst
//! offenders instead of a bare p999 number.

/// One sampled slow lease, with its fetched timeline once assembled.
#[derive(Debug, Clone)]
pub struct SlowLease {
    /// Correlation id of the lease frame (0 for protocol v1, which
    /// carries no corr ids — such samples keep latency but no story).
    pub corr: u64,
    /// Tenant that requested the lease.
    pub tenant: u64,
    /// Node index the lease landed on (0 for single-node runs).
    pub node: usize,
    /// Client-observed end-to-end latency.
    pub latency_ns: u64,
    /// Rendered span timeline, filled in post-run by a `TimelineReq`
    /// fetch; empty until then (or when the ring evicted the span).
    pub timeline: String,
}

/// Bounded worst-K latency sampler.
#[derive(Debug, Clone)]
pub struct TailSampler {
    cap: usize,
    threshold_ns: u64,
    /// Kept sorted worst-first, at most `cap` entries.
    worst: Vec<SlowLease>,
}

impl TailSampler {
    /// Keeps at most `cap` leases at or above `threshold_ns`. A zero
    /// threshold keeps the `cap` worst regardless of magnitude.
    pub fn new(cap: usize, threshold_ns: u64) -> TailSampler {
        TailSampler {
            cap: cap.max(1),
            threshold_ns,
            worst: Vec::new(),
        }
    }

    /// Offers one lease observation; returns true when retained.
    pub fn offer(&mut self, corr: u64, tenant: u64, node: usize, latency_ns: u64) -> bool {
        if latency_ns < self.threshold_ns {
            return false;
        }
        if self.worst.len() == self.cap
            && latency_ns <= self.worst.last().map(|s| s.latency_ns).unwrap_or(0)
        {
            return false;
        }
        let at = self.worst.partition_point(|s| s.latency_ns >= latency_ns);
        self.worst.insert(
            at,
            SlowLease {
                corr,
                tenant,
                node,
                latency_ns,
                timeline: String::new(),
            },
        );
        self.worst.truncate(self.cap);
        true
    }

    /// Folds another sampler's retained set into this one.
    pub fn merge(&mut self, other: &TailSampler) {
        for s in &other.worst {
            if self.worst.len() == self.cap
                && s.latency_ns <= self.worst.last().map(|w| w.latency_ns).unwrap_or(0)
            {
                continue;
            }
            let at = self.worst.partition_point(|w| w.latency_ns >= s.latency_ns);
            self.worst.insert(at, s.clone());
            self.worst.truncate(self.cap);
        }
    }

    /// Retained samples, worst first.
    pub fn worst(&self) -> &[SlowLease] {
        &self.worst
    }

    /// Mutable access for the post-run timeline-fetch pass.
    pub fn worst_mut(&mut self) -> &mut [SlowLease] {
        &mut self.worst
    }

    /// True when nothing cleared the threshold.
    pub fn is_empty(&self) -> bool {
        self.worst.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_worst_sorted() {
        let mut t = TailSampler::new(3, 0);
        for (corr, ns) in [(1, 50), (2, 500), (3, 10), (4, 900), (5, 60)] {
            t.offer(corr, 7, 0, ns);
        }
        let kept: Vec<(u64, u64)> = t.worst().iter().map(|s| (s.corr, s.latency_ns)).collect();
        assert_eq!(kept, vec![(4, 900), (2, 500), (5, 60)]);
    }

    #[test]
    fn threshold_filters_fast_leases() {
        let mut t = TailSampler::new(8, 100);
        assert!(!t.offer(1, 0, 0, 99));
        assert!(t.offer(2, 0, 0, 100));
        assert_eq!(t.worst().len(), 1);
    }

    #[test]
    fn merge_keeps_global_worst() {
        let mut a = TailSampler::new(2, 0);
        a.offer(1, 0, 0, 100);
        a.offer(2, 0, 0, 300);
        let mut b = TailSampler::new(2, 0);
        b.offer(3, 0, 1, 200);
        b.offer(4, 0, 1, 400);
        a.merge(&b);
        let corrs: Vec<u64> = a.worst().iter().map(|s| s.corr).collect();
        assert_eq!(corrs, vec![4, 2]);
    }
}
