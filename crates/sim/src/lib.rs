//! # uuidp-sim — playing and measuring the UUIDP game
//!
//! The engine that turns the paper's game-theoretic definitions into
//! measurements:
//!
//! * [`game`] — the interactive game loop (Section 2's adaptive protocol)
//!   and a symbolic fast path for oblivious profiles that runs on interval
//!   footprints instead of materialized IDs;
//! * [`collision`] — cross-instance duplicate detection, streaming and
//!   symbolic;
//! * [`audit`] — stripe-sharded symbolic lease auditing for the service
//!   layer (order-invariant duplicate accounting over arcs);
//! * [`montecarlo`] — reproducible, thread-parallel estimation of
//!   `p_A(D)` and `p_A(Z)` with Wilson confidence intervals;
//! * [`stats`] — the estimators and the log–log shape-checking tools;
//! * [`experiment`] — table assembly shared by the repro harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod collision;
pub mod experiment;
pub mod game;
pub mod montecarlo;
pub mod stats;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::audit::{AuditCounts, LeaseAudit};
    pub use crate::collision::{footprints_collide, OnlineDetector};
    pub use crate::experiment::{fmt_count, fmt_prob, fmt_ratio, Table};
    pub use crate::game::{run_adaptive, run_oblivious_symbolic, GameLimits, GameOutcome};
    pub use crate::montecarlo::{
        estimate_adaptive, estimate_oblivious, RunDiagnostics, TrialConfig,
    };
    pub use crate::stats::{geometric_mean, loglog_slope, Estimate, LogLogFit};
}
