//! Statistics for Monte-Carlo estimates: binomial proportions with Wilson
//! intervals, and log–log slope fits for the shape checks.
//!
//! Experiments never try to match the paper's hidden Θ-constants; they
//! check *shape*: that measured collision probabilities scale with the
//! predicted exponent (slope in log–log space), that ratios to predictions
//! stay bounded across a sweep, and that orderings ("who wins") hold.

/// A binomial proportion estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of successes (collisions).
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
    /// Point estimate `successes / trials`.
    pub p_hat: f64,
    /// Lower end of the 95% Wilson score interval.
    pub lo: f64,
    /// Upper end of the 95% Wilson score interval.
    pub hi: f64,
}

impl Estimate {
    /// Builds an estimate from raw counts (95% Wilson interval).
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        assert!(trials > 0, "estimate needs at least one trial");
        assert!(successes <= trials);
        let (lo, hi) = wilson_interval(successes, trials, 1.959_963_984_540_054);
        Estimate {
            successes,
            trials,
            p_hat: successes as f64 / trials as f64,
            lo,
            hi,
        }
    }

    /// Whether `p` is inside the confidence interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Half-width of the interval (a resolution indicator).
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3e} [{:.3e}, {:.3e}] ({}/{})",
            self.p_hat, self.lo, self.hi, self.successes, self.trials
        )
    }
}

/// The Wilson score interval for a binomial proportion.
///
/// Robust near 0 and 1 — exactly where collision probabilities live —
/// unlike the normal approximation.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Ordinary least squares fit of `log(y) = slope · log(x) + intercept`.
///
/// Used to verify scaling exponents: e.g. Cluster's worst-case collision
/// probability must scale linearly in `d` (slope ≈ 1), Random's
/// quadratically (slope ≈ 2).
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is not
/// strictly positive.
pub fn loglog_slope(points: &[(f64, f64)]) -> LogLogFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log–log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = logs.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = logs.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = logs.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    assert!(sxx > 0.0, "x values must not all coincide");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R²
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LogLogFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Result of a log–log regression.
#[derive(Debug, Clone, Copy)]
pub struct LogLogFit {
    /// The fitted exponent.
    pub slope: f64,
    /// Intercept in log space (log of the constant factor).
    pub intercept: f64,
    /// Coefficient of determination in log space.
    pub r_squared: f64,
}

/// Geometric mean of a slice of positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Maximum of a slice of f64 (NaN-free input assumed).
pub fn max_f64(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_basics() {
        let e = Estimate::from_counts(50, 100);
        assert!((e.p_hat - 0.5).abs() < 1e-12);
        assert!(e.contains(0.5));
        assert!(!e.contains(0.8));
        assert!(e.lo < 0.5 && e.hi > 0.5);
    }

    #[test]
    fn wilson_interval_is_sane_at_extremes() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.06, "hi = {hi}");
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.94);
        assert!(hi > 0.9999, "hi = {hi}");
    }

    #[test]
    fn wilson_covers_truth_reasonably() {
        // For p = 0.3, n = 1000 the interval should cover 0.3 when the
        // observed count is near 300.
        let e = Estimate::from_counts(307, 1000);
        assert!(e.contains(0.3));
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x * x)
            })
            .collect();
        let fit = loglog_slope(&pts);
        assert!((fit.slope - 2.0).abs() < 1e-9, "slope = {}", fit.slope);
        assert!((fit.intercept - 3.0f64.ln()).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn loglog_slope_with_noise() {
        let pts: Vec<(f64, f64)> = (1..=16)
            .map(|i| {
                let x = (1 << i) as f64;
                let noise = if i % 2 == 0 { 1.15 } else { 0.87 };
                (x, 0.5 * x * noise)
            })
            .collect();
        let fit = loglog_slope(&pts);
        assert!((fit.slope - 1.0).abs() < 0.05, "slope = {}", fit.slope);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_f64_basics() {
        assert_eq!(max_f64(&[1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        Estimate::from_counts(0, 0);
    }
}
