//! Streaming, sharded, *symbolic* collision audit for lease traffic.
//!
//! The service layer issues IDs as bulk leases — arcs, not scalars — so
//! auditing them with the per-ID [`OnlineDetector`] would undo the whole
//! point of batching (a 2²⁰-ID lease would cost 2²⁰ map insertions).
//! [`LeaseAudit`] keeps the audit symbolic: every recorded lease arc is
//! intersected against the material already issued to *other* owners and
//! folded into per-owner interval sets, so a lease costs `O(arcs · log
//! segments)` regardless of how many IDs it covers — the same interval
//! discipline that makes the oblivious game simulable at `d ≈ 2⁴⁰`.
//!
//! The universe is partitioned into equal contiguous **stripes**
//! ([`AuditStripe`]), each with its own segment sets; arcs are split at
//! stripe boundaries on the way in. Striping bounds per-record work,
//! keeps each stripe's sets small, and gives a service audit pipeline a
//! natural unit to distribute over threads.
//!
//! The headline counter, [`duplicate_ids`](LeaseAudit::duplicate_ids),
//! is **order-invariant**: for every ID `x` issued by `k ≥ 1` distinct
//! owners it counts exactly `k − 1`, no matter how the recording of
//! leases from concurrent shards interleaves. (Proof sketch: an owner's
//! own arcs never overlap, so the first time each owner covers `x` it
//! pays 1 if and only if some *other* owner already covered `x`; over all
//! owners of `x` exactly the non-first ones pay.) This is what lets a
//! multi-shard service assert bit-identical audit totals for every
//! worker-thread count. [`flagged_records`](LeaseAudit::flagged_records)
//! is an arrival-order diagnostic and is *not* interleaving-invariant.
//!
//! [`OnlineDetector`]: crate::collision::OnlineDetector

use std::collections::HashMap;

use uuidp_core::id::{Id, IdSpace};
use uuidp_core::interval::{Arc, IntervalSet};

/// One stripe of the sharded audit: the sub-universe `[lo, hi)` with its
/// own per-owner interval sets and counters.
#[derive(Debug)]
pub struct AuditStripe {
    space: IdSpace,
    lo: u128,
    hi: u128,
    /// Union of every segment recorded in this stripe, all owners.
    global: IntervalSet,
    /// Per-owner segment sets (owner keys are caller-defined, e.g.
    /// `tenant` or `tenant + epoch` for restart-aware auditing).
    owners: HashMap<u64, IntervalSet>,
    duplicate_ids: u128,
    flagged_records: u64,
    recorded_ids: u128,
    recorded_arcs: u64,
}

impl AuditStripe {
    fn new(space: IdSpace, lo: u128, hi: u128) -> Self {
        AuditStripe {
            space,
            lo,
            hi,
            global: IntervalSet::new(space),
            owners: HashMap::new(),
            duplicate_ids: 0,
            flagged_records: 0,
            recorded_ids: 0,
            recorded_arcs: 0,
        }
    }

    /// The stripe's sub-universe `[lo, hi)`.
    pub fn range(&self) -> (u128, u128) {
        (self.lo, self.hi)
    }

    /// Records the non-wrapping segment `[lo, hi)` (already clipped to
    /// this stripe) for `owner`; returns how many of its IDs were
    /// already held by a different owner.
    pub fn record_segment(&mut self, owner: u64, lo: u128, hi: u128) -> u128 {
        debug_assert!(
            lo >= self.lo && hi <= self.hi && lo < hi,
            "unclipped segment"
        );
        let arc = Arc::new(self.space, Id(lo), hi - lo);
        let own = self
            .owners
            .entry(owner)
            .or_insert_with(|| IntervalSet::new(self.space));
        let cross = self.global.intersection_measure(arc) - own.intersection_measure(arc);
        own.insert(arc);
        self.global.insert(arc);
        self.duplicate_ids += cross;
        self.flagged_records += (cross > 0) as u64;
        self.recorded_ids += hi - lo;
        self.recorded_arcs += 1;
        cross
    }

    /// IDs in this stripe issued to more than one owner (counted with
    /// multiplicity − 1).
    pub fn duplicate_ids(&self) -> u128 {
        self.duplicate_ids
    }
}

/// Totals across an audit's stripes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditCounts {
    /// IDs issued to more than one owner (`Σ_x (owners(x) − 1)`;
    /// interleaving-invariant).
    pub duplicate_ids: u128,
    /// Recorded segments that overlapped foreign material on arrival
    /// (arrival-order diagnostic).
    pub flagged_records: u64,
    /// Total IDs recorded.
    pub recorded_ids: u128,
    /// Total segments recorded (after stripe splitting).
    pub recorded_arcs: u64,
}

impl AuditCounts {
    /// Whether any cross-owner duplicate has been observed.
    pub fn collided(&self) -> bool {
        self.duplicate_ids > 0
    }

    /// Element-wise sum, for aggregating per-thread audit partitions.
    pub fn merge(&self, other: &AuditCounts) -> AuditCounts {
        AuditCounts {
            duplicate_ids: self.duplicate_ids + other.duplicate_ids,
            flagged_records: self.flagged_records + other.flagged_records,
            recorded_ids: self.recorded_ids + other.recorded_ids,
            recorded_arcs: self.recorded_arcs + other.recorded_arcs,
        }
    }
}

/// The pure *geometry* of a striped audit: how a universe is cut into
/// equal contiguous stripes, with no per-stripe state attached.
///
/// A [`LeaseAudit`] owns one internally, but the plan is also useful on
/// its own: a service front-end that distributes audit stripes across
/// several pipeline threads builds the same plan on the producer side
/// and uses [`split`](StripePlan::split) to route lease arcs to the
/// thread owning each stripe — guaranteeing producer-side routing and
/// audit-side recording agree on every boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePlan {
    space: IdSpace,
    /// All stripes have this width except the last, which absorbs the
    /// remainder.
    stripe_len: u128,
    count: usize,
}

impl StripePlan {
    /// The partition of `space` into `stripes ≥ 1` equal stripes (capped
    /// at the universe size and 2¹⁶, like [`LeaseAudit::new`]).
    pub fn new(space: IdSpace, stripes: usize) -> Self {
        let stripes = stripes.clamp(1, 1 << 16);
        let m = space.size();
        let count = (stripes as u128).min(m) as usize;
        let stripe_len = m.div_ceil(count as u128);
        StripePlan {
            space,
            stripe_len,
            count,
        }
    }

    /// The universe being partitioned.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.count
    }

    /// The stripe containing `id`.
    pub fn stripe_of(&self, id: Id) -> usize {
        ((id.value() / self.stripe_len) as usize).min(self.count - 1)
    }

    /// The sub-universe `[lo, hi)` of stripe `i`.
    pub fn stripe_range(&self, i: usize) -> (u128, u128) {
        let lo = i as u128 * self.stripe_len;
        (lo, (lo + self.stripe_len).min(self.space.size()))
    }

    /// Cuts `arc` at the universe boundary (wrapping arcs) and at every
    /// stripe boundary, yielding `(stripe index, lo, hi)` pieces in
    /// ascending-stripe order per wrap half. Every piece is non-empty,
    /// non-wrapping, and entirely inside its stripe.
    pub fn split(&self, arc: Arc, f: &mut impl FnMut(usize, u128, u128)) {
        let m = self.space.size();
        let lo = arc.start.value();
        let end = lo + arc.len;
        if end <= m {
            self.split_range(lo, end, f);
        } else {
            self.split_range(lo, m, f);
            self.split_range(0, end - m, f);
        }
    }

    /// Cuts the non-wrapping range `[lo, hi)` at stripe boundaries.
    fn split_range(&self, mut lo: u128, hi: u128, f: &mut impl FnMut(usize, u128, u128)) {
        while lo < hi {
            let idx = self.stripe_of(Id(lo));
            let stripe_hi = self.stripe_range(idx).1.min(hi);
            f(idx, lo, stripe_hi);
            lo = stripe_hi;
        }
    }
}

/// A stripe-sharded symbolic lease audit over one universe.
#[derive(Debug)]
pub struct LeaseAudit {
    plan: StripePlan,
    stripes: Vec<AuditStripe>,
}

impl LeaseAudit {
    /// An empty audit over `space` with `stripes ≥ 1` equal stripes.
    pub fn new(space: IdSpace, stripes: usize) -> Self {
        let plan = StripePlan::new(space, stripes);
        let stripes = (0..plan.stripe_count())
            .map(|i| {
                let (lo, hi) = plan.stripe_range(i);
                AuditStripe::new(space, lo, hi)
            })
            .collect();
        LeaseAudit { plan, stripes }
    }

    /// The universe being audited.
    pub fn space(&self) -> IdSpace {
        self.plan.space
    }

    /// The stripe geometry (shared with producer-side routing).
    pub fn plan(&self) -> StripePlan {
        self.plan
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe containing `id`.
    pub fn stripe_of(&self, id: Id) -> usize {
        self.plan.stripe_of(id)
    }

    /// Records one lease arc for `owner`; returns how many of its IDs
    /// were already held by a different owner. Wrapping arcs are split at
    /// the universe boundary and all pieces at stripe boundaries — by
    /// [`StripePlan::split`] itself, so direct recording and producer-side
    /// routing share one boundary definition by construction.
    pub fn record(&mut self, owner: u64, arc: Arc) -> u128 {
        let plan = self.plan;
        let mut cross = 0;
        plan.split(arc, &mut |_, lo, hi| {
            cross += self.record_range(owner, lo, hi);
        });
        cross
    }

    /// Records the non-wrapping range `[lo, hi)` for `owner`, splitting
    /// it at stripe boundaries; returns the cross-owner duplicate count.
    /// This is the entry point for pre-routed traffic: a producer that
    /// already cut a lease with [`StripePlan::split`] records each piece
    /// here and the stripe bookkeeping lands exactly where [`record`]
    /// would have put it.
    ///
    /// [`record`]: LeaseAudit::record
    pub fn record_clipped(&mut self, owner: u64, lo: u128, hi: u128) -> u128 {
        debug_assert!(lo < hi && hi <= self.plan.space.size(), "bad range");
        self.record_range(owner, lo, hi)
    }

    /// Records a non-wrapping range `[lo, hi)`, splitting it at stripe
    /// boundaries.
    fn record_range(&mut self, owner: u64, mut lo: u128, hi: u128) -> u128 {
        let mut cross = 0;
        while lo < hi {
            let idx = self.stripe_of(Id(lo));
            let stripe_hi = self.stripes[idx].hi.min(hi);
            cross += self.stripes[idx].record_segment(owner, lo, stripe_hi);
            lo = stripe_hi;
        }
        cross
    }

    /// Aggregated counters across all stripes.
    pub fn counts(&self) -> AuditCounts {
        self.stripes.iter().fold(AuditCounts::default(), |acc, s| {
            acc.merge(&AuditCounts {
                duplicate_ids: s.duplicate_ids,
                flagged_records: s.flagged_records,
                recorded_ids: s.recorded_ids,
                recorded_arcs: s.recorded_arcs,
            })
        })
    }

    /// Whether any cross-owner duplicate has been observed.
    pub fn collided(&self) -> bool {
        self.stripes.iter().any(|s| s.duplicate_ids > 0)
    }

    /// Read access to the stripes (diagnostics, distribution planning).
    pub fn stripes(&self) -> &[AuditStripe] {
        &self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::prelude::*;
    use uuidp_core::rng::{uniform_below, Xoshiro256pp};

    fn arc(space: IdSpace, start: u128, len: u128) -> Arc {
        Arc::new(space, Id(start), len)
    }

    #[test]
    fn disjoint_leases_are_clean() {
        let space = IdSpace::new(1 << 10).unwrap();
        let mut audit = LeaseAudit::new(space, 4);
        assert_eq!(audit.record(0, arc(space, 0, 100)), 0);
        assert_eq!(audit.record(1, arc(space, 100, 100)), 0);
        assert_eq!(audit.record(2, arc(space, 500, 400)), 0);
        let c = audit.counts();
        assert!(!c.collided());
        assert_eq!(c.recorded_ids, 600);
        assert_eq!(c.duplicate_ids, 0);
    }

    #[test]
    fn cross_owner_overlap_is_measured_exactly() {
        let space = IdSpace::new(1 << 10).unwrap();
        let mut audit = LeaseAudit::new(space, 8);
        audit.record(0, arc(space, 0, 200));
        let cross = audit.record(1, arc(space, 150, 100)); // [150,250): 50 shared
        assert_eq!(cross, 50);
        assert!(audit.collided());
        assert_eq!(audit.counts().duplicate_ids, 50);
        // Same-owner re-coverage does not count (owner 1 already holds
        // [150,250); recording an adjacent arc overlapping only itself).
        let cross = audit.record(1, arc(space, 240, 20));
        assert_eq!(cross, 0, "own material never self-collides");
    }

    #[test]
    fn wrapping_arcs_split_and_audit_correctly() {
        let space = IdSpace::new(100).unwrap();
        let mut audit = LeaseAudit::new(space, 3);
        audit.record(7, arc(space, 90, 20)); // {90..99, 0..9}
        let cross = audit.record(8, arc(space, 95, 10)); // {95..99, 0..4}
        assert_eq!(cross, 10);
        assert_eq!(audit.counts().duplicate_ids, 10);
    }

    #[test]
    fn duplicate_ids_is_interleaving_invariant() {
        // Three owners over a common region plus private material, fed in
        // every permutation: duplicate_ids must not move.
        let space = IdSpace::new(1 << 12).unwrap();
        let leases: Vec<(u64, Arc)> = vec![
            (0, arc(space, 0, 64)),
            (1, arc(space, 32, 64)),
            (2, arc(space, 48, 8)),
            (0, arc(space, 200, 50)),
            (1, arc(space, 220, 10)),
            (2, arc(space, 4000, 96)), // wraps nothing, private
        ];
        let mut reference = None;
        // All 720 permutations of 6 elements via Heap's algorithm indices.
        let mut perm: Vec<usize> = (0..leases.len()).collect();
        let mut c = vec![0usize; leases.len()];
        let mut check = |perm: &[usize]| {
            let mut audit = LeaseAudit::new(space, 5);
            for &i in perm {
                let (owner, a) = leases[i];
                audit.record(owner, a);
            }
            let d = audit.counts().duplicate_ids;
            match reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(r, d, "order changed duplicate_ids"),
            }
        };
        check(&perm);
        let mut i = 0;
        while i < leases.len() {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                check(&perm);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        // owners(x) − 1 summed: [32,64) has {0,1} → 32; [48,56) adds owner
        // 2 on top of both → 8 more; [220,230) has {0,1} → 10.
        assert_eq!(reference, Some(32 + 8 + 10));
    }

    #[test]
    fn striping_does_not_change_totals() {
        let space = IdSpace::new(1 << 14).unwrap();
        let mut rng = Xoshiro256pp::new(21);
        let leases: Vec<(u64, Arc)> = (0..200)
            .map(|i| {
                let start = uniform_below(&mut rng, 1 << 14);
                let len = 1 + uniform_below(&mut rng, 1 << 7);
                (i % 9, arc(space, start, len))
            })
            .collect();
        let mut totals = Vec::new();
        for stripes in [1usize, 2, 7, 64] {
            let mut audit = LeaseAudit::new(space, stripes);
            for &(owner, a) in &leases {
                audit.record(owner, a);
            }
            totals.push(audit.counts().duplicate_ids);
        }
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "stripe count changed duplicate_ids: {totals:?}"
        );
    }

    #[test]
    fn stripe_plan_split_covers_exactly_and_respects_boundaries() {
        let space = IdSpace::new(1000).unwrap();
        let plan = StripePlan::new(space, 7);
        assert_eq!(plan.stripe_count(), 7);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..500 {
            let start = uniform_below(&mut rng, 1000);
            let len = 1 + uniform_below(&mut rng, 999);
            let arc = arc(space, start, len);
            let mut covered = 0u128;
            let mut pieces = Vec::new();
            plan.split(arc, &mut |idx, lo, hi| {
                assert!(lo < hi, "empty piece");
                let (slo, shi) = plan.stripe_range(idx);
                assert!(lo >= slo && hi <= shi, "piece escapes its stripe");
                assert_eq!(plan.stripe_of(Id(lo)), idx);
                covered += hi - lo;
                pieces.push((lo, hi));
            });
            assert_eq!(covered, len, "split loses or duplicates IDs");
            // Pieces are disjoint: total coverage as a set equals len.
            pieces.sort_unstable();
            assert!(pieces.windows(2).all(|w| w[0].1 <= w[1].0));
        }
    }

    #[test]
    fn pre_routed_recording_matches_direct_recording() {
        // A producer that splits with StripePlan and records pieces with
        // record_clipped must land bit-identical counters to record().
        let space = IdSpace::new(1 << 12).unwrap();
        let mut rng = Xoshiro256pp::new(8);
        let leases: Vec<(u64, Arc)> = (0..300)
            .map(|i| {
                let start = uniform_below(&mut rng, 1 << 12);
                let len = 1 + uniform_below(&mut rng, 1 << 6);
                (i % 5, arc(space, start, len))
            })
            .collect();
        let mut direct = LeaseAudit::new(space, 9);
        let mut routed = LeaseAudit::new(space, 9);
        let plan = routed.plan();
        for &(owner, a) in &leases {
            direct.record(owner, a);
            plan.split(a, &mut |_, lo, hi| {
                routed.record_clipped(owner, lo, hi);
            });
        }
        assert_eq!(direct.counts(), routed.counts());
    }

    #[test]
    fn same_seed_generators_are_always_caught() {
        // The zero-false-negative guarantee the stress test relies on:
        // two identically seeded Cluster instances lease the same arcs,
        // and every leased ID past the first lease is a duplicate.
        let space = IdSpace::with_bits(40).unwrap();
        let alg = Cluster::new(space);
        let mut a = alg.spawn(99);
        let mut b = alg.spawn(99);
        let mut audit = LeaseAudit::new(space, 16);
        let mut lease = Lease::new(space);
        for (owner, generator) in [&mut a, &mut b].into_iter().enumerate() {
            lease.fill(generator.as_mut(), 4096).unwrap();
            for &arc in lease.arcs() {
                audit.record(owner as u64, arc);
            }
        }
        assert!(audit.collided());
        assert_eq!(audit.counts().duplicate_ids, 4096);
    }
}
