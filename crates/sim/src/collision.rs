//! Collision detection between instance footprints.
//!
//! A collision is the same ID appearing in two *different* instances'
//! emitted sets. Two detectors:
//!
//! * [`footprints_collide`] — symbolic: works on [`Footprint`]s, i.e.
//!   interval sets and point lists. Arc segments go through a sort +
//!   sweep (`O(S log S)` in the total segment count); points are then
//!   resolved against the sorted segment table by binary search and
//!   against each other through a hash map, so the whole pass is
//!   `O(S log S + P log S + P)` instead of the naive `O(P · k)` loop
//!   over all `k` footprints. For arc-structured algorithms `S` is tiny
//!   even when the number of IDs is astronomical, which is what lets
//!   worst-case experiments run at `d ≈ 2⁴⁰`.
//! * [`OnlineDetector`] — incremental: IDs stream in one at a time during
//!   adaptive games; detects the first cross-instance duplicate in O(1)
//!   per ID.
//!
//! Both use [`FastIdHasher`], a deterministic multiply-shift hasher over
//! the `u128` key — the adaptive game loop hits the map once per ID, and
//! SipHash was measurable there. Hot callers reuse a
//! [`CollisionScratch`] across trials to keep the segment table and
//! point map allocations alive.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use uuidp_core::id::Id;
use uuidp_core::traits::Footprint;

/// Deterministic multiply-shift hasher for `u128` ID keys.
///
/// Not DoS-resistant — inputs here are simulation IDs, not attacker
/// data — but far cheaper than SipHash and with full avalanche into the
/// low bits the hash map actually uses.
#[derive(Debug, Default, Clone)]
pub struct FastIdHasher {
    state: u64,
}

impl FastIdHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // Multiply-shift with two rounds of xor-folding: constants from
        // SplitMix64, which have well-studied avalanche behavior.
        let mut x = self.state ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 29;
        self.state = x;
    }
}

impl Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        // The hot path: one call per ID key.
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastIdHasher`]-keyed maps.
pub type FastIdBuildHasher = BuildHasherDefault<FastIdHasher>;

/// A hash map keyed by raw ID values with the fast in-crate hasher.
pub type IdMap<V> = HashMap<u128, V, FastIdBuildHasher>;

/// Reusable working memory for [`footprints_collide_with`].
///
/// One scratch per Monte-Carlo worker keeps the segment table and the
/// point map allocated across millions of trials.
#[derive(Debug, Default)]
pub struct CollisionScratch {
    /// `(lo, hi, owner)` for every arc segment of every footprint.
    segments: Vec<(u128, u128, usize)>,
    /// Point-ID → owner, for point-footprint deduplication.
    points: IdMap<usize>,
}

impl CollisionScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Whether any ID belongs to two different footprints.
///
/// Within-instance duplicates (impossible for the paper's algorithms,
/// possible for e.g. Snowflake after timestamp wrap-around) do **not**
/// count — the paper's collision event is about pairwise disjointness of
/// the per-instance sets.
pub fn footprints_collide(footprints: &[Footprint<'_>]) -> bool {
    footprints_collide_with(&mut CollisionScratch::new(), footprints)
}

/// [`footprints_collide`] with caller-provided scratch memory, for hot
/// loops that run many detections.
pub fn footprints_collide_with(
    scratch: &mut CollisionScratch,
    footprints: &[Footprint<'_>],
) -> bool {
    footprints_collide_each(scratch, |visit| {
        for (owner, fp) in footprints.iter().enumerate() {
            match fp {
                Footprint::Arcs(set) => visit(owner, Footprint::Arcs(set)),
                Footprint::Points(points) => visit(owner, Footprint::Points(points)),
            }
        }
    })
}

/// Iterator-driven collision pass: instead of taking a materialized
/// `&[Footprint]`, takes a visitation closure that yields each
/// `(owner, footprint)` pair to the supplied callback. The driver is
/// invoked once per phase (segments, then points), so footprints are
/// borrowed only transiently — which is what lets the symbolic game loop
/// feed generator footprints (`&mut`-borrowed, non-storable) directly
/// into the detector without collecting a per-trial `Vec<Footprint>`.
///
/// Detection semantics are identical to [`footprints_collide`]. The
/// driver must yield the same owners in both invocations; yielding is
/// cheap enough that re-deriving the footprints (e.g. re-calling
/// [`IdGenerator::footprint`](uuidp_core::traits::IdGenerator::footprint),
/// which is amortized O(1) after the first flush) is in the noise.
pub fn footprints_collide_each(
    scratch: &mut CollisionScratch,
    mut for_each: impl FnMut(&mut dyn FnMut(usize, Footprint<'_>)),
) -> bool {
    // Phase 1: k-way sweep over all arc segments.
    let segments = &mut scratch.segments;
    segments.clear();
    for_each(&mut |owner, fp| {
        if let Footprint::Arcs(set) = fp {
            segments.extend(set.segments().map(|(lo, hi)| (lo, hi, owner)));
        }
    });
    scratch.segments.sort_unstable_by_key(|&(lo, _, _)| lo);
    // Sweep with a running covered region (max_hi, owner). A segment that
    // starts inside the covered region overlaps some earlier segment; since
    // each owner's own segments are disjoint, the overlap is cross-owner
    // unless the whole covered region so far belongs to the same owner.
    let mut run_hi = 0u128;
    let mut run_owner = usize::MAX;
    for &(lo, hi, owner) in &scratch.segments {
        if lo < run_hi {
            if owner != run_owner {
                return true;
            }
            run_hi = run_hi.max(hi);
        } else {
            run_hi = hi;
            run_owner = owner;
        }
    }
    // Phase 2: points against the sorted segment table (binary search) and
    // points against points (hash map). Reaching this phase means the arc
    // segments are pairwise disjoint across owners, so containment needs
    // to examine at most one candidate segment per point.
    let CollisionScratch { segments, points } = scratch;
    points.clear();
    let mut collided = false;
    for_each(&mut |owner, fp| {
        if collided {
            return;
        }
        if let Footprint::Points(ids) = fp {
            for id in ids {
                let v = id.value();
                match points.entry(v) {
                    Entry::Occupied(e) => {
                        if *e.get() != owner {
                            collided = true;
                            return;
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(owner);
                    }
                }
                // The candidate arc segment containing v, if any: the last
                // segment with lo <= v.
                let idx = segments.partition_point(|&(lo, _, _)| lo <= v);
                if idx > 0 {
                    let (_, hi, seg_owner) = segments[idx - 1];
                    if v < hi && seg_owner != owner {
                        collided = true;
                        return;
                    }
                }
            }
        }
    });
    collided
}

/// Streaming cross-instance duplicate detector for adaptive games.
#[derive(Debug, Default)]
pub struct OnlineDetector {
    owners: IdMap<usize>,
    collided: bool,
}

impl OnlineDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the detector, keeping its map allocation for reuse.
    pub fn clear(&mut self) {
        self.owners.clear();
        self.collided = false;
    }

    /// Records that `instance` emitted `id`; returns `true` if this ID was
    /// previously emitted by a *different* instance (now or earlier).
    pub fn record(&mut self, instance: usize, id: Id) -> bool {
        match self.owners.entry(id.value()) {
            Entry::Occupied(e) => {
                if *e.get() != instance {
                    self.collided = true;
                }
            }
            Entry::Vacant(e) => {
                e.insert(instance);
            }
        }
        self.collided
    }

    /// Whether any cross-instance duplicate has been recorded.
    pub fn collided(&self) -> bool {
        self.collided
    }

    /// Number of distinct IDs recorded.
    pub fn distinct_ids(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::IdSpace;
    use uuidp_core::interval::{Arc, IntervalSet};

    fn arcs(space: IdSpace, list: &[(u128, u128)]) -> IntervalSet {
        let mut set = IntervalSet::new(space);
        for &(start, len) in list {
            set.insert(Arc::new(space, Id(start), len));
        }
        set
    }

    #[test]
    fn disjoint_arc_sets_do_not_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10), (50, 5)]);
        let b = arcs(s, &[(20, 10), (60, 5)]);
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn overlapping_arc_sets_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10)]);
        let b = arcs(s, &[(9, 3)]);
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn touching_arcs_do_not_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10)]); // [0,10)
        let b = arcs(s, &[(10, 10)]); // [10,20)
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn overlap_hidden_behind_long_segment_is_found() {
        let s = IdSpace::new(1000).unwrap();
        // Owner 0 has one huge segment; owner 1 sits inside it, but owner
        // 1's segment sorts *after* an intermediate owner-0 segment.
        let a = arcs(s, &[(0, 500)]);
        let b = arcs(s, &[(100, 5)]);
        let c = arcs(s, &[(300, 5)]);
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b),
            Footprint::Arcs(&c),
        ]));
    }

    #[test]
    fn three_way_same_owner_does_not_false_positive() {
        let s = IdSpace::new(1000).unwrap();
        let a = arcs(s, &[(0, 10), (20, 10), (40, 10)]);
        let b = arcs(s, &[(100, 10)]);
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn points_vs_points() {
        let p1 = [Id(1), Id(5), Id(9)];
        let p2 = [Id(2), Id(5)];
        assert!(footprints_collide(&[
            Footprint::Points(&p1),
            Footprint::Points(&p2)
        ]));
        let p3 = [Id(3), Id(4)];
        assert!(!footprints_collide(&[
            Footprint::Points(&p1),
            Footprint::Points(&p3)
        ]));
    }

    #[test]
    fn points_vs_arcs() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(10, 10)]);
        let inside = [Id(15)];
        let outside = [Id(25)];
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Points(&inside)
        ]));
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Points(&outside)
        ]));
    }

    #[test]
    fn points_resolve_against_many_segments() {
        // Exercises the binary-search containment: points on segment
        // boundaries, inside, and in gaps, across many owners' segments.
        let s = IdSpace::new(10_000).unwrap();
        let a = arcs(s, &(0..50).map(|i| (i * 100, 10)).collect::<Vec<_>>());
        let b = arcs(s, &(0..50).map(|i| (i * 100 + 50, 10)).collect::<Vec<_>>());
        let hits = [Id(1234)]; // inside b's [1250..?) no — 12*100+50=1250; 1234 in gap
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b),
            Footprint::Points(&hits),
        ]));
        let inside_a = [Id(4205)]; // a's segment [4200, 4210)
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b),
            Footprint::Points(&inside_a),
        ]));
        let boundary = [Id(4210)]; // just past a's segment: a miss
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b),
            Footprint::Points(&boundary),
        ]));
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10)]);
        let b = arcs(s, &[(5, 3)]);
        let c = arcs(s, &[(50, 3)]);
        let mut scratch = CollisionScratch::new();
        assert!(footprints_collide_with(
            &mut scratch,
            &[Footprint::Arcs(&a), Footprint::Arcs(&b)]
        ));
        // A colliding call must not leak state into the next one.
        assert!(!footprints_collide_with(
            &mut scratch,
            &[Footprint::Arcs(&a), Footprint::Arcs(&c)]
        ));
        let p = [Id(51)];
        assert!(footprints_collide_with(
            &mut scratch,
            &[Footprint::Arcs(&c), Footprint::Points(&p)]
        ));
    }

    #[test]
    fn within_instance_duplicates_do_not_count() {
        let p = [Id(5), Id(5)];
        assert!(!footprints_collide(&[Footprint::Points(&p)]));
        let mut det = OnlineDetector::new();
        assert!(!det.record(0, Id(5)));
        assert!(!det.record(0, Id(5)));
        assert!(det.record(1, Id(5)));
    }

    #[test]
    fn online_detector_is_sticky_and_clearable() {
        let mut det = OnlineDetector::new();
        det.record(0, Id(1));
        det.record(1, Id(1));
        assert!(det.collided());
        // Later non-colliding records don't reset it.
        det.record(2, Id(99));
        assert!(det.collided());
        assert_eq!(det.distinct_ids(), 2);
        det.clear();
        assert!(!det.collided());
        assert_eq!(det.distinct_ids(), 0);
        assert!(!det.record(0, Id(1)));
    }

    #[test]
    fn fast_hasher_spreads_sequential_keys() {
        // Sequential IDs are the common case (runs); make sure low bits
        // differ so the hash map doesn't degenerate.
        use std::collections::HashSet;
        let mut low_bits = HashSet::new();
        for v in 0u128..1024 {
            let mut h = FastIdHasher::default();
            h.write_u128(v);
            low_bits.insert(h.finish() & 0x3FF);
        }
        // Perfect spread would be 1024; anything above ~600 is fine.
        assert!(low_bits.len() > 600, "only {} distinct", low_bits.len());
    }
}
