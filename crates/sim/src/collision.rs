//! Collision detection between instance footprints.
//!
//! A collision is the same ID appearing in two *different* instances'
//! emitted sets. Two detectors:
//!
//! * [`footprints_collide`] — symbolic: works on [`Footprint`]s, i.e.
//!   interval sets and point lists, in `O(S log S)` where `S` is the total
//!   number of segments/points. For arc-structured algorithms `S` is tiny
//!   even when the number of IDs is astronomical, which is what lets
//!   worst-case experiments run at `d ≈ 2⁴⁰`.
//! * [`OnlineDetector`] — incremental: IDs stream in one at a time during
//!   adaptive games; detects the first cross-instance duplicate in O(1)
//!   per ID.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use uuidp_core::id::Id;
use uuidp_core::traits::Footprint;

/// Whether any ID belongs to two different footprints.
///
/// Within-instance duplicates (impossible for the paper's algorithms,
/// possible for e.g. Snowflake after timestamp wrap-around) do **not**
/// count — the paper's collision event is about pairwise disjointness of
/// the per-instance sets.
pub fn footprints_collide(footprints: &[Footprint<'_>]) -> bool {
    // Phase 1: k-way sweep over all arc segments.
    // Each entry: (lo, hi, owner).
    let mut segments: Vec<(u128, u128, usize)> = Vec::new();
    for (owner, fp) in footprints.iter().enumerate() {
        if let Footprint::Arcs(set) = fp {
            segments.extend(set.segments().map(|(lo, hi)| (lo, hi, owner)));
        }
    }
    segments.sort_unstable_by_key(|&(lo, _, _)| lo);
    // Sweep with a running covered region (max_hi, owner). A segment that
    // starts inside the covered region overlaps some earlier segment; since
    // each owner's own segments are disjoint, the overlap is cross-owner
    // unless the whole covered region so far belongs to the same owner.
    let mut run_hi = 0u128;
    let mut run_owner = usize::MAX;
    for &(lo, hi, owner) in &segments {
        if lo < run_hi {
            if owner != run_owner {
                return true;
            }
            run_hi = run_hi.max(hi);
        } else {
            run_hi = hi;
            run_owner = owner;
        }
    }
    // Phase 2: points against arcs and points against points.
    let mut seen_points: HashMap<u128, usize> = HashMap::new();
    for (owner, fp) in footprints.iter().enumerate() {
        if let Footprint::Points(points) = fp {
            for id in *points {
                match seen_points.entry(id.value()) {
                    Entry::Occupied(e) => {
                        if *e.get() != owner {
                            return true;
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(owner);
                    }
                }
                // Against every arc footprint of a different owner.
                for (other, ofp) in footprints.iter().enumerate() {
                    if other == owner {
                        continue;
                    }
                    if let Footprint::Arcs(set) = ofp {
                        if set.contains(*id) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Streaming cross-instance duplicate detector for adaptive games.
#[derive(Debug, Default)]
pub struct OnlineDetector {
    owners: HashMap<u128, usize>,
    collided: bool,
}

impl OnlineDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `instance` emitted `id`; returns `true` if this ID was
    /// previously emitted by a *different* instance (now or earlier).
    pub fn record(&mut self, instance: usize, id: Id) -> bool {
        match self.owners.entry(id.value()) {
            Entry::Occupied(e) => {
                if *e.get() != instance {
                    self.collided = true;
                }
            }
            Entry::Vacant(e) => {
                e.insert(instance);
            }
        }
        self.collided
    }

    /// Whether any cross-instance duplicate has been recorded.
    pub fn collided(&self) -> bool {
        self.collided
    }

    /// Number of distinct IDs recorded.
    pub fn distinct_ids(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::id::IdSpace;
    use uuidp_core::interval::{Arc, IntervalSet};

    fn arcs(space: IdSpace, list: &[(u128, u128)]) -> IntervalSet {
        let mut set = IntervalSet::new(space);
        for &(start, len) in list {
            set.insert(Arc::new(space, Id(start), len));
        }
        set
    }

    #[test]
    fn disjoint_arc_sets_do_not_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10), (50, 5)]);
        let b = arcs(s, &[(20, 10), (60, 5)]);
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn overlapping_arc_sets_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10)]);
        let b = arcs(s, &[(9, 3)]);
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn touching_arcs_do_not_collide() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(0, 10)]); // [0,10)
        let b = arcs(s, &[(10, 10)]); // [10,20)
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn overlap_hidden_behind_long_segment_is_found() {
        let s = IdSpace::new(1000).unwrap();
        // Owner 0 has one huge segment; owner 1 sits inside it, but owner
        // 1's segment sorts *after* an intermediate owner-0 segment.
        let a = arcs(s, &[(0, 500)]);
        let b = arcs(s, &[(100, 5)]);
        let c = arcs(s, &[(300, 5)]);
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b),
            Footprint::Arcs(&c),
        ]));
    }

    #[test]
    fn three_way_same_owner_does_not_false_positive() {
        let s = IdSpace::new(1000).unwrap();
        let a = arcs(s, &[(0, 10), (20, 10), (40, 10)]);
        let b = arcs(s, &[(100, 10)]);
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Arcs(&b)
        ]));
    }

    #[test]
    fn points_vs_points() {
        let p1 = [Id(1), Id(5), Id(9)];
        let p2 = [Id(2), Id(5)];
        assert!(footprints_collide(&[
            Footprint::Points(&p1),
            Footprint::Points(&p2)
        ]));
        let p3 = [Id(3), Id(4)];
        assert!(!footprints_collide(&[
            Footprint::Points(&p1),
            Footprint::Points(&p3)
        ]));
    }

    #[test]
    fn points_vs_arcs() {
        let s = IdSpace::new(100).unwrap();
        let a = arcs(s, &[(10, 10)]);
        let inside = [Id(15)];
        let outside = [Id(25)];
        assert!(footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Points(&inside)
        ]));
        assert!(!footprints_collide(&[
            Footprint::Arcs(&a),
            Footprint::Points(&outside)
        ]));
    }

    #[test]
    fn within_instance_duplicates_do_not_count() {
        let p = [Id(5), Id(5)];
        assert!(!footprints_collide(&[Footprint::Points(&p)]));
        let mut det = OnlineDetector::new();
        assert!(!det.record(0, Id(5)));
        assert!(!det.record(0, Id(5)));
        assert!(det.record(1, Id(5)));
    }

    #[test]
    fn online_detector_is_sticky() {
        let mut det = OnlineDetector::new();
        det.record(0, Id(1));
        det.record(1, Id(1));
        assert!(det.collided());
        // Later non-colliding records don't reset it.
        det.record(2, Id(99));
        assert!(det.collided());
        assert_eq!(det.distinct_ids(), 2);
    }
}
