//! The UUIDP game loop.
//!
//! Two engines:
//!
//! * [`run_adaptive`] — the full interactive game of Section 2: the
//!   adversary observes every produced ID and chooses the next move.
//!   Necessarily materializes IDs; suitable for `d` up to ~10⁶.
//! * [`run_oblivious_symbolic`] — the oblivious special case, executed
//!   symbolically: each instance [`skip`](uuidp_core::traits::IdGenerator::skip)s
//!   its whole demand and only the interval footprints are intersected.
//!   For arc-structured algorithms this handles `d ≈ 2⁴⁰` in microseconds.
//!
//! Both have `_with` variants taking caller-owned scratch
//! ([`AdaptiveScratch`], [`SymbolicScratch`]) so a Monte-Carlo worker can
//! play millions of games without re-boxing generators or re-growing
//! detector maps: instances are recycled through
//! [`IdGenerator::reset`](uuidp_core::traits::IdGenerator::reset), which
//! is observationally identical to a fresh spawn.

use uuidp_adversary::adaptive::{Action, AdaptiveAdversary, GameView};
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::id::Id;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::{Algorithm, IdGenerator};

use crate::collision::{footprints_collide_each, CollisionScratch, OnlineDetector};

/// Safety limits for adaptive games.
#[derive(Debug, Clone, Copy)]
pub struct GameLimits {
    /// Hard cap on total requests; the game stops (without collision) when
    /// reached. Guards against runaway adversaries.
    pub max_requests: u128,
}

impl Default for GameLimits {
    fn default() -> Self {
        GameLimits {
            max_requests: 1 << 24,
        }
    }
}

/// The lean result of one play: just the trial-level booleans the
/// Monte-Carlo engine aggregates. No allocations.
#[derive(Debug, Clone, Copy)]
pub struct TrialOutcome {
    /// Whether a cross-instance collision occurred.
    pub collided: bool,
    /// Whether any instance reported exhaustion when asked for an ID.
    pub exhausted: bool,
    /// Whether the [`GameLimits`] cap stopped the game.
    pub truncated: bool,
}

/// The result of one play of the game, including the realized demands.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// Whether a cross-instance collision occurred.
    pub collided: bool,
    /// The realized demand profile (empty if no instance was activated).
    pub demands: Vec<u128>,
    /// Whether any instance reported exhaustion when asked for an ID.
    pub exhausted: bool,
    /// Whether the [`GameLimits`] cap stopped the game.
    pub truncated: bool,
}

impl GameOutcome {
    /// The realized profile as a [`DemandProfile`], if non-empty.
    pub fn profile(&self) -> Option<DemandProfile> {
        if self.demands.is_empty() || self.demands.contains(&0) {
            None
        } else {
            Some(DemandProfile::new(self.demands.clone()))
        }
    }
}

/// Reusable worker state for adaptive games.
///
/// Holds a pool of generator instances (recycled across games via
/// `reset`), per-instance ID histories, and the online detector. A
/// scratch is tied to the algorithm it first played against — do not
/// share one scratch across different algorithms.
#[derive(Default)]
pub struct AdaptiveScratch {
    pool: Vec<Box<dyn IdGenerator>>,
    histories: Vec<Vec<Id>>,
    detector: OnlineDetector,
    /// Instances activated in the current/last game (prefix of `pool`).
    active: usize,
}

impl AdaptiveScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Realized demands of the last game played with this scratch.
    pub fn demands(&self) -> Vec<u128> {
        self.histories[..self.active]
            .iter()
            .map(|h| h.len() as u128)
            .collect()
    }
}

/// Plays one adaptive game of `adversary` against `algorithm`.
///
/// Instance `i` is seeded from `seeds` under [`SeedDomain::Instance`]`(i)`,
/// so a fixed seed tree replays the exact game.
pub fn run_adaptive(
    algorithm: &dyn Algorithm,
    adversary: &mut dyn AdaptiveAdversary,
    seeds: &SeedTree,
    limits: GameLimits,
) -> GameOutcome {
    let mut scratch = AdaptiveScratch::new();
    let lean = run_adaptive_with(&mut scratch, algorithm, adversary, seeds, limits);
    GameOutcome {
        collided: lean.collided,
        demands: scratch.demands(),
        exhausted: lean.exhausted,
        truncated: lean.truncated,
    }
}

/// [`run_adaptive`] with caller-owned scratch: generators are recycled
/// via `reset` instead of re-spawned, histories and the detector keep
/// their allocations.
pub fn run_adaptive_with(
    scratch: &mut AdaptiveScratch,
    algorithm: &dyn Algorithm,
    adversary: &mut dyn AdaptiveAdversary,
    seeds: &SeedTree,
    limits: GameLimits,
) -> TrialOutcome {
    let space = algorithm.space();
    scratch.detector.clear();
    scratch.active = 0;
    let mut total: u128 = 0;
    let mut exhausted = false;
    let mut truncated = false;

    loop {
        if total >= limits.max_requests {
            truncated = true;
            break;
        }
        let action = {
            let view = GameView {
                space,
                histories: &scratch.histories[..scratch.active],
                collision: scratch.detector.collided(),
                total_requests: total,
            };
            adversary.next_action(&view)
        };
        let target = match action {
            Action::Stop => break,
            Action::Activate => {
                let i = scratch.active;
                let seed = seeds.seed(SeedDomain::Instance(i as u64));
                if i < scratch.pool.len() {
                    scratch.pool[i].reset(seed);
                    scratch.histories[i].clear();
                } else {
                    scratch.pool.push(algorithm.spawn(seed));
                    scratch.histories.push(Vec::new());
                }
                scratch.active += 1;
                i
            }
            Action::Request(i) => {
                if i >= scratch.active {
                    debug_assert!(false, "adversary requested unknown instance {i}");
                    break;
                }
                i
            }
        };
        match scratch.pool[target].next_id() {
            Ok(id) => {
                scratch.detector.record(target, id);
                scratch.histories[target].push(id);
                total += 1;
            }
            Err(_) => {
                // An exhausted instance ends the game: the adversary asked
                // for more than the algorithm can serve.
                exhausted = true;
                break;
            }
        }
    }

    TrialOutcome {
        collided: scratch.detector.collided(),
        exhausted,
        truncated,
    }
}

/// Reusable worker state for symbolic oblivious games: one recycled
/// generator per profile instance plus the collision scratch. Tied to
/// the algorithm it first played against.
#[derive(Default)]
pub struct SymbolicScratch {
    instances: Vec<Box<dyn IdGenerator>>,
    collision: CollisionScratch,
    /// Instances used by the current/last game (prefix of `instances`).
    active: usize,
}

impl SymbolicScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Realized demands of the last game played with this scratch.
    pub fn demands(&self) -> Vec<u128> {
        self.instances[..self.active]
            .iter()
            .map(|g| g.generated())
            .collect()
    }
}

/// Plays the oblivious game on `profile` symbolically: every instance
/// skips its demand in bulk and only footprints are compared.
///
/// Semantically identical to running the materialized game on any request
/// interleaving of `profile` (order cannot matter obliviously) and checking
/// for collisions at the end.
pub fn run_oblivious_symbolic(
    algorithm: &dyn Algorithm,
    profile: &DemandProfile,
    seeds: &SeedTree,
) -> GameOutcome {
    let mut scratch = SymbolicScratch::new();
    let lean = run_oblivious_symbolic_with(&mut scratch, algorithm, profile, seeds);
    GameOutcome {
        collided: lean.collided,
        demands: scratch.demands(),
        exhausted: lean.exhausted,
        truncated: lean.truncated,
    }
}

/// [`run_oblivious_symbolic`] with caller-owned scratch: generators are
/// recycled via `reset`, and collision detection reuses its segment
/// table and point map.
pub fn run_oblivious_symbolic_with(
    scratch: &mut SymbolicScratch,
    algorithm: &dyn Algorithm,
    profile: &DemandProfile,
    seeds: &SeedTree,
) -> TrialOutcome {
    let n = profile.n();
    let mut exhausted = false;
    scratch.active = n;
    for (i, &d) in profile.demands().iter().enumerate() {
        let seed = seeds.seed(SeedDomain::Instance(i as u64));
        if i < scratch.instances.len() {
            scratch.instances[i].reset(seed);
        } else {
            scratch.instances.push(algorithm.spawn(seed));
        }
        if scratch.instances[i].skip(d).is_err() {
            exhausted = true;
        }
    }
    // The collide pass is driven straight off the generators: footprints
    // are borrowed transiently per visit, so no per-trial `Vec<Footprint>`
    // is materialized. Re-visiting calls `footprint()` again, which is a
    // no-op after the first flush.
    let SymbolicScratch {
        instances,
        collision,
        ..
    } = scratch;
    let collided = footprints_collide_each(collision, |visit| {
        for (i, g) in instances[..n].iter_mut().enumerate() {
            visit(i, g.footprint());
        }
    });
    TrialOutcome {
        collided,
        exhausted,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_adversary::adaptive::AdversarySpec;
    use uuidp_adversary::oblivious::{Oblivious, RequestOrder};
    use uuidp_core::algorithms::{Cluster, Random};
    use uuidp_core::id::IdSpace;

    #[test]
    fn oblivious_adaptive_and_symbolic_agree_per_seed() {
        // Same seed tree ⇒ same instance randomness ⇒ identical collision
        // outcome, whichever engine runs the game.
        let space = IdSpace::new(256).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![20, 20, 20]);
        let mut disagreements = 0;
        for master in 0..200u64 {
            let seeds = SeedTree::new(master);
            let spec = Oblivious::new(profile.clone());
            let mut adv = spec.spawn(0);
            let adaptive = run_adaptive(&alg, adv.as_mut(), &seeds, GameLimits::default());
            let symbolic = run_oblivious_symbolic(&alg, &profile, &seeds);
            assert_eq!(adaptive.demands, symbolic.demands);
            if adaptive.collided != symbolic.collided {
                disagreements += 1;
            }
        }
        assert_eq!(disagreements, 0);
    }

    #[test]
    fn scratch_reuse_replays_identically() {
        // Playing through one reused scratch must give the same outcomes
        // as fresh scratches: reset is observationally a fresh spawn.
        let space = IdSpace::new(512).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![16, 48, 32]);
        let mut scratch = SymbolicScratch::new();
        for master in 0..300u64 {
            let seeds = SeedTree::new(master);
            let reused = run_oblivious_symbolic_with(&mut scratch, &alg, &profile, &seeds);
            let fresh = run_oblivious_symbolic(&alg, &profile, &seeds);
            assert_eq!(reused.collided, fresh.collided, "master {master}");
            assert_eq!(reused.exhausted, fresh.exhausted);
        }
    }

    #[test]
    fn adaptive_scratch_reuse_replays_identically() {
        let space = IdSpace::new(256).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![12, 20]);
        let mut scratch = AdaptiveScratch::new();
        for master in 0..200u64 {
            let seeds = SeedTree::new(master);
            let spec = Oblivious::new(profile.clone());
            let mut adv = spec.spawn(0);
            let reused = run_adaptive_with(
                &mut scratch,
                &alg,
                adv.as_mut(),
                &seeds,
                GameLimits::default(),
            );
            let mut adv2 = spec.spawn(0);
            let fresh = run_adaptive(&alg, adv2.as_mut(), &seeds, GameLimits::default());
            assert_eq!(reused.collided, fresh.collided, "master {master}");
            assert_eq!(scratch.demands(), fresh.demands);
        }
    }

    #[test]
    fn request_order_does_not_change_outcome() {
        let space = IdSpace::new(128).unwrap();
        let alg = Random::new(space);
        let profile = DemandProfile::new(vec![8, 8, 8]);
        for master in 0..100u64 {
            let seeds = SeedTree::new(master);
            let mut outcomes = Vec::new();
            for order in [
                RequestOrder::Sequential,
                RequestOrder::RoundRobin,
                RequestOrder::RandomInterleave,
            ] {
                let spec = Oblivious::with_order(profile.clone(), order);
                let mut adv = spec.spawn(7);
                let out = run_adaptive(&alg, adv.as_mut(), &seeds, GameLimits::default());
                outcomes.push(out.collided);
            }
            assert!(
                outcomes.windows(2).all(|w| w[0] == w[1]),
                "order changed the outcome at master seed {master}"
            );
        }
    }

    #[test]
    fn exhaustion_is_reported() {
        let space = IdSpace::new(8).unwrap();
        let alg = Random::new(space);
        let profile = DemandProfile::new(vec![10]);
        let seeds = SeedTree::new(1);
        let out = run_oblivious_symbolic(&alg, &profile, &seeds);
        assert!(out.exhausted);
        assert_eq!(out.demands, vec![8]);
    }

    #[test]
    fn limits_truncate_runaway_games() {
        struct Forever;
        impl AdaptiveAdversary for Forever {
            fn next_action(&mut self, view: &GameView<'_>) -> Action {
                if view.n() < 2 {
                    Action::Activate
                } else {
                    Action::Request(0)
                }
            }
            fn reset(&mut self, _seed: u64) {}
        }
        let space = IdSpace::new(1 << 20).unwrap();
        let alg = Cluster::new(space);
        let seeds = SeedTree::new(2);
        let out = run_adaptive(&alg, &mut Forever, &seeds, GameLimits { max_requests: 100 });
        assert!(out.truncated);
        assert_eq!(out.demands.iter().sum::<u128>(), 100);
    }

    #[test]
    fn certain_collision_is_detected() {
        // Demand m from each of two instances: total 2m > m forces overlap.
        let space = IdSpace::new(32).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![32, 32]);
        let seeds = SeedTree::new(3);
        let out = run_oblivious_symbolic(&alg, &profile, &seeds);
        assert!(out.collided);
    }
}
