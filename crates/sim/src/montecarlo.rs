//! Parallel Monte-Carlo estimation of collision probabilities.
//!
//! Every trial is seeded deterministically from `(master_seed, trial
//! index)` via [`SeedTree`], so estimates are exactly reproducible and any
//! single colliding trial can be replayed in isolation. Trials are
//! embarrassingly parallel; they are sharded over scoped threads.

use crossbeam::thread;

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::Algorithm;

use crate::game::{run_adaptive, run_oblivious_symbolic, GameLimits};
use crate::stats::Estimate;

/// Configuration of a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Number of independent game plays.
    pub trials: u64,
    /// Master seed; everything else derives from it.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Limits applied to each adaptive game.
    pub limits: GameLimits,
}

impl TrialConfig {
    /// `trials` plays under master seed `master_seed`, auto-threaded.
    pub fn new(trials: u64, master_seed: u64) -> Self {
        TrialConfig {
            trials,
            master_seed,
            threads: 0,
            limits: GameLimits::default(),
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Per-run accounting beyond the collision estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunDiagnostics {
    /// Trials in which some instance reported exhaustion.
    pub exhausted_trials: u64,
    /// Trials truncated by [`GameLimits`].
    pub truncated_trials: u64,
}

/// Estimates the oblivious collision probability `p_A(D)` by symbolic
/// simulation (bulk skips + footprint intersection).
pub fn estimate_oblivious(
    algorithm: &dyn Algorithm,
    profile: &DemandProfile,
    config: TrialConfig,
) -> (Estimate, RunDiagnostics) {
    run_sharded(config, |tree| {
        let out = run_oblivious_symbolic(algorithm, profile, tree);
        (out.collided, out.exhausted, out.truncated)
    })
}

/// Estimates the adaptive collision probability `p_A(Z)` by playing the
/// full interactive game.
pub fn estimate_adaptive(
    algorithm: &dyn Algorithm,
    adversary: &dyn AdversarySpec,
    config: TrialConfig,
) -> (Estimate, RunDiagnostics) {
    run_sharded(config, |tree| {
        let mut adv = adversary.spawn(tree.seed(SeedDomain::Adversary));
        let out = run_adaptive(algorithm, adv.as_mut(), tree, config.limits);
        (out.collided, out.exhausted, out.truncated)
    })
}

/// Shards `trials` over threads; `play` maps a per-trial seed tree to
/// `(collided, exhausted, truncated)`.
fn run_sharded<F>(config: TrialConfig, play: F) -> (Estimate, RunDiagnostics)
where
    F: Fn(&SeedTree) -> (bool, bool, bool) + Sync,
{
    assert!(config.trials > 0, "at least one trial required");
    let root = SeedTree::new(config.master_seed);
    let threads = config.effective_threads().min(config.trials as usize).max(1);
    let results: Vec<(u64, u64, u64)> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads as u64 {
            let root = &root;
            let play = &play;
            handles.push(scope.spawn(move |_| {
                let mut collisions = 0u64;
                let mut exhausted = 0u64;
                let mut truncated = 0u64;
                let mut t = worker;
                while t < config.trials {
                    let tree = root.trial(t);
                    let (c, e, tr) = play(&tree);
                    collisions += c as u64;
                    exhausted += e as u64;
                    truncated += tr as u64;
                    t += threads as u64;
                }
                (collisions, exhausted, truncated)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let collisions: u64 = results.iter().map(|r| r.0).sum();
    let exhausted: u64 = results.iter().map(|r| r.1).sum();
    let truncated: u64 = results.iter().map(|r| r.2).sum();
    (
        Estimate::from_counts(collisions, config.trials),
        RunDiagnostics {
            exhausted_trials: exhausted,
            truncated_trials: truncated,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_adversary::oblivious::Oblivious;
    use uuidp_core::algorithms::{Cluster, Random};
    use uuidp_core::id::IdSpace;

    #[test]
    fn results_are_reproducible_and_thread_count_invariant() {
        let space = IdSpace::new(1 << 10).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![16, 16, 16, 16]);
        let mut cfg = TrialConfig::new(2000, 42);
        cfg.threads = 1;
        let (e1, _) = estimate_oblivious(&alg, &profile, cfg);
        cfg.threads = 4;
        let (e4, _) = estimate_oblivious(&alg, &profile, cfg);
        assert_eq!(e1.successes, e4.successes, "sharding must not change trials");
    }

    #[test]
    fn cluster_two_instance_estimate_matches_exact() {
        // Exact: Pr = (d1 + d2 − 1)/m (proof of Theorem 1).
        let m = 512u128;
        let space = IdSpace::new(m).unwrap();
        let alg = Cluster::new(space);
        let (d1, d2) = (20u128, 11u128);
        let profile = DemandProfile::new(vec![d1, d2]);
        let (est, diag) = estimate_oblivious(&alg, &profile, TrialConfig::new(60_000, 7));
        let exact = (d1 + d2 - 1) as f64 / m as f64;
        assert!(
            est.contains(exact) || (est.p_hat - exact).abs() / exact < 0.05,
            "estimate {est} vs exact {exact:.5}"
        );
        assert_eq!(diag.exhausted_trials, 0);
    }

    #[test]
    fn random_two_singletons_match_birthday() {
        // D = (1, 1): every algorithm collides with probability ≥ 1/m;
        // Random collides with exactly 1/m.
        let m = 256u128;
        let space = IdSpace::new(m).unwrap();
        let alg = Random::new(space);
        let profile = DemandProfile::new(vec![1, 1]);
        let (est, _) = estimate_oblivious(&alg, &profile, TrialConfig::new(200_000, 9));
        let exact = 1.0 / m as f64;
        assert!(
            (est.p_hat - exact).abs() / exact < 0.25,
            "estimate {est} vs exact {exact:.5}"
        );
    }

    #[test]
    fn adaptive_oblivious_wrapper_agrees_with_symbolic() {
        let space = IdSpace::new(1 << 12).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![32, 32]);
        let cfg = TrialConfig::new(4000, 11);
        let (sym, _) = estimate_oblivious(&alg, &profile, cfg);
        let spec = Oblivious::new(profile);
        let (adp, _) = estimate_adaptive(&alg, &spec, cfg);
        // Identical seeds ⇒ identical outcomes.
        assert_eq!(sym.successes, adp.successes);
    }
}
