//! Parallel Monte-Carlo estimation of collision probabilities.
//!
//! Every trial is seeded deterministically from `(master_seed, trial
//! index)` via [`SeedTree`], so estimates are exactly reproducible and any
//! single colliding trial can be replayed in isolation. Trials are
//! embarrassingly parallel; the engine runs them over scoped threads with
//! **chunked dynamic work-stealing**: workers claim fixed-size chunks of
//! trial indices from a shared atomic counter, so stragglers (e.g. the
//! rare trial that opens many runs) don't idle the other cores the way
//! static striping does. Because a trial's outcome is a pure function of
//! its index, the aggregate counts are bit-identical for every thread
//! count and every interleaving.
//!
//! Each worker owns reusable scratch ([`SymbolicScratch`] /
//! [`AdaptiveScratch`]): generators are recycled across trials through
//! [`IdGenerator::reset`](uuidp_core::traits::IdGenerator::reset) instead
//! of being re-boxed, and the collision detectors keep their maps. A
//! worker's steady-state trial allocates almost nothing.

use std::sync::atomic::{AtomicU64, Ordering};

use uuidp_adversary::adaptive::AdversarySpec;
use uuidp_adversary::profile::DemandProfile;
use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::Algorithm;

use crate::game::{
    run_adaptive_with, run_oblivious_symbolic_with, AdaptiveScratch, GameLimits, SymbolicScratch,
    TrialOutcome,
};
use crate::stats::Estimate;

/// Configuration of a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Number of independent game plays.
    pub trials: u64,
    /// Master seed; everything else derives from it.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Limits applied to each adaptive game.
    pub limits: GameLimits,
    /// Trials claimed per work-stealing grab (0 = auto-size from the
    /// trial count and thread count).
    pub chunk: u64,
}

impl TrialConfig {
    /// `trials` plays under master seed `master_seed`, auto-threaded.
    pub fn new(trials: u64, master_seed: u64) -> Self {
        TrialConfig {
            trials,
            master_seed,
            threads: 0,
            limits: GameLimits::default(),
            chunk: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Chunk size actually used: large enough to amortize the atomic
    /// claim, small enough that every worker gets many grabs.
    fn effective_chunk(&self, threads: usize) -> u64 {
        if self.chunk > 0 {
            return self.chunk;
        }
        (self.trials / (threads as u64 * 32)).clamp(1, 1024)
    }
}

/// Per-run accounting beyond the collision estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunDiagnostics {
    /// Trials in which some instance reported exhaustion.
    pub exhausted_trials: u64,
    /// Trials truncated by [`GameLimits`].
    pub truncated_trials: u64,
}

/// Estimates the oblivious collision probability `p_A(D)` by symbolic
/// simulation (bulk skips + footprint intersection).
pub fn estimate_oblivious(
    algorithm: &dyn Algorithm,
    profile: &DemandProfile,
    config: TrialConfig,
) -> (Estimate, RunDiagnostics) {
    run_sharded(
        config,
        SymbolicScratch::new,
        |tree, scratch: &mut SymbolicScratch| {
            run_oblivious_symbolic_with(scratch, algorithm, profile, tree)
        },
    )
}

/// Estimates the adaptive collision probability `p_A(Z)` by playing the
/// full interactive game.
///
/// Each worker boxes one strategy via [`AdversarySpec::spawn`] and then
/// recycles it across its trials through
/// [`AdaptiveAdversary::reset`](uuidp_adversary::adaptive::AdaptiveAdversary::reset)
/// — the mirror of the generator recycling — so a steady-state adaptive
/// trial allocates nothing for the adversary either.
pub fn estimate_adaptive(
    algorithm: &dyn Algorithm,
    adversary: &dyn AdversarySpec,
    config: TrialConfig,
) -> (Estimate, RunDiagnostics) {
    run_sharded(
        config,
        || (AdaptiveScratch::new(), adversary.spawn(0)),
        |tree, (scratch, adv)| {
            adv.reset(tree.seed(SeedDomain::Adversary));
            run_adaptive_with(scratch, algorithm, adv.as_mut(), tree, config.limits)
        },
    )
}

/// The reusable trial engine: distributes `config.trials` over worker
/// threads by chunked work-stealing; `init` builds one scratch per
/// worker, `play` maps a per-trial seed tree (plus the worker's scratch)
/// to a [`TrialOutcome`].
///
/// Determinism: `play` must be a pure function of the seed tree given
/// equivalent scratch state (the `reset` contract), so the summed counts
/// are independent of scheduling and thread count.
fn run_sharded<W, I, F>(config: TrialConfig, init: I, play: F) -> (Estimate, RunDiagnostics)
where
    I: Fn() -> W + Sync,
    F: Fn(&SeedTree, &mut W) -> TrialOutcome + Sync,
{
    assert!(config.trials > 0, "at least one trial required");
    let root = SeedTree::new(config.master_seed);
    let threads = config
        .effective_threads()
        .min(config.trials as usize)
        .max(1);
    let chunk = config.effective_chunk(threads);
    let next_chunk = AtomicU64::new(0);

    let results: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let root = &root;
            let init = &init;
            let play = &play;
            let next_chunk = &next_chunk;
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                let mut collisions = 0u64;
                let mut exhausted = 0u64;
                let mut truncated = 0u64;
                loop {
                    let start = next_chunk.fetch_add(chunk, Ordering::Relaxed);
                    if start >= config.trials {
                        break;
                    }
                    let end = (start + chunk).min(config.trials);
                    for t in start..end {
                        let tree = root.trial(t);
                        let out = play(&tree, &mut scratch);
                        collisions += out.collided as u64;
                        exhausted += out.exhausted as u64;
                        truncated += out.truncated as u64;
                    }
                }
                (collisions, exhausted, truncated)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let collisions: u64 = results.iter().map(|r| r.0).sum();
    let exhausted: u64 = results.iter().map(|r| r.1).sum();
    let truncated: u64 = results.iter().map(|r| r.2).sum();
    (
        Estimate::from_counts(collisions, config.trials),
        RunDiagnostics {
            exhausted_trials: exhausted,
            truncated_trials: truncated,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_adversary::oblivious::Oblivious;
    use uuidp_core::algorithms::{Cluster, Random};
    use uuidp_core::id::IdSpace;

    #[test]
    fn results_are_reproducible_and_thread_count_invariant() {
        let space = IdSpace::new(1 << 10).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![16, 16, 16, 16]);
        let mut cfg = TrialConfig::new(2000, 42);
        cfg.threads = 1;
        let (e1, _) = estimate_oblivious(&alg, &profile, cfg);
        cfg.threads = 4;
        let (e4, _) = estimate_oblivious(&alg, &profile, cfg);
        assert_eq!(
            e1.successes, e4.successes,
            "sharding must not change trials"
        );
        // Work-stealing chunk size must not change the counts either.
        cfg.chunk = 7;
        let (e7, _) = estimate_oblivious(&alg, &profile, cfg);
        assert_eq!(
            e1.successes, e7.successes,
            "chunking must not change trials"
        );
        cfg.threads = 3;
        cfg.chunk = 1;
        let (e3, _) = estimate_oblivious(&alg, &profile, cfg);
        assert_eq!(e1.successes, e3.successes);
    }

    #[test]
    fn cluster_two_instance_estimate_matches_exact() {
        // Exact: Pr = (d1 + d2 − 1)/m (proof of Theorem 1).
        let m = 512u128;
        let space = IdSpace::new(m).unwrap();
        let alg = Cluster::new(space);
        let (d1, d2) = (20u128, 11u128);
        let profile = DemandProfile::new(vec![d1, d2]);
        let (est, diag) = estimate_oblivious(&alg, &profile, TrialConfig::new(60_000, 7));
        let exact = (d1 + d2 - 1) as f64 / m as f64;
        assert!(
            est.contains(exact) || (est.p_hat - exact).abs() / exact < 0.05,
            "estimate {est} vs exact {exact:.5}"
        );
        assert_eq!(diag.exhausted_trials, 0);
    }

    #[test]
    fn random_two_singletons_match_birthday() {
        // D = (1, 1): every algorithm collides with probability ≥ 1/m;
        // Random collides with exactly 1/m.
        let m = 256u128;
        let space = IdSpace::new(m).unwrap();
        let alg = Random::new(space);
        let profile = DemandProfile::new(vec![1, 1]);
        let (est, _) = estimate_oblivious(&alg, &profile, TrialConfig::new(200_000, 9));
        let exact = 1.0 / m as f64;
        assert!(
            (est.p_hat - exact).abs() / exact < 0.25,
            "estimate {est} vs exact {exact:.5}"
        );
    }

    #[test]
    fn adaptive_oblivious_wrapper_agrees_with_symbolic() {
        let space = IdSpace::new(1 << 12).unwrap();
        let alg = Cluster::new(space);
        let profile = DemandProfile::new(vec![32, 32]);
        let cfg = TrialConfig::new(4000, 11);
        let (sym, _) = estimate_oblivious(&alg, &profile, cfg);
        let spec = Oblivious::new(profile);
        let (adp, _) = estimate_adaptive(&alg, &spec, cfg);
        // Identical seeds ⇒ identical outcomes.
        assert_eq!(sym.successes, adp.successes);
    }
}
