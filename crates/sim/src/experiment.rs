//! Experiment infrastructure: labeled parameter sweeps and table output.
//!
//! The repro harness regenerates each paper result as a table whose rows
//! contain the measured probability, the theory prediction, and their
//! ratio. This module holds the shared formatting/assembly machinery so
//! each experiment file only expresses its sweep.

use std::fmt::Write as _;

/// A simple column-aligned table with a title, rendering to Markdown.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with `headers`.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned Markdown.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// Formats a probability compactly (scientific below 1e-3).
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.4}")
    }
}

/// Formats a ratio with two decimals, or `inf`/`n/a` for degenerate input.
pub fn fmt_ratio(r: f64) -> String {
    if r.is_nan() {
        "n/a".to_string()
    } else if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.2}")
    }
}

/// Formats a large count with `2^k`-style shorthand when exact.
pub fn fmt_count(c: u128) -> String {
    if c >= 1024 && c.is_power_of_two() {
        format!("2^{}", c.trailing_zeros())
    } else {
        c.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_is_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "200000".into(), "3".into()]);
        let md = t.markdown();
        assert!(md.starts_with("### demo"));
        let lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 4);
        // All body lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.25), "0.2500");
        assert!(fmt_prob(1e-6).contains('e'));
        assert_eq!(fmt_ratio(2.0), "2.00");
        assert_eq!(fmt_ratio(f64::NAN), "n/a");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
        assert_eq!(fmt_count(1 << 20), "2^20");
        assert_eq!(fmt_count(100), "100");
        assert_eq!(fmt_count(512), "512");
    }
}
