//! `uuidp` — uncoordinated unique IDs from the command line.
//!
//! ```text
//! uuidp generate --algorithm cluster --bits 64 --count 5 --format hex
//! uuidp simulate --algorithm cluster --bits 24 --instances 8 --per-instance 512
//! uuidp plan --scheme cluster --budget 1e-6 --instances 1024 --bits 128
//! uuidp diagram --algorithm "bins:3" -m 20 --requests 8
//! uuidp serve --algorithm cluster --bits 64 --shards 4
//! uuidp serve --algorithm cluster --bits 64 --listen 127.0.0.1:7821 --audit-threads 4
//! uuidp stress --algorithm "bins*" --bits 48 --tenants 32 --requests 100000 --count 512
//! uuidp stress --algorithm cluster --trials-small --remote --remote-workers 4
//! uuidp stress --algorithm cluster --trials-small --remote --protocol v2 --remote-workers 4
//! uuidp stress --algorithm cluster --trials-small --remote --protocol v2 --chaos small --chaos-seed 7
//! uuidp fleet --algorithm cluster --nodes 5 --tenants 20 --requests 20000 --placement skewed
//! uuidp fleet --trials-small --nodes 3 --kill-every 2
//! uuidp fleet --trials-small --protocol v2
//! uuidp fleet --trials-small --protocol v2 --chaos small --chaos-seed 7 --kill-every 60
//! uuidp doctor
//! ```

use std::process::ExitCode;

use uuidp_cli::commands::{
    diagram, doctor, fleet, generate, plan, serve, simulate, stress, top, DiagramOpts, FleetOpts,
    GenerateOpts, PlanOpts, ServeOpts, SimulateOpts, StressOpts, TopOpts,
};
use uuidp_cli::IdFormat;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" | "gen" => run_generate(rest),
        "simulate" | "sim" => run_simulate(rest),
        "plan" => run_plan(rest),
        "diagram" => run_diagram(rest),
        "serve" => run_serve(rest),
        "stress" => run_stress_cmd(rest),
        "fleet" => run_fleet_cmd(rest),
        "top" => run_top_cmd(rest),
        "doctor" => doctor().map_err(|e| e.0),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "uuidp — uncoordinated unique IDs (PODS 2023 reproduction)\n\
         \n\
         usage:\n\
         \x20 uuidp generate --algorithm SPEC [--bits N=64] [--count N=1] [--seed N] [--format dec|hex|uuid]\n\
         \x20 uuidp simulate --algorithm SPEC --instances N --per-instance D [--bits N=24] [--trials N=20000] [--seed N]\n\
         \x20 uuidp plan     --scheme random|cluster --budget P --instances N [--bits N=128]\n\
         \x20 uuidp diagram  --algorithm SPEC [-m N=20] [--requests N=8] [--seed N]\n\
         \x20 uuidp serve    --algorithm SPEC [--bits N=64] [--shards N=2] [--audit-stripes N=16]\n\
         \x20                [--audit-threads N=1] [--seed N] [--listen ADDR (TCP, e.g. 127.0.0.1:7821)]\n\
         \x20                [--protocol v1|v2 (v1 = legacy text-only listener; default v2 negotiates both)]\n\
         \x20                [--metrics (expose the scrape surface; needs --listen)]\n\
         \x20                [--net-backend auto|epoll|poll (reactor readiness backend; needs --listen)]\n\
         \x20 uuidp stress   --algorithm SPEC [--bits N=48] [--shards N=2] [--tenants N=8] [--requests N=20000]\n\
         \x20                [--count N=256] [--mix uniform|skewed|flood|hunter] [--audit-threads N=1]\n\
         \x20                [--seed N] [--trials-small] [--remote (loopback TCP transport)]\n\
         \x20                [--remote-workers N=1 (pool width)] [--protocol v1|v2 (v2 multiplexes one conn)]\n\
         \x20                [--chaos SPEC (fault-injecting proxy; needs --remote)] [--chaos-seed N=0]\n\
         \x20                [--scrape (live metrics scraper beside the load; needs --remote)]\n\
         \x20                [--net-backend auto|epoll|poll (server reactor backend; needs --remote)]\n\
         \x20 uuidp fleet    --algorithm SPEC [--bits N=48] [--nodes N=3] [--tenants N=6] [--requests N=600]\n\
         \x20                [--count N=32] [--placement uniform|skewed|hunter] [--shards N=2]\n\
         \x20                [--audit-threads N=1] [--seed N] [--kill-every K (chaos restarts)]\n\
         \x20                [--reservation N=256] [--state-dir DIR] [--trials-small] [--protocol v1|v2]\n\
         \x20                [--chaos SPEC (per-node fault proxies)] [--chaos-seed N=0]\n\
         \x20                [--scrape (scrape every node's registry mid-run and at the end;\n\
         \x20                 also aggregates windowed time-series + burn-rate alerts into the report)]\n\
         \x20 uuidp top      --connect ADDR[,ADDR...] [--bits N=48] [--protocol v1|v2=v2]\n\
         \x20                [--interval-ms N=1000] [--windows N=60 (history ring)]\n\
         \x20                [--once (two polls, one JSON snapshot — the CI mode)]\n\
         \x20                live dashboard: ids/s, p50/p99/p999, audit backlog, wakeups,\n\
         \x20                health, firing alerts, sparkline; quit with q + Enter\n\
         \n\
         chaos SPECs: none | small | heavy, each extendable with key:value pairs —\n\
         \x20 refuse/drop/trunc/corrupt (per-mille rates), latency_us, jitter_us, throttle\n\
         \x20 e.g. --chaos \"small,latency_us:200,corrupt:5\" (same --chaos-seed ⇒ same schedule)\n\
         \x20 uuidp doctor\n\
         \n\
         algorithm SPECs: random | cluster | bins:K | cluster* | cluster*:G | bins* | bins*:maxfit | session:S,C"
    );
}

struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, names: &[&str]) -> Option<&'a str> {
        let mut it = self.args.iter();
        while let Some(a) = it.next() {
            if names.contains(&a.as_str()) {
                return it.next().map(|s| s.as_str());
            }
        }
        None
    }

    fn parse<T: std::str::FromStr>(&self, names: &[&str], default: T) -> Result<T, String> {
        match self.get(names) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for {}", names[0])),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, names: &[&str]) -> Result<Option<T>, String> {
        match self.get(names) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value `{v}` for {}", names[0])),
        }
    }

    fn require(&self, names: &[&str]) -> Result<&'a str, String> {
        self.get(names)
            .ok_or_else(|| format!("missing required flag {}", names[0]))
    }

    /// Boolean presence flag (takes no value).
    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

fn run_generate(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = GenerateOpts {
        algorithm: f.require(&["--algorithm", "-a"])?.to_string(),
        bits: f.parse(&["--bits", "-b"], 64u32)?,
        count: f.parse(&["--count", "-c"], 1u64)?,
        seed: f.parse_opt(&["--seed", "-s"])?,
        format: IdFormat::parse(f.get(&["--format", "-f"]).unwrap_or("dec")).map_err(|e| e.0)?,
    };
    generate(&opts).map_err(|e| e.0)
}

fn run_simulate(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = SimulateOpts {
        algorithm: f.require(&["--algorithm", "-a"])?.to_string(),
        bits: f.parse(&["--bits", "-b"], 24u32)?,
        instances: f.parse(&["--instances", "-n"], 8usize)?,
        per_instance: f.parse(&["--per-instance", "-d"], 256u128)?,
        trials: f.parse(&["--trials", "-t"], 20_000u64)?,
        seed: f.parse(&["--seed", "-s"], 0xC11u64)?,
    };
    simulate(&opts).map_err(|e| e.0)
}

fn run_plan(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = PlanOpts {
        scheme: f.require(&["--scheme"])?.to_string(),
        budget: f.parse(&["--budget"], 1e-6f64)?,
        instances: f.parse(&["--instances", "-n"], 1024u128)?,
        bits: f.parse(&["--bits", "-b"], 128u32)?,
    };
    plan(&opts).map_err(|e| e.0)
}

fn run_serve(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = ServeOpts {
        algorithm: f.require(&["--algorithm", "-a"])?.to_string(),
        bits: f.parse(&["--bits", "-b"], 64u32)?,
        shards: f.parse(&["--shards"], 2usize)?,
        audit_stripes: f.parse(&["--audit-stripes"], 16usize)?,
        audit_threads: f.parse(&["--audit-threads"], 1usize)?,
        seed: f.parse(&["--seed", "-s"], 0x5EEDu64)?,
        listen: f.get(&["--listen"]).map(str::to_string),
        protocol: f.get(&["--protocol"]).map(str::to_string),
        metrics: f.has("--metrics"),
        net_backend: f.get(&["--net-backend"]).unwrap_or("auto").to_string(),
    };
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut output = std::io::stdout();
    serve(&opts, &mut input, &mut output).map_err(|e| e.0)
}

fn run_stress_cmd(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    // --trials-small is the CI smoke preset; explicit flags still override.
    let small = args.iter().any(|a| a == "--trials-small");
    let preset = StressOpts::trials_small("cluster");
    let defaults = if small {
        preset
    } else {
        StressOpts {
            algorithm: String::new(),
            bits: 48,
            shards: 2,
            tenants: 8,
            requests: 20_000,
            count: 256,
            mix: "uniform".into(),
            audit_stripes: 16,
            audit_threads: 1,
            seed: 0x57E5,
            remote: false,
            remote_workers: 1,
            protocol: "v1".into(),
            chaos: None,
            chaos_seed: 0,
            scrape: false,
            net_backend: "auto".into(),
        }
    };
    let algorithm = match f.get(&["--algorithm", "-a"]) {
        Some(a) => a.to_string(),
        None if small => defaults.algorithm.clone(),
        None => return Err("missing required flag --algorithm".into()),
    };
    let opts = StressOpts {
        algorithm,
        bits: f.parse(&["--bits", "-b"], defaults.bits)?,
        shards: f.parse(&["--shards"], defaults.shards)?,
        tenants: f.parse(&["--tenants", "-n"], defaults.tenants)?,
        requests: f.parse(&["--requests", "-r"], defaults.requests)?,
        count: f.parse(&["--count", "-c"], defaults.count)?,
        mix: f
            .get(&["--mix", "-m"])
            .unwrap_or(defaults.mix.as_str())
            .to_string(),
        audit_stripes: f.parse(&["--audit-stripes"], defaults.audit_stripes)?,
        audit_threads: f.parse(&["--audit-threads"], defaults.audit_threads)?,
        seed: f.parse(&["--seed", "-s"], defaults.seed)?,
        remote: f.has("--remote") || defaults.remote,
        remote_workers: f.parse(&["--remote-workers"], defaults.remote_workers)?,
        protocol: f
            .get(&["--protocol"])
            .unwrap_or(defaults.protocol.as_str())
            .to_string(),
        chaos: f.get(&["--chaos"]).map(str::to_string),
        chaos_seed: f.parse(&["--chaos-seed"], 0u64)?,
        scrape: f.has("--scrape"),
        net_backend: f
            .get(&["--net-backend"])
            .unwrap_or(defaults.net_backend.as_str())
            .to_string(),
    };
    stress(&opts).map_err(|e| e.0)
}

fn run_fleet_cmd(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let small = f.has("--trials-small");
    let preset = FleetOpts::trials_small("cluster");
    let defaults = if small {
        preset
    } else {
        FleetOpts {
            algorithm: String::new(),
            requests: 5_000,
            count: 128,
            ..FleetOpts::trials_small("")
        }
    };
    let algorithm = match f.get(&["--algorithm", "-a"]) {
        Some(a) => a.to_string(),
        None if small => defaults.algorithm.clone(),
        None => return Err("missing required flag --algorithm".into()),
    };
    let opts = FleetOpts {
        algorithm,
        bits: f.parse(&["--bits", "-b"], defaults.bits)?,
        nodes: f.parse(&["--nodes"], defaults.nodes)?,
        tenants: f.parse(&["--tenants", "-n"], defaults.tenants)?,
        requests: f.parse(&["--requests", "-r"], defaults.requests)?,
        count: f.parse(&["--count", "-c"], defaults.count)?,
        placement: f
            .get(&["--placement", "--mix", "-m"])
            .unwrap_or(defaults.placement.as_str())
            .to_string(),
        shards: f.parse(&["--shards"], defaults.shards)?,
        audit_stripes: f.parse(&["--audit-stripes"], defaults.audit_stripes)?,
        audit_threads: f.parse(&["--audit-threads"], defaults.audit_threads)?,
        seed: f.parse(&["--seed", "-s"], defaults.seed)?,
        kill_every: f.parse_opt(&["--kill-every"])?,
        reservation: f.parse(&["--reservation"], defaults.reservation)?,
        state_dir: f.get(&["--state-dir"]).map(str::to_string),
        protocol: f
            .get(&["--protocol"])
            .unwrap_or(defaults.protocol.as_str())
            .to_string(),
        chaos: f.get(&["--chaos"]).map(str::to_string),
        chaos_seed: f.parse(&["--chaos-seed"], 0u64)?,
        scrape: f.has("--scrape"),
    };
    fleet(&opts).map_err(|e| e.0)
}

fn run_top_cmd(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = TopOpts {
        connect: f.require(&["--connect"])?.to_string(),
        bits: f.parse(&["--bits", "-b"], 48u32)?,
        protocol: f.get(&["--protocol"]).unwrap_or("v2").to_string(),
        interval_ms: f.parse(&["--interval-ms"], 1000u64)?,
        once: f.has("--once"),
        windows: f.parse(&["--windows"], 60usize)?,
    };
    top(&opts).map_err(|e| e.0)
}

fn run_diagram(args: &[String]) -> Result<String, String> {
    let f = Flags { args };
    let opts = DiagramOpts {
        algorithm: f.require(&["--algorithm", "-a"])?.to_string(),
        m: f.parse(&["-m", "--universe"], 20u128)?,
        requests: f.parse(&["--requests", "-r"], 8u128)?,
        seed: f.parse_opt(&["--seed", "-s"])?,
    };
    diagram(&opts).map_err(|e| e.0)
}
