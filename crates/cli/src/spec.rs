//! Parsing of algorithm specifications and ID formatting for the CLI.
//!
//! Algorithm specs are compact strings:
//!
//! | Spec | Algorithm |
//! |------|-----------|
//! | `random` | Random |
//! | `cluster` | Cluster |
//! | `bins:K` | Bins(K) |
//! | `cluster*` / `cluster-star` | Cluster★ |
//! | `cluster*:G` | Cluster★ with run growth ×G |
//! | `bins*` / `bins-star` | Bins★ (paper chunk formula) |
//! | `bins*:maxfit` | Bins★ (max-fit chunks) |
//! | `session:S,C` | SessionCounter with S session bits, C counter bits |

use std::fmt;

use uuidp_core::algorithms::{
    AlgorithmKind, Bins, BinsStar, ChunkRule, Cluster, ClusterStar, Random, SessionCounter,
};
use uuidp_core::id::{Id, IdSpace};
use uuidp_core::traits::Algorithm;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses an algorithm spec against a universe.
pub fn parse_algorithm(spec: &str, space: IdSpace) -> Result<Box<dyn Algorithm>, ParseError> {
    let lower = spec.to_ascii_lowercase();
    let (head, arg) = match lower.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (lower.as_str(), None),
    };
    match (head, arg) {
        ("random", None) => Ok(Box::new(Random::new(space))),
        ("cluster", None) => Ok(Box::new(Cluster::new(space))),
        ("bins", Some(k)) => {
            let k: u128 = k
                .parse()
                .map_err(|_| ParseError(format!("bad bin size in `{spec}`")))?;
            if k < 1 || k > space.size() {
                return Err(ParseError(format!(
                    "bin size {k} out of range 1..={}",
                    space.size()
                )));
            }
            Ok(Box::new(Bins::new(space, k)))
        }
        ("bins", None) => Err(ParseError("bins needs a size: bins:K".into())),
        ("cluster*" | "cluster-star", None) => Ok(Box::new(ClusterStar::new(space))),
        ("cluster*" | "cluster-star", Some(g)) => {
            let g: u32 = g
                .parse()
                .map_err(|_| ParseError(format!("bad growth factor in `{spec}`")))?;
            if g < 2 {
                return Err(ParseError("growth factor must be at least 2".into()));
            }
            Ok(Box::new(ClusterStar::with_growth(space, g)))
        }
        ("bins*" | "bins-star", None) => Ok(Box::new(BinsStar::new(space))),
        ("bins*" | "bins-star", Some("maxfit")) => {
            Ok(Box::new(BinsStar::with_rule(space, ChunkRule::MaxFit)))
        }
        ("bins*" | "bins-star", Some(other)) => {
            Err(ParseError(format!("unknown bins* variant `{other}`")))
        }
        ("session", Some(sc)) => {
            let (s, c) = sc
                .split_once(',')
                .ok_or_else(|| ParseError("session needs S,C bit counts".into()))?;
            let s: u32 = s
                .parse()
                .map_err(|_| ParseError("bad session bits".into()))?;
            let c: u32 = c
                .parse()
                .map_err(|_| ParseError("bad counter bits".into()))?;
            let alg = SessionCounter::new(s, c);
            if alg.space() != space {
                return Err(ParseError(format!(
                    "session:{s},{c} implies m = 2^{}, but --bits gave {}",
                    s + c,
                    space
                )));
            }
            Ok(Box::new(alg))
        }
        _ => Err(ParseError(format!(
            "unknown algorithm `{spec}` (try random, cluster, bins:K, cluster*, bins*, session:S,C)"
        ))),
    }
}

/// Parses an algorithm spec into the serializable [`AlgorithmKind`]
/// registry form the service layer is configured with. Accepts the same
/// specs as [`parse_algorithm`] (including the `cluster*:G` growth
/// ablation) and validates against `space` by building once.
pub fn parse_algorithm_kind(spec: &str, space: IdSpace) -> Result<AlgorithmKind, ParseError> {
    // Validate the spec (ranges, bit layouts) through the factory parser.
    parse_algorithm(spec, space)?;
    let lower = spec.to_ascii_lowercase();
    let (head, arg) = match lower.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (lower.as_str(), None),
    };
    match (head, arg) {
        ("random", None) => Ok(AlgorithmKind::Random),
        ("cluster", None) => Ok(AlgorithmKind::Cluster),
        ("bins", Some(k)) => Ok(AlgorithmKind::Bins {
            k: k.parse().expect("validated above"),
        }),
        ("cluster*" | "cluster-star", None) => Ok(AlgorithmKind::ClusterStar),
        ("cluster*" | "cluster-star", Some(g)) => Ok(AlgorithmKind::ClusterStarGrowth {
            growth: g.parse().expect("validated above"),
        }),
        ("bins*" | "bins-star", None) => Ok(AlgorithmKind::BinsStar),
        ("bins*" | "bins-star", Some("maxfit")) => Ok(AlgorithmKind::BinsStarMaxFit),
        ("session", Some(sc)) => {
            let (s, c) = sc.split_once(',').expect("validated above");
            Ok(AlgorithmKind::SessionCounter {
                session_bits: s.parse().expect("validated above"),
                counter_bits: c.parse().expect("validated above"),
            })
        }
        _ => Err(ParseError(format!(
            "`{spec}` has no registry form usable by the service"
        ))),
    }
}

/// Output encodings for generated IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdFormat {
    /// Decimal.
    #[default]
    Dec,
    /// `0x`-prefixed hexadecimal, zero-padded to the universe width.
    Hex,
    /// RFC 4122 presentation (8-4-4-4-12 hex groups of the low 128 bits).
    Uuid,
}

impl IdFormat {
    /// Parses `dec`, `hex`, or `uuid`.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s.to_ascii_lowercase().as_str() {
            "dec" => Ok(IdFormat::Dec),
            "hex" => Ok(IdFormat::Hex),
            "uuid" => Ok(IdFormat::Uuid),
            other => Err(ParseError(format!("unknown format `{other}`"))),
        }
    }

    /// Renders `id` drawn from `space`.
    pub fn render(self, id: Id, space: IdSpace) -> String {
        match self {
            IdFormat::Dec => id.value().to_string(),
            IdFormat::Hex => {
                let nibbles = (space.log2_ceil() as usize).div_ceil(4).max(1);
                format!("{:#0width$x}", id.value(), width = nibbles + 2)
            }
            IdFormat::Uuid => {
                let v = id.value();
                format!(
                    "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                    (v >> 96) as u32,
                    (v >> 80) as u16,
                    (v >> 64) as u16,
                    (v >> 48) as u16,
                    v & 0xFFFF_FFFF_FFFF
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IdSpace {
        IdSpace::with_bits(24).unwrap()
    }

    #[test]
    fn parses_the_whole_menu() {
        for spec in [
            "random",
            "cluster",
            "bins:64",
            "cluster*",
            "cluster-star",
            "cluster*:4",
            "bins*",
            "bins-star",
            "bins*:maxfit",
        ] {
            assert!(parse_algorithm(spec, space()).is_ok(), "{spec}");
        }
        assert!(parse_algorithm("session:14,10", space()).is_ok());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let err = parse_algorithm("bogus", space()).unwrap_err();
        assert!(err.0.contains("unknown algorithm"));
        let err = parse_algorithm("bins:0", space()).unwrap_err();
        assert!(err.0.contains("out of range"));
        let err = parse_algorithm("bins", space()).unwrap_err();
        assert!(err.0.contains("bins:K"));
        let err = parse_algorithm("session:14,12", space()).unwrap_err();
        assert!(err.0.contains("implies m"));
        let err = parse_algorithm("cluster*:1", space()).unwrap_err();
        assert!(err.0.contains("at least 2"));
    }

    #[test]
    fn registry_specs_round_trip_through_algorithm_kind() {
        // Every servable spec parses to a registry entry whose factory
        // carries the same name as the direct parser's — so `uuidp
        // serve`/`stress` can select every ablation, growth included
        // (the previously missing ROADMAP entry).
        for spec in [
            "random",
            "cluster",
            "bins:64",
            "cluster*",
            "cluster*:4",
            "cluster-star:8",
            "bins*",
            "bins*:maxfit",
        ] {
            let kind = parse_algorithm_kind(spec, space()).unwrap();
            assert_eq!(
                kind.build(space()).name(),
                parse_algorithm(spec, space()).unwrap().name(),
                "{spec}"
            );
        }
        assert_eq!(
            parse_algorithm_kind("cluster*:4", space()).unwrap(),
            AlgorithmKind::ClusterStarGrowth { growth: 4 }
        );
        // Invalid growth factors are still rejected up front.
        assert!(parse_algorithm_kind("cluster*:1", space()).is_err());
    }

    #[test]
    fn names_round_trip_sensibly() {
        let alg = parse_algorithm("bins:64", space()).unwrap();
        assert_eq!(alg.name(), "bins(64)");
        let alg = parse_algorithm("cluster*:4", space()).unwrap();
        assert_eq!(alg.name(), "cluster*(x4)");
    }

    #[test]
    fn id_formats() {
        let s = IdSpace::with_bits(16).unwrap();
        assert_eq!(IdFormat::Dec.render(Id(255), s), "255");
        assert_eq!(IdFormat::Hex.render(Id(255), s), "0x00ff");
        let s128 = IdSpace::with_bits(127).unwrap();
        let rendered = IdFormat::Uuid.render(Id(0x1234_5678_9abc_def0_1122_3344_5566_7788), s128);
        assert_eq!(rendered, "12345678-9abc-def0-1122-334455667788");
    }

    #[test]
    fn format_parse() {
        assert_eq!(IdFormat::parse("HEX").unwrap(), IdFormat::Hex);
        assert!(IdFormat::parse("base64").is_err());
    }
}
