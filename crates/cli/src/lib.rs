//! # uuidp-cli — library behind the `uuidp` command
//!
//! Thin, testable command implementations; `main.rs` only parses argv.
//! Subcommands:
//!
//! * `generate` — mint IDs with any algorithm from the suite;
//! * `simulate` — Monte-Carlo collision probability for a deployment
//!   shape, next to the paper's prediction;
//! * `plan` — capacity planning (safe demand / required bits);
//! * `diagram` — the paper's §3 layout diagrams for any algorithm.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commands;
pub mod spec;

pub use spec::{parse_algorithm, IdFormat, ParseError};
