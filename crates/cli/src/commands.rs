//! The `uuidp` subcommand implementations.
//!
//! Each command is a plain function from a typed options struct to a
//! `Result<String>` (the rendered output), so the whole surface is unit
//! tested without process spawning.

use std::fmt::Write as _;

use uuidp_adversary::profile::DemandProfile;
use uuidp_analysis::exact::{cluster_union_bounds, random_exact};
use uuidp_analysis::planning::{self, Scheme};
use uuidp_analysis::theory;
use uuidp_core::diagram::render_captioned;
use uuidp_core::id::IdSpace;
use uuidp_core::rng::{SplitMix64, Xoshiro256pp};
use uuidp_sim::montecarlo::{estimate_oblivious, TrialConfig};

use uuidp_client::ProtoVersion;
use uuidp_fleet::router::Placement;
use uuidp_fleet::run::{run_fleet, FleetConfig, FleetReport};
use uuidp_netchaos::ChaosSpec;
use uuidp_service::net::{ServerOptions, TcpServer};
use uuidp_service::protocol::{render_lease, Command};
use uuidp_service::reactor::NetBackend;
use uuidp_service::service::{IdService, ServiceConfig, ServiceReport};
use uuidp_service::stress::{
    run_stress, run_stress_remote, StressConfig, StressReport, TrafficMix,
};

use crate::spec::{parse_algorithm, parse_algorithm_kind, IdFormat, ParseError};

/// Options for `uuidp generate`.
#[derive(Debug, Clone)]
pub struct GenerateOpts {
    /// Algorithm spec (see [`crate::spec`]).
    pub algorithm: String,
    /// Universe width in bits.
    pub bits: u32,
    /// Number of IDs to mint.
    pub count: u64,
    /// Seed; `None` uses OS entropy.
    pub seed: Option<u64>,
    /// Output encoding.
    pub format: IdFormat,
}

/// Runs `uuidp generate`.
pub fn generate(opts: &GenerateOpts) -> Result<String, ParseError> {
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let alg = parse_algorithm(&opts.algorithm, space)?;
    let seed = opts.seed.unwrap_or_else(entropy_seed);
    let mut gen = alg.spawn(seed);
    let mut out = String::new();
    for i in 0..opts.count {
        match gen.next_id() {
            Ok(id) => {
                out.push_str(&opts.format.render(id, space));
                out.push('\n');
            }
            Err(e) => {
                return Err(ParseError(format!(
                    "generator exhausted after {i} IDs: {e}"
                )))
            }
        }
    }
    Ok(out)
}

/// Options for `uuidp simulate`.
#[derive(Debug, Clone)]
pub struct SimulateOpts {
    /// Algorithm spec.
    pub algorithm: String,
    /// Universe width in bits.
    pub bits: u32,
    /// Number of uncoordinated instances.
    pub instances: usize,
    /// IDs drawn per instance.
    pub per_instance: u128,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

/// Runs `uuidp simulate`: measured collision probability plus the
/// matching paper prediction.
pub fn simulate(opts: &SimulateOpts) -> Result<String, ParseError> {
    if opts.instances < 2 {
        return Err(ParseError("need at least 2 instances to collide".into()));
    }
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let alg = parse_algorithm(&opts.algorithm, space)?;
    let profile = DemandProfile::uniform(opts.instances, opts.per_instance);
    let (est, diag) = estimate_oblivious(
        alg.as_ref(),
        &profile,
        TrialConfig::new(opts.trials.max(1), opts.seed),
    );
    let m = space.size();
    let prediction = match opts.algorithm.to_ascii_lowercase().as_str() {
        "random" => Some(("exact (Cor. 3)", random_exact(&profile, m))),
        "cluster" => Some(("union bound (Thm. 1)", cluster_union_bounds(&profile, m).1)),
        s if s.starts_with("bins:") => Some(("theta (Thm. 2)", {
            let k: u128 = s[5..].parse().unwrap_or(1);
            theory::bins(&profile, k, m)
        })),
        _ => None,
    };
    let mut out = format!(
        "algorithm:   {}\nuniverse:    m = 2^{}\nworkload:    {} instances × {} IDs\n\
         measured:    p = {}\n",
        alg.name(),
        opts.bits,
        opts.instances,
        opts.per_instance,
        est
    );
    if let Some((label, p)) = prediction {
        out.push_str(&format!("prediction:  {p:.6e} ({label})\n"));
    }
    if diag.exhausted_trials > 0 {
        out.push_str(&format!(
            "warning:     {} trials exhausted the generator\n",
            diag.exhausted_trials
        ));
    }
    Ok(out)
}

/// Options for `uuidp plan`.
#[derive(Debug, Clone)]
pub struct PlanOpts {
    /// `random` or `cluster`.
    pub scheme: String,
    /// Collision budget, e.g. `1e-6`.
    pub budget: f64,
    /// Fleet size.
    pub instances: u128,
    /// ID width in bits.
    pub bits: u32,
}

/// Runs `uuidp plan`.
pub fn plan(opts: &PlanOpts) -> Result<String, ParseError> {
    let scheme = match opts.scheme.to_ascii_lowercase().as_str() {
        "random" => Scheme::Random,
        "cluster" => Scheme::Cluster,
        other => {
            return Err(ParseError(format!(
                "unknown scheme `{other}` (random | cluster)"
            )))
        }
    };
    if !(opts.budget > 0.0 && opts.budget < 1.0) {
        return Err(ParseError("budget must be in (0, 1)".into()));
    }
    let d = planning::safe_demand(scheme, opts.budget, opts.instances, opts.bits);
    let advantage = planning::cluster_advantage(opts.budget, opts.instances, opts.bits);
    Ok(format!(
        "scheme:      {:?}\nbudget:      {:.1e}\nfleet:       {} instances\nIDs:         {} bits\n\
         safe demand: ~2^{:.1} total IDs\ncluster advantage at this point: {:.1e}×\n",
        scheme,
        opts.budget,
        opts.instances,
        opts.bits,
        d.log2(),
        advantage
    ))
}

/// Options for `uuidp diagram`.
#[derive(Debug, Clone)]
pub struct DiagramOpts {
    /// Algorithm spec.
    pub algorithm: String,
    /// Universe size (not bits — diagrams are figure-sized).
    pub m: u128,
    /// Requests to draw.
    pub requests: u128,
    /// Seed; `None` searches for one whose layout serves all requests.
    pub seed: Option<u64>,
}

/// Runs `uuidp diagram`.
pub fn diagram(opts: &DiagramOpts) -> Result<String, ParseError> {
    if opts.m > 1 << 14 {
        return Err(ParseError("diagrams are for m ≤ 2^14".into()));
    }
    let space = IdSpace::new(opts.m).map_err(|e| ParseError(format!("bad -m: {e}")))?;
    let alg = parse_algorithm(&opts.algorithm, space)?;
    let seed = match opts.seed {
        Some(s) => s,
        None => (0..1000)
            .find(|&s| alg.spawn(s).skip(opts.requests).is_ok())
            .ok_or_else(|| {
                ParseError(format!(
                    "no seed serves {} requests on m = {}",
                    opts.requests, opts.m
                ))
            })?,
    };
    let mut gen = alg.spawn(seed);
    Ok(render_captioned(
        &alg.name(),
        gen.as_mut(),
        opts.requests,
        opts.m.min(64) as usize,
    ))
}

/// Options for `uuidp serve`.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Algorithm spec.
    pub algorithm: String,
    /// Universe width in bits.
    pub bits: u32,
    /// Worker shards.
    pub shards: usize,
    /// Audit stripes.
    pub audit_stripes: usize,
    /// Audit pipeline threads.
    pub audit_threads: usize,
    /// Master seed for the per-tenant seed tree.
    pub seed: u64,
    /// When set, serve the line protocol over TCP on this address
    /// (e.g. `127.0.0.1:7821`; port 0 binds an ephemeral port) instead
    /// of stdin.
    pub listen: Option<String>,
    /// Wire protocols the TCP listener accepts: `v2` (default)
    /// negotiates per connection and serves both v1 text and v2 binary
    /// clients; `v1` is a legacy-only listener that rejects v2 hellos.
    /// Only meaningful with `--listen`.
    pub protocol: Option<String>,
    /// Expose the metric registry for scraping (v1 `metrics` command
    /// and v2 metrics frames). Only meaningful with `--listen`.
    pub metrics: bool,
    /// Readiness backend for the TCP reactor (`auto | epoll | poll`).
    /// `auto` picks epoll where compiled in; `poll` forces the portable
    /// rotation fallback. Only meaningful with `--listen`.
    pub net_backend: String,
}

/// Runs `uuidp serve`: the line protocol (see [`uuidp_service::protocol`])
/// over the sharded batch-leasing service — on stdin/stdout by default,
/// or as a TCP front-end with `--listen`:
///
/// ```text
/// <tenant> <count>    lease `count` IDs for `tenant`, print the arcs
/// reset <tenant>      recycle the tenant's generator (new epoch)
/// drain               block until all prior requests are processed
/// quit                stop (EOF works too; over TCP, closes this conn)
/// shutdown            stop the whole service (TCP: report totals)
/// ```
///
/// Writes one reply line per command to `out` and returns the shutdown
/// summary (issued totals plus the online audit's findings). In
/// `--listen` mode the bound address is announced on `out` and the call
/// blocks until a client sends `shutdown`.
pub fn serve(
    opts: &ServeOpts,
    input: &mut dyn std::io::BufRead,
    out: &mut dyn std::io::Write,
) -> Result<String, ParseError> {
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let kind = parse_algorithm_kind(&opts.algorithm, space)?;
    let protocol = match &opts.protocol {
        None => None,
        Some(p) => Some(ProtoVersion::parse(p).map_err(ParseError)?),
    };
    if protocol.is_some() && opts.listen.is_none() {
        return Err(ParseError(
            "--protocol only applies with --listen (stdin serve has no wire to version)".into(),
        ));
    }
    if opts.metrics && opts.listen.is_none() {
        return Err(ParseError(
            "--metrics only applies with --listen (stdin serve has no scrape surface)".into(),
        ));
    }
    let backend: NetBackend = opts
        .net_backend
        .parse()
        .map_err(|e| ParseError(format!("bad --net-backend: {e}")))?;
    if backend != NetBackend::Auto && opts.listen.is_none() {
        return Err(ParseError(
            "--net-backend only applies with --listen (stdin serve has no reactor)".into(),
        ));
    }
    let mut config = ServiceConfig::new(kind, space);
    config.shards = opts.shards.max(1);
    config.audit_stripes = opts.audit_stripes.max(1);
    config.audit_threads = opts.audit_threads.max(1);
    config.master_seed = opts.seed;
    let io_err = |e: std::io::Error| ParseError(format!("i/o error: {e}"));

    if let Some(addr) = &opts.listen {
        let options = ServerOptions {
            accept_v2: protocol != Some(ProtoVersion::V1),
            metrics: opts.metrics,
            backend,
            ..ServerOptions::default()
        };
        let server = TcpServer::bind_with(addr, config, options)
            .map_err(|e| ParseError(format!("bind {addr}: {e}")))?;
        writeln!(out, "listening on {}", server.local_addr()).map_err(io_err)?;
        if opts.metrics {
            writeln!(
                out,
                "metrics exposition enabled (v1 `metrics` command, v2 metrics frames)"
            )
            .map_err(io_err)?;
        }
        out.flush().map_err(io_err)?;
        let report = server
            .join()
            .ok_or_else(|| ParseError("server exited without a shutdown report".into()))?;
        return Ok(serve_summary(&report));
    }

    let service = IdService::start(config);
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(io_err)? == 0 {
            break; // EOF
        }
        match Command::parse(&line) {
            Err(msg) => writeln!(out, "error: {msg}").map_err(io_err)?,
            Ok(None) => continue,
            // Process-local: the service stops with this loop either way.
            Ok(Some(Command::Quit | Command::Shutdown)) => break,
            Ok(Some(Command::Drain)) => {
                service.drain();
                writeln!(out, "drained").map_err(io_err)?;
            }
            Ok(Some(Command::Reset { tenant })) => {
                service.reset_tenant(tenant);
                writeln!(out, "reset tenant={tenant}").map_err(io_err)?;
            }
            Ok(Some(Command::Lease { tenant, count })) => {
                let reply = service.lease(tenant, count);
                writeln!(out, "{}", render_lease(&reply)).map_err(io_err)?;
            }
            // Always answered on stdin: `--metrics` gates the *network*
            // scrape surface, and a local pipe needs no such gate.
            Ok(Some(Command::Metrics)) => {
                write!(out, "{}", service.registry().snapshot().render_prometheus())
                    .map_err(io_err)?;
                writeln!(out, "# EOF").map_err(io_err)?;
            }
        }
    }
    Ok(serve_summary(&service.shutdown()))
}

/// The human-readable `uuidp serve` shutdown block.
fn serve_summary(report: &ServiceReport) -> String {
    format!(
        "served:      {} leases, {} IDs\nerrors:      {}\n\
         audit:       {} duplicate IDs across {} flagged leases{}\n",
        report.leases,
        report.issued_ids,
        report.errors,
        report.audit.counts.duplicate_ids,
        report.audit.counts.flagged_records,
        if report.audit.counts.collided() {
            "  ** CROSS-TENANT COLLISION **"
        } else {
            ""
        }
    )
}

/// Options for `uuidp stress`.
#[derive(Debug, Clone)]
pub struct StressOpts {
    /// Algorithm spec.
    pub algorithm: String,
    /// Universe width in bits.
    pub bits: u32,
    /// Worker shards.
    pub shards: usize,
    /// Tenants generating load.
    pub tenants: u64,
    /// Lease requests to submit.
    pub requests: u64,
    /// IDs per lease.
    pub count: u128,
    /// Traffic mix (`uniform | skewed | flood | hunter`).
    pub mix: String,
    /// Audit stripes.
    pub audit_stripes: usize,
    /// Audit pipeline threads.
    pub audit_threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Replay over a loopback TCP server through the real socket client
    /// instead of in-process channels.
    pub remote: bool,
    /// Client-side connection pool width for `--remote` runs: worker
    /// threads, each reusing one persistent connection all run.
    pub remote_workers: usize,
    /// Wire protocol for `--remote` runs (`v1 | v2`). Under v2 the
    /// whole worker pool multiplexes a single connection.
    pub protocol: String,
    /// Chaos spec for `--remote` runs: a deterministic fault-injecting
    /// proxy sits between the client pool and the server (see
    /// `uuidp_netchaos::ChaosSpec` for the grammar, e.g.
    /// `small` or `heavy,latency_us:200`).
    pub chaos: Option<String>,
    /// Seed for the chaos fault schedule; the same seed reproduces the
    /// identical schedule bit for bit.
    pub chaos_seed: u64,
    /// Run a live metrics scraper beside the load (`--remote` only): a
    /// dedicated v1 connection scrapes the registry throughout the run,
    /// asserting required families stay present and monotone.
    pub scrape: bool,
    /// Readiness backend for the `--remote` server's reactor
    /// (`auto | epoll | poll`); `poll` forces the portable rotation
    /// fallback so CI can smoke it.
    pub net_backend: String,
}

impl StressOpts {
    /// The CI smoke preset behind `uuidp stress --trials-small`: small
    /// enough for a debug-build smoke run, still multi-shard and mixed.
    pub fn trials_small(algorithm: &str) -> Self {
        StressOpts {
            algorithm: algorithm.to_string(),
            bits: 48,
            shards: 2,
            tenants: 8,
            requests: 2_000,
            count: 64,
            mix: "uniform".into(),
            audit_stripes: 8,
            audit_threads: 1,
            seed: 0x57E5,
            remote: false,
            remote_workers: 1,
            protocol: "v1".into(),
            chaos: None,
            chaos_seed: 0,
            scrape: false,
            net_backend: "auto".into(),
        }
    }
}

/// Runs `uuidp stress`: the requested traffic phase, then a mandatory
/// *injected-collision* validation phase (two tenants share one seed) —
/// if the online audit misses the injected duplicates, the command
/// fails. This is the zero-false-negative gate the CI smoke run relies
/// on.
pub fn stress(opts: &StressOpts) -> Result<String, ParseError> {
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let kind = parse_algorithm_kind(&opts.algorithm, space)?;
    let mix = TrafficMix::parse(&opts.mix).map_err(ParseError)?;
    let mut service = ServiceConfig::new(kind, space);
    service.shards = opts.shards.max(1);
    service.audit_stripes = opts.audit_stripes.max(1);
    service.audit_threads = opts.audit_threads.max(1);
    service.master_seed = opts.seed;

    // Both the main phase and the injected-collision validation phase go
    // through the selected transport, so `--remote` exercises the whole
    // socket path end to end.
    let run = |cfg: StressConfig| -> Result<StressReport, ParseError> {
        if opts.remote {
            run_stress_remote(cfg).map_err(|e| ParseError(format!("remote stress: {e}")))
        } else {
            Ok(run_stress(cfg))
        }
    };

    let protocol = ProtoVersion::parse(&opts.protocol).map_err(ParseError)?;
    if opts.remote_workers == 0 {
        return Err(ParseError(
            "--remote-workers must be at least 1 (a pool of zero workers would hang)".into(),
        ));
    }
    if opts.remote_workers > 1 && !opts.remote {
        return Err(ParseError(
            "--remote-workers only applies with --remote (the in-process path has no connections to pool)"
                .into(),
        ));
    }
    if protocol == ProtoVersion::V2 && !opts.remote {
        return Err(ParseError(
            "--protocol v2 only applies with --remote (the in-process path has no wire to version)"
                .into(),
        ));
    }
    let chaos = match &opts.chaos {
        None => None,
        Some(s) => Some(ChaosSpec::parse(s).map_err(|e| ParseError(format!("bad --chaos: {e}")))?),
    };
    if chaos.is_some() && !opts.remote {
        return Err(ParseError(
            "--chaos only applies with --remote (the in-process path has no network to break)"
                .into(),
        ));
    }
    if opts.scrape && !opts.remote {
        return Err(ParseError(
            "--scrape only applies with --remote (the in-process path has no wire to scrape)"
                .into(),
        ));
    }
    let net_backend: NetBackend = opts
        .net_backend
        .parse()
        .map_err(|e| ParseError(format!("bad --net-backend: {e}")))?;
    if net_backend != NetBackend::Auto && !opts.remote {
        return Err(ParseError(
            "--net-backend only applies with --remote (the in-process path has no reactor)".into(),
        ));
    }
    let mut cfg = StressConfig::new(service, opts.tenants, opts.requests, opts.count);
    cfg.mix = mix;
    cfg.remote_workers = opts.remote_workers;
    cfg.protocol = protocol;
    cfg.chaos = chaos;
    cfg.chaos_seed = opts.chaos_seed;
    cfg.scrape = opts.scrape;
    cfg.net_backend = net_backend;
    let mut transport = if opts.remote && cfg.remote_workers > 1 && protocol == ProtoVersion::V2 {
        format!(" (loopback TCP transport, protocol {protocol}, pooled workers multiplexing one connection)")
    } else if opts.remote && cfg.remote_workers > 1 {
        format!(" (loopback TCP transport, protocol {protocol}, pooled connections)")
    } else if opts.remote {
        format!(" (loopback TCP transport, protocol {protocol})")
    } else {
        String::new()
    };
    if let Some(spec) = &cfg.chaos {
        transport.push_str(&format!(" [chaos `{spec}` seed {:#x}]", opts.chaos_seed));
    }
    let main = run(cfg.clone())?;
    let mut out = format!(
        "# stress: {} over m = 2^{}{}\n\n{}",
        opts.algorithm,
        opts.bits,
        transport,
        main.render()
    );

    // Validation phase: tenants 0 and 1 share a seed, in uniform rotation
    // so each tenant gets exactly `per_tenant` leases — the twin's whole
    // stream duplicates the victim's, so the audit must report exactly
    // `per_tenant × count` duplicate IDs (zero false negatives).
    let mut check = cfg;
    check.mix = TrafficMix::Uniform;
    // The twin-stream count is exact only on a clean network: a dropped
    // or truncated request would shorten one twin's stream and turn the
    // gate into noise, so validation always runs chaos-free.
    check.chaos = None;
    check.tenants = check.tenants.max(2);
    let per_tenant = (check.requests.clamp(16, 512) / check.tenants).max(1);
    check.requests = per_tenant * check.tenants;
    check.service.seed_alias = Some((0, 1));
    let injected = run(check)?;
    // The exact count holds only when no generator exhausted: a partial
    // grant shortens the twin streams by an amount the aggregate report
    // cannot attribute per tenant, so fall back to requiring detection.
    let expected = if injected.errors == 0 {
        per_tenant as u128 * opts.count
    } else {
        1
    };
    out.push_str(&format!(
        "\n# audit validation (injected same-seed twin tenants)\n\n\
         duplicates:  {} detected, {} injected{}\n",
        injected.audit.counts.duplicate_ids,
        expected,
        if injected.errors > 0 {
            " (lower bound: generators exhausted mid-phase)"
        } else {
            ""
        }
    ));
    if injected.audit.counts.duplicate_ids < expected {
        return Err(ParseError(format!(
            "audit false negative: {} duplicate IDs detected, {expected} injected",
            injected.audit.counts.duplicate_ids
        )));
    }
    out.push_str("validation:  ok (no audit false negatives)\n");
    Ok(out)
}

/// Options for `uuidp fleet`.
#[derive(Debug, Clone)]
pub struct FleetOpts {
    /// Algorithm spec (must be snapshot-capable for durability).
    pub algorithm: String,
    /// Universe width in bits.
    pub bits: u32,
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Tenants generating load (pinned to nodes).
    pub tenants: u64,
    /// Lease requests to route through the fleet.
    pub requests: u64,
    /// IDs per lease.
    pub count: u128,
    /// Cross-node placement (`uniform | skewed | hunter`).
    pub placement: String,
    /// Worker shards per node.
    pub shards: usize,
    /// Audit stripes (per node and for the global audit).
    pub audit_stripes: usize,
    /// Audit pipeline threads per node.
    pub audit_threads: usize,
    /// Master seed (shared by every node: tenant streams must not
    /// depend on which node serves them).
    pub seed: u64,
    /// Chaos mode: crash-restart a random node every K requests.
    pub kill_every: Option<u64>,
    /// Write-ahead reservation window per persist.
    pub reservation: u128,
    /// Durable state root; a per-run temp directory (cleaned up
    /// afterwards) when unset.
    pub state_dir: Option<String>,
    /// Wire protocol the router dials every node with (`v1 | v2`).
    pub protocol: String,
    /// Chaos spec: every node gets its own deterministic fault-injecting
    /// proxy derived from `--chaos-seed` (see `uuidp_netchaos::ChaosSpec`
    /// for the grammar). Composes with `--kill-every`.
    pub chaos: Option<String>,
    /// Seed for the per-node chaos fault schedules.
    pub chaos_seed: u64,
    /// Scrape every node's metric registry over the wire mid-run and
    /// at the end, asserting required families stay present and
    /// monotone per stable incarnation.
    pub scrape: bool,
}

impl FleetOpts {
    /// The CI smoke preset behind `uuidp fleet --trials-small`.
    pub fn trials_small(algorithm: &str) -> Self {
        FleetOpts {
            algorithm: algorithm.to_string(),
            bits: 48,
            nodes: 3,
            tenants: 6,
            requests: 600,
            count: 32,
            placement: "uniform".into(),
            shards: 2,
            audit_stripes: 8,
            audit_threads: 1,
            seed: 0xF1EE7,
            kill_every: None,
            reservation: 256,
            state_dir: None,
            protocol: "v1".into(),
            chaos: None,
            chaos_seed: 0,
            scrape: false,
        }
    }
}

/// Runs `uuidp fleet`: the requested multi-node scenario, then a
/// mandatory *cross-node twin* validation phase — two same-seed tenants
/// pinned to different nodes, invisible to every node-local audit, that
/// the router's global audit must count exactly. Both phases hard-fail
/// if a recovered node ever re-emits one of its own pre-crash IDs.
pub fn fleet(opts: &FleetOpts) -> Result<String, ParseError> {
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let kind = parse_algorithm_kind(&opts.algorithm, space)?;
    let placement = Placement::parse(&opts.placement).map_err(ParseError)?;
    let protocol = ProtoVersion::parse(&opts.protocol).map_err(ParseError)?;
    if opts.kill_every == Some(0) {
        return Err(ParseError(
            "--kill-every must be at least 1 (omit the flag to disable chaos)".into(),
        ));
    }
    // The ephemeral root must be unique per *invocation*, not just per
    // (pid, seed): concurrent runs in one process (e.g. the test
    // harness) would otherwise share and then delete each other's
    // node state mid-run.
    static FLEET_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let (state_root, ephemeral) = match &opts.state_dir {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!(
                "uuidp-fleet-{}-{:x}-{}",
                std::process::id(),
                opts.seed,
                FLEET_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            )),
            true,
        ),
    };
    let result = fleet_phases(opts, kind, space, placement, protocol, &state_root);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&state_root);
    }
    result
}

fn fleet_phases(
    opts: &FleetOpts,
    kind: uuidp_core::algorithms::AlgorithmKind,
    space: IdSpace,
    placement: Placement,
    protocol: ProtoVersion,
    state_root: &std::path::Path,
) -> Result<String, ParseError> {
    let mut service = ServiceConfig::new(kind, space);
    service.shards = opts.shards.max(1);
    service.audit_stripes = opts.audit_stripes.max(1);
    service.audit_threads = opts.audit_threads.max(1);
    service.master_seed = opts.seed;

    let run = |mut cfg: FleetConfig, tag: &str| -> Result<FleetReport, ParseError> {
        cfg.state_dir = state_root.join(tag);
        let report = run_fleet(cfg).map_err(|e| ParseError(format!("fleet {tag} phase: {e}")))?;
        // The crash-safety gate applies to every phase: a recovered
        // node's tenants must never repeat their own pre-crash IDs.
        if report.recovered_duplicate_ids > 0 {
            return Err(ParseError(format!(
                "recovered nodes re-emitted {} IDs (crash recovery is broken)",
                report.recovered_duplicate_ids
            )));
        }
        Ok(report)
    };

    let mut cfg = FleetConfig::new(service.clone(), opts.nodes.max(1), state_root);
    cfg.tenants = opts.tenants.max(1);
    cfg.requests = opts.requests;
    cfg.count = opts.count;
    cfg.placement = placement;
    cfg.kill_every = opts.kill_every;
    cfg.reservation = opts.reservation.max(1);
    cfg.audit_stripes = opts.audit_stripes.max(1);
    cfg.protocol = protocol;
    cfg.chaos = match &opts.chaos {
        None => None,
        Some(s) => Some(ChaosSpec::parse(s).map_err(|e| ParseError(format!("bad --chaos: {e}")))?),
    };
    cfg.chaos_seed = opts.chaos_seed;
    cfg.scrape = opts.scrape;
    let main = run(cfg.clone(), "main")?;
    let mut out = format!(
        "# fleet: {} over m = 2^{}, {} nodes, protocol {}{}{}\n\n{}",
        opts.algorithm,
        opts.bits,
        opts.nodes,
        protocol,
        match opts.kill_every {
            Some(k) => format!(" (chaos: kill every {k} requests)"),
            None => String::new(),
        },
        match &opts.chaos {
            Some(s) => format!(" [chaos `{s}` seed {:#x}]", opts.chaos_seed),
            None => String::new(),
        },
        main.render()
    );

    // Validation phase: tenants 0 and 1 share a seed. With ≥ 2 nodes
    // they live on *different* nodes, so only the global audit can see
    // their duplicates. Runs without chaos so the twin streams stay
    // aligned and the expected count is exact.
    let mut check = cfg;
    check.placement = Placement::Uniform;
    check.kill_every = None;
    check.chaos = None;
    check.tenants = check.tenants.max(2);
    let per_tenant = (check.requests.clamp(16, 512) / check.tenants).max(1);
    check.requests = per_tenant * check.tenants;
    check.service.seed_alias = Some((0, 1));
    let injected = run(check, "validate")?;
    let expected = if injected.errors == 0 {
        per_tenant as u128 * opts.count
    } else {
        1
    };
    out.push_str(&format!(
        "\n# global audit validation (same-seed twins across nodes)\n\n\
         duplicates:  {} detected by the global audit, {} injected{}\n\
         node-local:  {} (cross-node duplicates are invisible to node audits)\n",
        injected.cross_tenant_duplicate_ids,
        expected,
        if injected.errors > 0 {
            " (lower bound: generators exhausted mid-phase)"
        } else {
            ""
        },
        injected.merged_nodes.counts.duplicate_ids,
    ));
    if injected.cross_tenant_duplicate_ids < expected {
        return Err(ParseError(format!(
            "global audit false negative: {} duplicate IDs detected, {expected} injected",
            injected.cross_tenant_duplicate_ids
        )));
    }
    out.push_str("validation:  ok (cross-node twins detected, zero recovered duplicates)\n");
    Ok(out)
}

/// Options for `uuidp top`.
#[derive(Debug, Clone)]
pub struct TopOpts {
    /// Comma-separated node addresses to watch (`HOST:PORT[,HOST:PORT...]`).
    pub connect: String,
    /// Universe width in bits (must match the servers').
    pub bits: u32,
    /// Wire protocol for the metric fetches (`v1 | v2`).
    pub protocol: String,
    /// Milliseconds between polls (one time-series window per poll).
    pub interval_ms: u64,
    /// Take exactly two polls one interval apart and emit one
    /// machine-readable JSON snapshot instead of the live dashboard.
    pub once: bool,
    /// Ring capacity: polls of history each node's series retains.
    pub windows: usize,
}

/// One watched node: a persistent metrics connection (redialed after
/// any failure), its windowed series, and its burn-rate evaluator.
struct TopNode {
    addr: std::net::SocketAddr,
    label: String,
    client: Option<uuidp_service::net::DialedClient>,
    series: uuidp_obs::TimeSeries,
    alerts: uuidp_obs::BurnRateAlerts,
    last: Option<uuidp_obs::Snapshot>,
    healthy: bool,
    scrape_errors: u64,
}

impl TopNode {
    fn new(addr: std::net::SocketAddr, windows: usize) -> TopNode {
        TopNode {
            addr,
            label: addr.to_string(),
            client: None,
            series: uuidp_obs::TimeSeries::new(1, windows.max(2)),
            alerts: uuidp_obs::BurnRateAlerts::new(vec![uuidp_obs::AlertRule::availability()]),
            last: None,
            healthy: false,
            scrape_errors: 0,
        }
    }

    /// One poll: scrape, ingest at `tick`, feed the alert evaluator
    /// with the window's `(lease errors, leases)` delta. A failed
    /// scrape drops the connection (redialed next tick), marks the
    /// node down, and counts — it never kills the dashboard.
    fn poll(&mut self, tick: u64, space: IdSpace, proto: ProtoVersion) {
        let text = (|| -> std::io::Result<String> {
            if self.client.is_none() {
                self.client = Some(uuidp_service::net::DialedClient::connect_with(
                    self.addr,
                    space,
                    proto,
                    Some(std::time::Duration::from_secs(2)),
                )?);
            }
            self.client.as_mut().expect("dialed above").metrics()
        })();
        match text {
            Ok(text) => {
                let snap = uuidp_obs::Snapshot::parse_prometheus(&text);
                self.series.ingest(tick, &snap);
                let bad = self.window_counter(tick, "uuidp_lease_errors_total");
                let total = self.window_counter(tick, "uuidp_leases_total");
                self.alerts.observe(bad, total);
                self.last = Some(snap);
                self.healthy = true;
            }
            Err(_) => {
                self.client = None;
                self.healthy = false;
                self.scrape_errors += 1;
            }
        }
    }

    fn window_counter(&self, tick: u64, family: &str) -> u64 {
        self.series.window_at(tick).map_or(0, |w| w.counter(family))
    }

    fn cumulative(&self, family: &str) -> f64 {
        self.last
            .as_ref()
            .and_then(|s| s.scalar(family))
            .unwrap_or(0.0)
    }

    /// The display row, with per-tick rates scaled to per-second.
    fn stats(&self, per_sec: f64) -> TopRow {
        let q = |q: f64| {
            self.series
                .quantile_ns("uuidp_lease_latency_ns", 8, q)
                .unwrap_or(0.0)
        };
        TopRow {
            label: self.label.clone(),
            healthy: self.healthy,
            ids_per_sec: self.series.rate("uuidp_ids_issued_total", 1) * per_sec,
            p50_ns: q(0.50),
            p99_ns: q(0.99),
            p999_ns: q(0.999),
            audit_backlog: (self.cumulative("uuidp_leases_total")
                - self.cumulative("uuidp_audit_records_total")) as i64,
            wakeups_per_sec: self.series.rate("uuidp_net_wakeups_total", 1) * per_sec,
            alerts: self.alerts.firing_rules(),
            spark: self.series.sparkline("uuidp_ids_issued_total", 32),
            scrape_errors: self.scrape_errors,
        }
    }
}

/// One rendered dashboard row (pure data, so the renderers are unit
/// testable without sockets).
struct TopRow {
    label: String,
    healthy: bool,
    ids_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
    p999_ns: f64,
    audit_backlog: i64,
    wakeups_per_sec: f64,
    alerts: Vec<&'static str>,
    spark: String,
    scrape_errors: u64,
}

/// The live dashboard frame: plain ANSI (clear + home is prepended by
/// the loop, not baked in here), fixed columns, one sparkline of
/// issue-rate history per node.
fn render_top_frame(rows: &[TopRow], tick: u64, interval_ms: u64) -> String {
    let mut out = format!(
        "uuidp top — {} node{}, {} ms interval, tick {}  (q + Enter quits)\n\n\
         {:<22} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}  {:<6} alerts\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" },
        interval_ms,
        tick,
        "node",
        "ids/s",
        "p50 us",
        "p99 us",
        "p999 us",
        "backlog",
        "wakeups/s",
        "health",
    );
    for row in rows {
        let alerts = if row.alerts.is_empty() {
            "none".to_string()
        } else {
            row.alerts.join(",")
        };
        let _ = writeln!(
            out,
            "{:<22} {:>10.0} {:>9.1} {:>9.1} {:>9.1} {:>9} {:>10.0}  {:<6} {}",
            row.label,
            row.ids_per_sec,
            row.p50_ns / 1e3,
            row.p99_ns / 1e3,
            row.p999_ns / 1e3,
            row.audit_backlog,
            row.wakeups_per_sec,
            if row.healthy { "up" } else { "DOWN" },
            alerts,
        );
        let _ = writeln!(out, "{:<22} ids/s {}", "", row.spark);
    }
    out
}

/// The `--once` snapshot: one JSON object per run, hand-assembled (the
/// repo takes no serialization dependency) and stable enough for CI to
/// grep `"ids_per_sec":`.
fn render_top_json(rows: &[TopRow], interval_ms: u64) -> String {
    let mut out = format!("{{\"interval_ms\":{interval_ms},\"nodes\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let alerts: Vec<String> = row.alerts.iter().map(|a| format!("\"{a}\"")).collect();
        let _ = write!(
            out,
            "{{\"addr\":\"{}\",\"healthy\":{},\"ids_per_sec\":{:.3},\
             \"p50_ns\":{:.0},\"p99_ns\":{:.0},\"p999_ns\":{:.0},\
             \"audit_backlog\":{},\"wakeups_per_sec\":{:.3},\
             \"scrape_errors\":{},\"alerts\":[{}]}}",
            row.label,
            row.healthy,
            row.ids_per_sec,
            row.p50_ns,
            row.p99_ns,
            row.p999_ns,
            row.audit_backlog,
            row.wakeups_per_sec,
            row.scrape_errors,
            alerts.join(","),
        );
    }
    out.push_str("]}\n");
    out
}

/// Runs `uuidp top`: a live plain-ANSI dashboard over one or more
/// node addresses — per-node issue rate, windowed latency quantiles,
/// audit backlog, reactor wakeups, health, firing burn-rate alerts,
/// and an issue-rate sparkline — polling every `--interval-ms`. With
/// `--once`, takes two polls one interval apart and returns a single
/// machine-readable JSON snapshot (the CI smoke path). Works against
/// `uuidp serve --listen --metrics`, `uuidp stress --remote --scrape`
/// servers, and fleet nodes alike: anything that answers `metrics`.
pub fn top(opts: &TopOpts) -> Result<String, ParseError> {
    let space =
        IdSpace::with_bits(opts.bits).map_err(|e| ParseError(format!("bad --bits: {e}")))?;
    let proto = ProtoVersion::parse(&opts.protocol).map_err(ParseError)?;
    let interval_ms = opts.interval_ms.max(10);
    let per_sec = 1000.0 / interval_ms as f64;
    let mut nodes: Vec<TopNode> = Vec::new();
    for part in opts.connect.split(',').filter(|s| !s.trim().is_empty()) {
        let addr = part
            .trim()
            .parse()
            .map_err(|e| ParseError(format!("bad --connect address `{part}`: {e}")))?;
        nodes.push(TopNode::new(addr, opts.windows.max(2)));
    }
    if nodes.is_empty() {
        return Err(ParseError("--connect needs at least one HOST:PORT".into()));
    }
    if opts.once {
        // Two polls bracket one interval, so every rate has a delta.
        for tick in 0..2u64 {
            for node in &mut nodes {
                node.poll(tick, space, proto);
            }
            if tick == 0 {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        let rows: Vec<TopRow> = nodes.iter().map(|n| n.stats(per_sec)).collect();
        return Ok(render_top_json(&rows, interval_ms));
    }
    // Live mode: a line-buffered stdin reader feeds the quit channel
    // (plain `q` + Enter — no raw-mode dependency), while the main
    // thread polls, clears, and redraws.
    let (quit_tx, quit_rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF: fall back to Ctrl-C
                Ok(_) if line.trim() == "q" => {
                    let _ = quit_tx.send(());
                    break;
                }
                Ok(_) => {}
            }
        }
    });
    let mut out = std::io::stdout();
    let mut tick = 0u64;
    loop {
        for node in &mut nodes {
            node.poll(tick, space, proto);
        }
        let rows: Vec<TopRow> = nodes.iter().map(|n| n.stats(per_sec)).collect();
        let frame = render_top_frame(&rows, tick, interval_ms);
        let _ = std::io::Write::write_all(&mut out, format!("\x1b[2J\x1b[H{frame}").as_bytes());
        let _ = std::io::Write::flush(&mut out);
        match quit_rx.recv_timeout(std::time::Duration::from_millis(interval_ms)) {
            Ok(()) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Reader died (EOF); keep running on the timer alone.
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        tick += 1;
    }
    Ok(String::new())
}

fn entropy_seed() -> u64 {
    // OS entropy via rand, folded through SplitMix64. Keeps the CLI's
    // default mode non-deterministic while --seed stays reproducible.
    let mut bytes = [0u8; 8];
    rand::rng().fill_bytes(&mut bytes);
    SplitMix64::new(u64::from_le_bytes(bytes)).next_value()
}

// Re-export used by `generate`'s entropy path.
use rand::RngCore as _;

/// Quick self-check used by `uuidp doctor`: mints a few IDs with every
/// algorithm and verifies uniqueness within each instance.
pub fn doctor() -> Result<String, ParseError> {
    let space = IdSpace::with_bits(32).expect("32-bit space");
    let mut report = String::from("self-check over m = 2^32:\n");
    for spec in ["random", "cluster", "bins:1024", "cluster*", "bins*"] {
        let alg = parse_algorithm(spec, space)?;
        let mut gen = alg.spawn(0xD0C);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = gen
                .next_id()
                .map_err(|e| ParseError(format!("{spec}: {e}")))?;
            if !seen.insert(id) {
                return Err(ParseError(format!("{spec}: duplicate ID {id}")));
            }
        }
        report.push_str(&format!(
            "  {:<12} ok (1000 IDs, all distinct)\n",
            alg.name()
        ));
    }
    // A tiny statistical check: two Cluster instances on a small universe
    // should collide at roughly the predicted rate.
    let small = IdSpace::new(1 << 16).expect("small space");
    let alg = parse_algorithm("cluster", small)?;
    let profile = DemandProfile::uniform(2, 64);
    let (est, _) = estimate_oblivious(alg.as_ref(), &profile, TrialConfig::new(20_000, 0xD0C));
    let exact = (64 + 64 - 1) as f64 / (1u128 << 16) as f64;
    if (est.p_hat - exact).abs() / exact > 0.5 {
        return Err(ParseError(format!(
            "statistical self-check failed: measured {} vs exact {exact}",
            est.p_hat
        )));
    }
    report.push_str("  statistics   ok (cluster pair probability matches Theorem 1)\n");
    Ok(report)
}

/// A lightweight RNG sanity utility for `doctor` exposure in tests.
pub fn rng_smoke() -> bool {
    let mut rng = Xoshiro256pp::new(1);
    let a = rng.next_value();
    let b = rng.next_value();
    a != b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_mints_the_requested_count() {
        let opts = GenerateOpts {
            algorithm: "cluster".into(),
            bits: 64,
            count: 5,
            seed: Some(1),
            format: IdFormat::Hex,
        };
        let out = generate(&opts).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.starts_with("0x")));
        // Reproducible with the same seed.
        assert_eq!(out, generate(&opts).unwrap());
    }

    #[test]
    fn generate_without_seed_differs_between_calls() {
        let opts = GenerateOpts {
            algorithm: "random".into(),
            bits: 64,
            count: 3,
            seed: None,
            format: IdFormat::Dec,
        };
        let a = generate(&opts).unwrap();
        let b = generate(&opts).unwrap();
        assert_ne!(a, b, "entropy-seeded runs should differ");
    }

    #[test]
    fn generate_reports_exhaustion() {
        let opts = GenerateOpts {
            algorithm: "random".into(),
            bits: 2,
            count: 10,
            seed: Some(1),
            format: IdFormat::Dec,
        };
        let err = generate(&opts).unwrap_err();
        assert!(err.0.contains("exhausted after 4"));
    }

    #[test]
    fn simulate_reports_measurement_and_prediction() {
        let opts = SimulateOpts {
            algorithm: "cluster".into(),
            bits: 16,
            instances: 4,
            per_instance: 64,
            trials: 5000,
            seed: 7,
        };
        let out = simulate(&opts).unwrap();
        assert!(out.contains("measured"));
        assert!(out.contains("prediction"));
        assert!(out.contains("Thm. 1"));
    }

    #[test]
    fn plan_produces_the_headline_numbers() {
        let opts = PlanOpts {
            scheme: "cluster".into(),
            budget: 1e-6,
            instances: 1024,
            bits: 128,
        };
        let out = plan(&opts).unwrap();
        assert!(out.contains("safe demand: ~2^98")); // 128 − 20 − 10
        assert!(plan(&PlanOpts {
            scheme: "bogus".into(),
            ..opts
        })
        .is_err());
    }

    #[test]
    fn diagram_renders_the_paper_figure_shape() {
        let opts = DiagramOpts {
            algorithm: "cluster".into(),
            m: 20,
            requests: 8,
            seed: None,
        };
        let out = diagram(&opts).unwrap();
        assert!(out.starts_with("cluster (m = 20, 8 requests)"));
        let marks = out
            .lines()
            .skip(1)
            .flat_map(|l| l.split_whitespace())
            .filter(|c| *c != "·")
            .count();
        assert_eq!(marks, 8);
    }

    #[test]
    fn doctor_passes() {
        let report = doctor().unwrap();
        assert!(report.contains("statistics   ok"));
        assert!(rng_smoke());
    }

    fn serve_opts(algorithm: &str, bits: u32) -> ServeOpts {
        ServeOpts {
            algorithm: algorithm.into(),
            bits,
            shards: 2,
            audit_stripes: 8,
            audit_threads: 1,
            seed: 9,
            listen: None,
            protocol: None,
            metrics: false,
            net_backend: "auto".into(),
        }
    }

    #[test]
    fn serve_leases_over_the_line_protocol() {
        let opts = serve_opts("cluster", 40);
        let script = b"0 5\n7 3\nreset 0\ndrain\n0 4\nbogus line here\nquit\n";
        let mut input = &script[..];
        let mut output = Vec::new();
        let summary = serve(&opts, &mut input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert_eq!(text.matches("lease tenant=0").count(), 2);
        assert!(text.contains("lease tenant=7 granted=3"));
        assert!(text.contains("reset tenant=0"));
        assert!(text.contains("drained"));
        assert!(text.contains("error:"));
        assert!(summary.contains("served:      3 leases, 12 IDs"));
        // Cluster leases are single arcs: `start+len`.
        assert!(text.contains("+5"), "arc rendering: {text}");
    }

    /// A writer that, on seeing the `listening on ADDR` announcement,
    /// spawns a client thread to drive the TCP front-end and shut it
    /// down — which is what unblocks the `serve` call under test.
    struct ListenDriver {
        buf: Vec<u8>,
        client: Option<std::thread::JoinHandle<u128>>,
    }

    impl std::io::Write for ListenDriver {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            if self.client.is_none() {
                if let Some(rest) = std::str::from_utf8(&self.buf)
                    .ok()
                    .and_then(|s| s.strip_prefix("listening on "))
                {
                    if let Some(addr) = rest.strip_suffix('\n') {
                        let addr: std::net::SocketAddr = addr.parse().expect("announced addr");
                        self.client = Some(std::thread::spawn(move || {
                            let space = IdSpace::with_bits(40).unwrap();
                            let mut client =
                                uuidp_service::net::RemoteClient::connect(addr, space).unwrap();
                            let granted = client.lease(5, 123).unwrap().granted;
                            client.shutdown().unwrap();
                            granted
                        }));
                    }
                }
            }
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_listen_fronts_the_service_over_tcp() {
        let opts = ServeOpts {
            listen: Some("127.0.0.1:0".into()),
            audit_threads: 2,
            ..serve_opts("cluster", 40)
        };
        let mut input = &b""[..];
        let mut driver = ListenDriver {
            buf: Vec::new(),
            client: None,
        };
        let summary = serve(&opts, &mut input, &mut driver).unwrap();
        let granted = driver
            .client
            .take()
            .expect("listen announcement never seen")
            .join()
            .unwrap();
        assert_eq!(granted, 123);
        assert!(
            summary.contains("served:      1 leases, 123 IDs"),
            "{summary}"
        );
    }

    #[test]
    fn stress_smoke_preset_validates_the_audit() {
        let opts = StressOpts {
            requests: 200,
            ..StressOpts::trials_small("bins*")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("throughput"));
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn stress_validation_survives_generator_exhaustion() {
        // Tiny universe, oversized leases: the validation twins exhaust
        // mid-phase. The gate must fall back to a detection lower bound
        // instead of reporting a spurious false negative.
        // 64 validation leases × 4096 IDs per twin exceed m = 2^16.
        let opts = StressOpts {
            bits: 16,
            count: 4096,
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("lower bound"), "exhaustion fallback: {out}");
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn stress_remote_replays_over_loopback_tcp() {
        // The same preset over the socket transport: the validation
        // phase (injected twins) must still catch every duplicate, and
        // the header must say which transport ran.
        let opts = StressOpts {
            requests: 120,
            remote: true,
            audit_threads: 2,
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("loopback TCP transport"), "{out}");
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn stress_remote_pooled_workers_validate_too() {
        let opts = StressOpts {
            requests: 120,
            remote: true,
            remote_workers: 3,
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("pooled connections"), "{out}");
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn fleet_smoke_preset_validates_the_global_audit() {
        let opts = FleetOpts {
            requests: 120,
            ..FleetOpts::trials_small("cluster")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("nodes:        3"), "{out}");
        assert!(out.contains("cross-node duplicates are invisible"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn fleet_chaos_mode_restarts_and_stays_duplicate_free() {
        let opts = FleetOpts {
            requests: 90,
            kill_every: Some(15),
            reservation: 64,
            ..FleetOpts::trials_small("cluster*")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("chaos: kill every 15"), "{out}");
        assert!(
            !out.contains("(0 crash-restarts)"),
            "chaos must restart: {out}"
        );
        assert!(out.contains("0 from recovered nodes"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn fleet_rejects_unknown_placement() {
        let opts = FleetOpts {
            placement: "mesh".into(),
            ..FleetOpts::trials_small("cluster")
        };
        assert!(fleet(&opts).is_err());
    }

    #[test]
    fn fleet_rejects_zero_kill_interval() {
        // kill-every 0 would silently disable chaos while claiming it.
        let opts = FleetOpts {
            kill_every: Some(0),
            ..FleetOpts::trials_small("cluster")
        };
        let err = fleet(&opts).unwrap_err();
        assert!(err.0.contains("--kill-every"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_pool_without_remote() {
        let opts = StressOpts {
            remote_workers: 4,
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--remote"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_unknown_mix() {
        let opts = StressOpts {
            mix: "tsunami".into(),
            ..StressOpts::trials_small("cluster")
        };
        assert!(stress(&opts).is_err());
    }

    #[test]
    fn stress_remote_protocol_v2_replays_over_the_mux() {
        // The v2 smoke: the framed transport with a pooled client side
        // (all workers multiplexing one connection) still validates the
        // injected-twin audit phase.
        let opts = StressOpts {
            requests: 120,
            remote: true,
            remote_workers: 3,
            protocol: "v2".into(),
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("protocol v2"), "{out}");
        assert!(out.contains("multiplexing one connection"), "{out}");
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn stress_rejects_zero_remote_workers() {
        let opts = StressOpts {
            remote: true,
            remote_workers: 0,
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--remote-workers"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_v2_without_remote() {
        let opts = StressOpts {
            protocol: "v2".into(),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--protocol v2"), "{}", err.0);
        assert!(err.0.contains("--remote"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_chaos_without_remote() {
        let opts = StressOpts {
            chaos: Some("small".into()),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--chaos"), "{}", err.0);
        assert!(err.0.contains("--remote"), "{}", err.0);
    }

    #[test]
    fn stress_and_fleet_reject_bad_chaos_specs() {
        let opts = StressOpts {
            remote: true,
            chaos: Some("tsunami".into()),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("bad --chaos"), "{}", err.0);
        let opts = FleetOpts {
            chaos: Some("drop:1001".into()),
            ..FleetOpts::trials_small("cluster")
        };
        let err = fleet(&opts).unwrap_err();
        assert!(err.0.contains("bad --chaos"), "{}", err.0);
    }

    #[test]
    fn stress_chaos_run_reports_slo_and_still_validates() {
        // The chaos phase degrades gracefully (SLO section, fault
        // counters); the validation twin phase then runs chaos-free so
        // the exact-count audit gate stays exact.
        let opts = StressOpts {
            requests: 150,
            remote: true,
            remote_workers: 2,
            protocol: "v2".into(),
            chaos: Some("small".into()),
            chaos_seed: 0xC405,
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("[chaos `"), "{out}");
        assert!(out.contains("slo:"), "{out}");
        assert!(out.contains("schedule fingerprint"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn fleet_chaos_proxies_compose_with_kill_every_and_stay_duplicate_free() {
        let opts = FleetOpts {
            requests: 90,
            kill_every: Some(30),
            reservation: 64,
            protocol: "v2".into(),
            chaos: Some("small".into()),
            chaos_seed: 0xF417,
            ..FleetOpts::trials_small("cluster*")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("[chaos `"), "{out}");
        assert!(out.contains("slo:"), "{out}");
        assert!(out.contains("0 from recovered nodes"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn stress_and_fleet_reject_unknown_protocols() {
        let opts = StressOpts {
            remote: true,
            protocol: "v3".into(),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("unknown protocol `v3`"), "{}", err.0);
        let opts = FleetOpts {
            protocol: "binary".into(),
            ..FleetOpts::trials_small("cluster")
        };
        let err = fleet(&opts).unwrap_err();
        assert!(err.0.contains("unknown protocol `binary`"), "{}", err.0);
    }

    #[test]
    fn serve_rejects_protocol_without_listen() {
        let opts = ServeOpts {
            protocol: Some("v2".into()),
            ..serve_opts("cluster", 32)
        };
        let mut input = &b""[..];
        let mut output = Vec::new();
        let err = serve(&opts, &mut input, &mut output).unwrap_err();
        assert!(err.0.contains("--listen"), "{}", err.0);
    }

    #[test]
    fn serve_rejects_metrics_without_listen() {
        let opts = ServeOpts {
            metrics: true,
            ..serve_opts("cluster", 32)
        };
        let mut input = &b""[..];
        let mut output = Vec::new();
        let err = serve(&opts, &mut input, &mut output).unwrap_err();
        assert!(err.0.contains("--metrics"), "{}", err.0);
        assert!(err.0.contains("--listen"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_scrape_without_remote() {
        let opts = StressOpts {
            scrape: true,
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--scrape"), "{}", err.0);
        assert!(err.0.contains("--remote"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_net_backend_without_remote() {
        let opts = StressOpts {
            net_backend: "poll".into(),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("--net-backend"), "{}", err.0);
        assert!(err.0.contains("--remote"), "{}", err.0);
    }

    #[test]
    fn stress_rejects_unknown_net_backend() {
        let opts = StressOpts {
            remote: true,
            net_backend: "kqueue".into(),
            ..StressOpts::trials_small("cluster")
        };
        let err = stress(&opts).unwrap_err();
        assert!(err.0.contains("kqueue"), "{}", err.0);
    }

    #[test]
    fn stress_remote_runs_on_the_poll_backend() {
        let opts = StressOpts {
            requests: 200,
            remote: true,
            protocol: "v2".into(),
            net_backend: "poll".into(),
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn stress_remote_scrape_reports_live_scrapes() {
        let opts = StressOpts {
            requests: 120,
            remote: true,
            remote_workers: 2,
            scrape: true,
            ..StressOpts::trials_small("cluster")
        };
        let out = stress(&opts).unwrap();
        assert!(out.contains("live scrapes"), "{out}");
        assert!(out.contains("validation:  ok"));
    }

    #[test]
    fn fleet_scrape_reports_the_metrics_line() {
        let opts = FleetOpts {
            requests: 120,
            scrape: true,
            ..FleetOpts::trials_small("cluster")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("nodes scraped"), "{out}");
        assert!(out.contains("series:"), "{out}");
        assert!(out.contains("cluster fingerprint"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn top_once_snapshots_a_live_server_as_json() {
        use uuidp_core::algorithms::AlgorithmKind;
        let space = IdSpace::with_bits(44).unwrap();
        let config = ServiceConfig::new(AlgorithmKind::ClusterStar, space);
        let server = TcpServer::bind("127.0.0.1:0", config).unwrap();
        let mut client =
            uuidp_service::net::DialedClient::connect(server.local_addr(), space, ProtoVersion::V2)
                .unwrap();
        for tenant in 0..4 {
            client.lease(tenant, 32).unwrap();
        }
        let opts = TopOpts {
            connect: server.local_addr().to_string(),
            bits: 44,
            protocol: "v2".into(),
            interval_ms: 20,
            once: true,
            windows: 8,
        };
        let out = top(&opts).unwrap();
        assert!(out.contains("\"ids_per_sec\":"), "{out}");
        assert!(out.contains("\"healthy\":true"), "{out}");
        assert!(out.contains("\"p99_ns\":"), "{out}");
        assert!(out.contains("\"alerts\":[]"), "{out}");
        client.shutdown().unwrap();
        let _ = server.join();
    }

    #[test]
    fn top_once_marks_a_dead_address_down_instead_of_failing() {
        // A node that never answers degrades to DOWN with scrape errors
        // counted — the dashboard outlives the fleet it watches.
        let opts = TopOpts {
            connect: "127.0.0.1:1".into(),
            bits: 44,
            protocol: "v2".into(),
            interval_ms: 10,
            once: true,
            windows: 4,
        };
        let out = top(&opts).unwrap();
        assert!(out.contains("\"healthy\":false"), "{out}");
        assert!(out.contains("\"scrape_errors\":2"), "{out}");
    }

    #[test]
    fn top_frame_renders_columns_health_and_sparkline() {
        let rows = vec![
            TopRow {
                label: "127.0.0.1:7821".into(),
                healthy: true,
                ids_per_sec: 1234.5,
                p50_ns: 12_300.0,
                p99_ns: 45_600.0,
                p999_ns: 78_900.0,
                audit_backlog: 12,
                wakeups_per_sec: 345.0,
                alerts: vec!["availability-burn"],
                spark: "▁▃█".into(),
                scrape_errors: 0,
            },
            TopRow {
                label: "127.0.0.1:7822".into(),
                healthy: false,
                ids_per_sec: 0.0,
                p50_ns: 0.0,
                p99_ns: 0.0,
                p999_ns: 0.0,
                audit_backlog: 0,
                wakeups_per_sec: 0.0,
                alerts: Vec::new(),
                spark: String::new(),
                scrape_errors: 3,
            },
        ];
        let frame = render_top_frame(&rows, 7, 250);
        assert!(frame.contains("q + Enter quits"), "{frame}");
        assert!(frame.contains("availability-burn"), "{frame}");
        assert!(frame.contains("DOWN"), "{frame}");
        assert!(frame.contains("▁▃█"), "{frame}");
        assert!(frame.contains("tick 7"), "{frame}");
        let json = render_top_json(&rows, 250);
        assert!(
            json.contains("\"alerts\":[\"availability-burn\"]"),
            "{json}"
        );
        assert!(json.ends_with("]}\n"), "{json}");
    }

    #[test]
    fn top_rejects_empty_and_malformed_connect_lists() {
        let mut opts = TopOpts {
            connect: " , ".into(),
            bits: 44,
            protocol: "v2".into(),
            interval_ms: 10,
            once: true,
            windows: 4,
        };
        assert!(top(&opts).is_err());
        opts.connect = "not-an-addr".into();
        assert!(top(&opts).is_err());
    }

    #[test]
    fn fleet_smoke_over_protocol_v2_validates_the_global_audit() {
        let opts = FleetOpts {
            requests: 120,
            protocol: "v2".into(),
            ..FleetOpts::trials_small("cluster")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("protocol v2"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }

    #[test]
    fn fleet_chaos_over_protocol_v2_stays_duplicate_free() {
        let opts = FleetOpts {
            requests: 90,
            kill_every: Some(15),
            reservation: 64,
            protocol: "v2".into(),
            ..FleetOpts::trials_small("cluster*")
        };
        let out = fleet(&opts).unwrap();
        assert!(out.contains("chaos: kill every 15"), "{out}");
        assert!(
            !out.contains("(0 crash-restarts)"),
            "chaos must restart: {out}"
        );
        assert!(out.contains("0 from recovered nodes"), "{out}");
        assert!(out.contains("validation:  ok"), "{out}");
    }
}
