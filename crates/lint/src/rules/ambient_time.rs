//! `ambient-time`: outside an explicit whitelist, no module may read
//! a wall/monotonic clock or OS randomness directly.
//!
//! The repo's determinism contract — same seed, bit-identical audit
//! totals, fingerprints, and alert sequences — survives only because
//! time enters the system at named places: `core::clock` (the one
//! shared monotonic epoch), the bench harness, and the CLI edge.
//! Everything else must take timestamps as arguments or go through
//! `uuidp_core::clock::monotonic_ns`, so a wall-clock dependence can
//! never silently creep into a fingerprinted path.

use crate::diag::{Diagnostic, Rule};
use crate::source::RustFile;

/// `Type::now`-style sources: `<ident>::now`.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Identifiers that are ambient-entropy sources wherever they appear.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
    "UNIX_EPOCH",
];

/// Runs the rule over one non-whitelisted file.
pub fn check(file: &RustFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        if CLOCK_TYPES.contains(&t.text.as_str()) && file.matches(i + 1, &[":", ":", "now"]) {
            out.push(diag(
                file,
                t.line,
                format!("`{}::now()` outside the ambient-time whitelist", t.text),
                "stamp with uuidp_core::clock::monotonic_ns() or take the time as an argument"
                    .into(),
            ));
        } else if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(diag(
                file,
                t.line,
                format!("`{}` is an OS entropy source", t.text),
                "derive randomness from the run's seed (Xoshiro256pp) instead".into(),
            ));
        }
    }
    out
}

fn diag(file: &RustFile, line: u32, message: String, hint: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        rule: Rule::AmbientTime,
        message,
        hint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&RustFile::parse("crates/service/src/service.rs", src))
    }

    #[test]
    fn clock_reads_fire_outside_tests() {
        let d = run("fn f() { let t = Instant::now(); }");
        assert_eq!(d.len(), 1);
        let d = run("fn f() { let t = std::time::SystemTime::now(); }");
        assert_eq!(d.len(), 1);
        let d = run("#[test]\nfn t() { let t = Instant::now(); }");
        assert!(d.is_empty());
    }

    #[test]
    fn entropy_sources_fire() {
        let d = run("fn f() { let mut r = thread_rng(); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn monotonic_ns_is_fine() {
        let d = run("fn f() { let t = uuidp_core::clock::monotonic_ns(); }");
        assert!(d.is_empty());
    }
}
