//! `lock-blocking` and `lock-cycle`: the no-blocking-while-locked
//! discipline, statically.
//!
//! The exact PR 8 bug class — a reply path that spin-slept holding a
//! connection lock — motivates the first half: while a lock guard is
//! live (a `let` binding of `.lock()` / empty-arg `.read()` /
//! `.write()`, or such a call chained inside one statement), no
//! blocking call (`send`/`recv`/`write_all`/`sleep`/`wait`/…) may
//! run. Guards end at `drop(guard)`, at the end of their scope, or —
//! for unnamed temporaries — at the end of their statement.
//!
//! The second half records every *nested* acquisition (`B` acquired
//! while `A` is held) as an edge `A -> B` keyed by the receiver path,
//! crate-qualified. After the whole workspace is scanned, the analyzer
//! runs SCC cycle detection over the union graph: any strongly
//! connected component is an ordering violation that could deadlock,
//! reported with both acquisition sites named.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::RustFile;

/// Methods that acquire a guard. `read`/`write` only count with empty
/// argument lists — `RwLock::read()` takes none, while `io::Read::read`
/// and `io::Write::write` always take a buffer.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Calls that can block the thread.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "flush",
    "wait",
    "wait_timeout",
    "wait_while",
    "join",
    "sleep",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "read_line",
];

/// This workspace's own blocking wrappers, called as free functions
/// (`write_frame(&mut *w, ..)`), which a method-only list would see
/// straight through.
const BLOCKING_WRAPPERS: &[&str] = &["write_frame", "read_frame", "pool_barrier"];

/// One live guard.
#[derive(Debug)]
struct Guard {
    /// The binding name, when the acquisition was `let`-bound.
    name: Option<String>,
    /// Receiver path of the lock (`self.inner.writer`), or `<expr>`.
    lock_path: String,
    /// Line of the acquisition.
    line: u32,
    /// Brace depth the guard lives at.
    depth: i32,
    /// Unnamed temporary: dies at the end of its statement.
    temp: bool,
}

/// What one file contributes: findings plus lock-order edges
/// (`from_path`, `to_path`, `site`).
#[derive(Debug, Default)]
pub struct LockScan {
    /// `lock-blocking` findings.
    pub diags: Vec<Diagnostic>,
    /// Nested-acquisition edges for the workspace-wide order graph.
    pub edges: Vec<(String, String, String)>,
}

/// Scans one file. `crate_name` qualifies lock identities so paths
/// that happen to collide across crates do not alias in the graph.
pub fn check(file: &RustFile, crate_name: &str) -> LockScan {
    let mut scan = LockScan::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // A `let` whose initializer we are still inside: (name, depth).
    let mut pending_let: Option<(String, i32)> = None;
    let n = file.tokens.len();
    for i in 0..n {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        match t.kind {
            TokenKind::Punct if t.text == "{" => depth += 1,
            TokenKind::Punct if t.text == "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                if pending_let.as_ref().is_some_and(|(_, d)| *d > depth) {
                    pending_let = None;
                }
            }
            TokenKind::Punct if t.text == ";" => {
                if pending_let.as_ref().is_some_and(|(_, d)| *d == depth) {
                    pending_let = None;
                }
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            TokenKind::Ident if t.text == "let" => {
                // `let x = ...` / `let mut x = ...` / `let Ok(x) = ...`
                let mut j = i + 1;
                while file.tok(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                let name = match file.tok(j) {
                    Some(t)
                        if matches!(t.text.as_str(), "Ok" | "Some" | "Err")
                            && file.tok(j + 1).is_some_and(|p| p.is_punct('(')) =>
                    {
                        file.tok(j + 2).map(|t| t.text.clone())
                    }
                    Some(t) if t.kind == TokenKind::Ident => Some(t.text.clone()),
                    _ => None,
                };
                if let Some(name) = name {
                    pending_let = Some((name, depth));
                }
            }
            TokenKind::Ident
                if t.text == "drop"
                    && file.tok(i + 1).is_some_and(|t| t.is_punct('('))
                    && file.tok(i + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let Some(victim) = file.tok(i + 2) {
                    let victim = victim.text.clone();
                    guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                }
            }
            TokenKind::Ident
                if ACQUIRE.contains(&t.text.as_str())
                    && i > 0
                    && file.tokens[i - 1].is_punct('.')
                    && file.tok(i + 1).is_some_and(|t| t.is_punct('('))
                    && file.tok(i + 2).is_some_and(|t| t.is_punct(')')) =>
            {
                let (lock_path, recv_start) = receiver_path(file, i - 1);
                // Nested acquisition: edge from the innermost live guard.
                if let Some(holder) = guards.last() {
                    let from = &holder.lock_path;
                    if from != "<expr>" && lock_path != "<expr>" {
                        scan.edges.push((
                            format!("{crate_name}::{from}"),
                            format!("{crate_name}::{lock_path}"),
                            format!("{}:{}", file.rel, t.line),
                        ));
                    }
                }
                // A `let` binding only holds the guard when the guard
                // itself is what gets bound: `let v = *m.lock()` binds
                // a deref copy and `let n = m.lock().len()` binds a
                // chained result — in both, the guard is a temporary
                // that dies at the end of the statement.
                let derefed = recv_start > 0
                    && file.tokens[recv_start - 1].kind == TokenKind::Punct
                    && file.tokens[recv_start - 1].text == "*";
                // `.expect("...")` / `.unwrap()` unwrap the poison
                // `LockResult` but still yield the guard; skip them
                // before judging whether the chain moves past it.
                let mut after = i + 3;
                while file.tok(after).is_some_and(|t| t.is_punct('.'))
                    && file
                        .tok(after + 1)
                        .is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
                    && file.tok(after + 2).is_some_and(|t| t.is_punct('('))
                {
                    let mut parens = 1;
                    after += 3;
                    while parens > 0 {
                        match file.tok(after) {
                            Some(t) if t.is_punct('(') => parens += 1,
                            Some(t) if t.is_punct(')') => parens -= 1,
                            Some(_) => {}
                            None => break,
                        }
                        after += 1;
                    }
                }
                let chained = file.tok(after).is_some_and(|t| t.is_punct('.'));
                let (name, temp) = match &pending_let {
                    Some((name, _)) if !derefed && !chained => (Some(name.clone()), false),
                    _ => (None, true),
                };
                guards.push(Guard {
                    name,
                    lock_path,
                    line: t.line,
                    depth,
                    temp,
                });
            }
            TokenKind::Ident
                if file.tok(i + 1).is_some_and(|t| t.is_punct('('))
                    && ((BLOCKING.contains(&t.text.as_str())
                        && i > 0
                        && (file.tokens[i - 1].is_punct('.')
                            || file.tokens[i - 1].is_punct(':')))
                        || (BLOCKING_WRAPPERS.contains(&t.text.as_str())
                            && (i == 0 || !file.tokens[i - 1].is_punct('.')))) =>
            {
                if let Some(g) = guards.first() {
                    let method = i > 0 && file.tokens[i - 1].is_punct('.');
                    scan.diags.push(Diagnostic {
                        file: file.rel.clone(),
                        line: t.line,
                        rule: Rule::LockBlocking,
                        message: format!(
                            "blocking call `{}{}()` while the `{}` guard (line {}) is live",
                            if method { "." } else { "" },
                            t.text,
                            g.lock_path,
                            g.line
                        ),
                        hint: "copy what you need out of the guard, drop it, then block".into(),
                    });
                }
            }
            _ => {}
        }
    }
    scan
}

/// Walks backwards from the `.` of `<recv>.lock()` collecting the
/// receiver path (`self.state.conns`) and the index of its first
/// token. Returns `<expr>` when the receiver is not a plain field
/// path (calls, indexing, casts).
fn receiver_path(file: &RustFile, dot: usize) -> (String, usize) {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // points at the `.` before the method name
    loop {
        if j == 0 {
            break;
        }
        let prev = &file.tokens[j - 1];
        match prev.kind {
            TokenKind::Ident => {
                parts.push(prev.text.clone());
                j -= 1;
                // Keep going only through `.` / `::` joiners.
                if j >= 1 && file.tokens[j - 1].is_punct('.') {
                    j -= 1;
                    continue;
                }
                if j >= 2 && file.tokens[j - 1].is_punct(':') && file.tokens[j - 2].is_punct(':') {
                    parts.push("::".into());
                    j -= 2;
                    continue;
                }
                break;
            }
            _ => {
                // `foo()[0].lock()` etc: not a nameable lock path.
                if parts.is_empty() {
                    return ("<expr>".into(), dot);
                }
                break;
            }
        }
    }
    if parts.is_empty() {
        return ("<expr>".into(), dot);
    }
    parts.reverse();
    let start = j;
    let mut out = String::new();
    for p in parts {
        if p == "::" {
            out.push_str("::");
        } else {
            if !out.is_empty() && !out.ends_with("::") {
                out.push('.');
            }
            out.push_str(&p);
        }
    }
    (out, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> LockScan {
        check(&RustFile::parse("crates/x/src/lib.rs", src), "x")
    }

    #[test]
    fn guard_live_across_send_fires() {
        let s = run("fn f(&self) { let g = self.state.lock(); self.tx.send(1); }");
        assert_eq!(s.diags.len(), 1);
        assert!(s.diags[0].message.contains("self.state"));
    }

    #[test]
    fn drop_and_scope_end_the_guard() {
        let s = run("fn f(&self) { let g = self.state.lock(); drop(g); self.tx.send(1); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
        let s = run("fn f(&self) { { let g = self.state.lock(); } self.tx.send(1); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
    }

    #[test]
    fn chained_temporary_counts_within_its_statement() {
        let s = run("fn f(&self) { self.conn.lock().write_all(buf); }");
        assert_eq!(s.diags.len(), 1);
        // ...but not past the semicolon.
        let s = run("fn f(&self) { self.conn.lock().push(1); self.tx.send(1); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
    }

    #[test]
    fn nested_acquisitions_become_edges() {
        let s = run("fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }");
        assert_eq!(s.edges.len(), 1);
        assert_eq!(s.edges[0].0, "x::self.a");
        assert_eq!(s.edges[0].1, "x::self.b");
    }

    #[test]
    fn deref_copy_and_chained_bindings_are_not_guards() {
        // `let addr = *self.upstream.lock();` copies out; the guard
        // is a temporary dying at the semicolon.
        let s = run("fn f(&self) { let addr = *self.upstream.lock(); self.tx.send(addr); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
        // Same for a chained call: `let n = self.map.lock().len();`.
        let s = run("fn f(&self) { let n = self.map.lock().len(); self.tx.send(n); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
        // But blocking *within* the statement still counts.
        let s = run("fn f(&self) { let r = self.conn.lock().write_all(buf); }");
        assert_eq!(s.diags.len(), 1);
    }

    #[test]
    fn expect_unwrap_adapters_still_yield_the_guard() {
        // std Mutex idiom: `.lock().expect("...")` binds the guard.
        let s = run(
            "fn f(&self) { let g = self.state.lock().expect(\"state lock\"); self.tx.send(1); }",
        );
        assert_eq!(s.diags.len(), 1);
        // ...while chaining *past* the adapter binds a copied value.
        let s = run(
            "fn f(&self) { let v = self.state.lock().expect(\"state lock\").take(); self.tx.send(1); }",
        );
        assert!(s.diags.is_empty(), "{:?}", s.diags);
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let s = run("fn f(&self) { sock.write(buf); sock.read(&mut buf); }");
        assert!(s.edges.is_empty());
        assert!(s.diags.is_empty());
    }

    #[test]
    fn blocking_wrapper_free_functions_count() {
        let s = run("fn f(&self) { let mut w = self.writer.lock(); write_frame(&mut *w, c, b); }");
        assert_eq!(s.diags.len(), 1);
        // ...but a same-named method on some other type does not.
        let s =
            run("fn f(&self) { let mut w = self.writer.lock(); } fn g(x: X) { x.write_frame(b); }");
        assert!(s.diags.is_empty(), "{:?}", s.diags);
    }

    #[test]
    fn rwlock_read_counts() {
        let s = run("fn f(&self) { let g = self.map.read(); self.tx.send(1); }");
        assert_eq!(s.diags.len(), 1);
    }
}
