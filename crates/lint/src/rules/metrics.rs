//! `metrics-family`: every `uuidp_*` family literal in non-test code
//! must correspond to a registration site (`registry.counter(..)` /
//! `.gauge(..)` / `.histogram(..)`), and the registered set must cover
//! the canonical required list (`obs::families::REQUIRED`).
//!
//! This kills two drift modes at once: a typo'd family name in a
//! scrape assertion or dashboard query (used but never registered),
//! and a required family whose registration was refactored away (the
//! scrape would only catch it at runtime, on the right code path).
//!
//! Histogram registrations also cover their exposition-derived
//! families (`_count`, `_sum`, `_bucket_le`), the way the registry
//! renders them.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::RustFile;

/// The registry methods that register (or re-attach to) a family.
const REGISTER_METHODS: &[&str] = &["counter", "gauge", "histogram"];

/// Suffixes a histogram family fans out into in the exposition.
const HISTOGRAM_SUFFIXES: &[&str] = &["_count", "_sum", "_bucket_le"];

/// One family literal occurrence.
#[derive(Debug, Clone)]
pub struct FamilyUse {
    /// The family name.
    pub name: String,
    /// File it occurred in.
    pub file: String,
    /// Line it occurred on.
    pub line: u32,
    /// The registry method it was passed to, when it was one.
    pub registered_via: Option<&'static str>,
}

/// Is this string literal a metric family name?
fn is_family(text: &str) -> bool {
    text.len() > "uuidp_".len()
        && text.starts_with("uuidp_")
        && text
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Collects every non-test family literal in one file, noting which
/// are registration sites.
pub fn scan(file: &RustFile) -> Vec<FamilyUse> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        if t.kind != TokenKind::Str || !is_family(&t.text) {
            continue;
        }
        let registered_via =
            (i >= 3 && file.tokens[i - 1].is_punct('(') && file.tokens[i - 3].is_punct('.'))
                .then(|| {
                    REGISTER_METHODS
                        .iter()
                        .find(|m| file.tokens[i - 2].is_ident(m))
                        .copied()
                })
                .flatten();
        out.push(FamilyUse {
            name: t.text.clone(),
            file: file.rel.clone(),
            line: t.line,
            registered_via,
        });
    }
    out
}

/// The workspace-level check: every use resolves to a registration,
/// and the registered set covers `required` (anchored at
/// `required_file` when it does not).
pub fn finalize(
    uses: &[FamilyUse],
    required: &[String],
    required_file: Option<&str>,
) -> Vec<Diagnostic> {
    let mut registered: BTreeSet<&str> = BTreeSet::new();
    let mut histograms: BTreeSet<&str> = BTreeSet::new();
    for u in uses {
        match u.registered_via {
            Some("histogram") => {
                registered.insert(&u.name);
                histograms.insert(&u.name);
            }
            Some(_) => {
                registered.insert(&u.name);
            }
            None => {}
        }
    }
    let covered = |name: &str| {
        registered.contains(name)
            || HISTOGRAM_SUFFIXES.iter().any(|s| {
                name.strip_suffix(s)
                    .is_some_and(|base| histograms.contains(base))
            })
    };
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for u in uses {
        if u.registered_via.is_none()
            && !covered(&u.name)
            && seen.insert((u.file.clone(), u.line, u.name.clone()))
        {
            out.push(Diagnostic {
                file: u.file.clone(),
                line: u.line,
                rule: Rule::MetricsFamily,
                message: format!("metric family `{}` is never registered", u.name),
                hint: "register it at service start or fix the family-name typo".into(),
            });
        }
    }
    if let Some(required_file) = required_file {
        for req in required {
            if !covered(req) {
                out.push(Diagnostic {
                    file: required_file.to_string(),
                    line: 1,
                    rule: Rule::MetricsFamily,
                    message: format!(
                        "required family `{req}` has no registration site in the workspace"
                    ),
                    hint: "REQUIRED must be a subset of what nodes register at bind time".into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uses(src: &str) -> Vec<FamilyUse> {
        scan(&RustFile::parse("crates/x/src/lib.rs", src))
    }

    #[test]
    fn registration_sites_are_classified() {
        let u = uses("fn f(r: &Registry) { r.counter(\"uuidp_leases_total\"); }");
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].registered_via, Some("counter"));
    }

    #[test]
    fn unregistered_use_fires_and_histogram_suffixes_cover() {
        let u = uses(
            "fn f(r: &Registry) { r.histogram(\"uuidp_lat_ns\"); \
             assert(m.contains(\"uuidp_lat_ns_count\")); \
             assert(m.contains(\"uuidp_bogus_total\")); }",
        );
        let d = finalize(&u, &[], None);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("uuidp_bogus_total"));
    }

    #[test]
    fn required_without_registration_fires() {
        let u = uses("fn f(r: &Registry) { r.counter(\"uuidp_a_total\"); }");
        let d = finalize(
            &u,
            &["uuidp_a_total".into(), "uuidp_missing_total".into()],
            Some("crates/obs/src/families.rs"),
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("uuidp_missing_total"));
    }
}
