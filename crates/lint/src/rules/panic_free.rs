//! `decode-panic`: the designated never-panic modules (wire and disk
//! decode paths) must not contain `unwrap`, `expect`, the `panic!`
//! macro family, or unguarded indexing in non-test code.
//!
//! "Guarded" indexing means the indexed container's length is visibly
//! consulted in the same file (`x.len()` / `x.get(`): the decode
//! modules' style is to bounds-check explicitly and then slice. The
//! `assert!`/`debug_assert!` macros are deliberately *not* flagged —
//! they document internal invariants and the debug variants vanish
//! from release decode paths.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::RustFile;

/// Identifiers whose `ident!` form is a panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keyword-ish identifiers that can precede `[` without it being an
/// index expression (`&mut [u8]`, `impl [T]`...).
const NON_RECEIVER_IDENTS: &[&str] = &[
    "mut", "dyn", "ref", "return", "break", "in", "as", "else", "impl", "where", "move", "const",
];

/// Runs the rule over one in-scope file.
pub fn check(file: &RustFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        if t.kind != TokenKind::Ident && !t.is_punct('[') {
            continue;
        }
        let prev_dot = i > 0 && file.tokens[i - 1].is_punct('.');
        let next_paren = file.tok(i + 1).is_some_and(|n| n.is_punct('('));
        if prev_dot && next_paren && (t.is_ident("unwrap") || t.is_ident("expect")) {
            out.push(diag(
                file,
                t.line,
                format!("`.{}()` in a never-panic decode module", t.text),
                "return a typed CodecError/FrameError instead".into(),
            ));
            continue;
        }
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && file.tok(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(diag(
                file,
                t.line,
                format!("`{}!` in a never-panic decode module", t.text),
                "decode paths must return errors, not panic".into(),
            ));
            continue;
        }
        if t.is_punct('[') {
            if let Some(receiver) = index_receiver(file, i) {
                if !receiver_is_guarded(file, &receiver) {
                    out.push(diag(
                        file,
                        t.line,
                        format!("indexing `{receiver}[..]` without a visible bounds guard"),
                        format!("check `{receiver}.len()` first or use `.get(..)`"),
                    ));
                }
            }
        }
    }
    out
}

/// If token `i` (a `[`) indexes an expression, the receiver's base
/// identifier; `None` when the bracket opens a type, attribute, or
/// array literal.
fn index_receiver(file: &RustFile, i: usize) -> Option<String> {
    let prev = file.tok(i.checked_sub(1)?)?;
    match prev.kind {
        TokenKind::Ident if !NON_RECEIVER_IDENTS.contains(&prev.text.as_str()) => {
            Some(prev.text.clone())
        }
        // `foo()[i]` / `bar[i][j]` — indexing a call or nested index:
        // attribute the finding to the nearest earlier identifier.
        TokenKind::Punct if prev.text == ")" || prev.text == "]" => {
            let mut j = i - 1;
            while j > 0 {
                j -= 1;
                if file.tokens[j].kind == TokenKind::Ident {
                    return Some(file.tokens[j].text.clone());
                }
            }
            None
        }
        _ => None,
    }
}

/// Does this file visibly consult `base`'s length anywhere in non-test
/// code (`base.len()` / `base.get(`)?
fn receiver_is_guarded(file: &RustFile, base: &str) -> bool {
    (0..file.tokens.len()).any(|j| {
        !file.is_test(j)
            && file.tokens[j].is_ident(base)
            && file.tok(j + 1).is_some_and(|t| t.is_punct('.'))
            && file
                .tok(j + 2)
                .is_some_and(|t| t.is_ident("len") || t.is_ident("get"))
    })
}

fn diag(file: &RustFile, line: u32, message: String, hint: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        rule: Rule::DecodePanic,
        message,
        hint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&RustFile::parse("crates/core/src/codec.rs", src))
    }

    #[test]
    fn unwrap_expect_and_macros_fire() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(d.len(), 1);
        let d = run("fn f() { q.expect(\"nope\"); }");
        assert_eq!(d.len(), 1);
        let d = run("fn f() { unreachable!(\"no\") }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn guarded_indexing_and_tests_are_silent() {
        let d = run("fn f(b: &[u8]) -> u8 { if b.len() > 4 { b[4] } else { 0 } }");
        assert!(d.is_empty(), "{d:?}");
        let d = run("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        assert!(d.is_empty());
    }

    #[test]
    fn unguarded_indexing_fires() {
        let d = run("fn f(b: &[u8]) -> u8 { b[4] }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains('b'));
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let d = run("fn f(x: Result<u8, u8>) -> u8 { x.unwrap_or_else(|e| e) }");
        assert!(d.is_empty());
    }
}
