//! The rule engine: each rule turns one of the repo's prose
//! invariants into token-level checks.
//!
//! | id | invariant | previously guarded by |
//! |----|-----------|-----------------------|
//! | `decode-panic` | decode paths never panic on arbitrary bytes | protocol soup proptests |
//! | `ambient-time` | seed-determinism: no wall clock / OS randomness outside the whitelist | same-seed twin CI diffs |
//! | `lock-blocking` | no blocking call while a lock guard is live | (the PR 8 bug class — nothing) |
//! | `lock-cycle` | nested lock acquisitions form a partial order | (nothing) |
//! | `metrics-family` | every `uuidp_*` family literal is registered; required set covered | scrape assertions at runtime |
//! | `shim-dep` | crates reach `shims/` only via `[workspace.dependencies]` | convention |

pub mod ambient_time;
pub mod locks;
pub mod metrics;
pub mod panic_free;
pub mod shims;
