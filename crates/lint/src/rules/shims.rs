//! `shim-dep`: the offline `shims/` stand-ins are reached exclusively
//! through `[workspace.dependencies]` in the root manifest. A crate
//! that path-depends on a shim directly would keep compiling after the
//! workspace switches back to the real registry crates — exactly the
//! silent divergence the single-choke-point rule prevents.
//!
//! The check is a line-level TOML walk (std-only, like everything
//! here): inside any `[dependencies]`-flavored section other than the
//! root `[workspace.dependencies]`, a `shims/` path is a finding.
//! Manifest lines can be allowed with `# lint:allow(shim-dep): reason`
//! on the same line or the line above.

use crate::diag::{parse_allow, Allow, Diagnostic, Rule};

/// Result of scanning one manifest.
#[derive(Debug, Default)]
pub struct ManifestScan {
    /// `shim-dep` findings.
    pub diags: Vec<Diagnostic>,
    /// `# lint:allow(...)` comments found in the manifest.
    pub allows: Vec<Allow>,
    /// Hygiene findings from malformed allows.
    pub allow_diags: Vec<Diagnostic>,
}

/// Scans one `Cargo.toml`.
pub fn check_manifest(rel: &str, source: &str) -> ManifestScan {
    let mut scan = ManifestScan::default();
    let mut in_dep_section = false;
    let mut section_is_workspace = false;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if let Some(comment) = line.split_once('#').map(|(_, c)| c.trim()) {
            if comment.contains("lint:") {
                if let Some((allow, diags)) = parse_allow(rel, line_no, comment) {
                    scan.allows.push(allow);
                    scan.allow_diags.extend(diags);
                }
            }
        }
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            section_is_workspace = section == "workspace.dependencies";
            in_dep_section = section.ends_with("dependencies");
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if in_dep_section && !section_is_workspace && line.contains("shims/") {
            scan.diags.push(Diagnostic {
                file: rel.to_string(),
                line: line_no,
                rule: Rule::ShimDep,
                message: "crate manifest path-depends on shims/ directly".into(),
                hint: "use `<name>.workspace = true` so the root manifest stays the only \
                       place that knows where the dependency lives"
                    .into(),
            });
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_shim_path_fires() {
        let m = "[package]\nname = \"x\"\n[dependencies]\nrand = { path = \"../../shims/rand\" }\n";
        let scan = check_manifest("crates/x/Cargo.toml", m);
        assert_eq!(scan.diags.len(), 1);
        assert_eq!(scan.diags[0].line, 4);
    }

    #[test]
    fn workspace_table_and_workspace_true_are_fine() {
        let root = "[workspace.dependencies]\nrand = { path = \"shims/rand\" }\n";
        assert!(check_manifest("Cargo.toml", root).diags.is_empty());
        let leaf = "[dependencies]\nrand.workspace = true\n";
        assert!(check_manifest("crates/x/Cargo.toml", leaf).diags.is_empty());
    }

    #[test]
    fn manifest_allows_parse() {
        let m = "[dependencies]\n# lint:allow(shim-dep): fixture exercising the rule\nrand = { path = \"../../shims/rand\" }\n";
        let scan = check_manifest("crates/x/Cargo.toml", m);
        assert_eq!(scan.allows.len(), 1);
        assert!(scan.allow_diags.is_empty());
    }
}
