//! The `uuidp-lint` binary: run the workspace analyzer from CI or the
//! command line.
//!
//! ```text
//! uuidp-lint [--root <dir>] [--deny-warnings] [--list-allows]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--deny-warnings`),
//! `1` findings under `--deny-warnings`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_warnings = false;
    let mut list_allows = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("uuidp-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--list-allows" => list_allows = true,
            "--help" | "-h" => {
                println!(
                    "uuidp-lint: static analysis for the uuidp workspace\n\n\
                     usage: uuidp-lint [--root <dir>] [--deny-warnings] [--list-allows]\n\n\
                     --root <dir>      workspace root to analyze (default: .)\n\
                     --deny-warnings   exit nonzero when any finding survives suppression\n\
                     --list-allows     print every lint:allow site (used and unused)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("uuidp-lint: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match uuidp_lint::run(&root, uuidp_lint::Config::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("uuidp-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list_allows {
        print!("{}", report.render_allows());
    }
    for d in &report.diagnostics {
        println!("{d}");
    }
    let n = report.diagnostics.len();
    if n == 0 {
        eprintln!(
            "uuidp-lint: clean ({} files, {} allows)",
            report.files_seen,
            report.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "uuidp-lint: {n} finding{} across {} files",
            if n == 1 { "" } else { "s" },
            report.files_seen
        );
        if deny_warnings {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
