//! Recursive workspace walker (std-only).
//!
//! Yields every `.rs` file and every `Cargo.toml` under the root,
//! skipping build output and VCS metadata. Paths come back
//! workspace-relative and `/`-separated so diagnostics are stable
//! across platforms and checkout locations.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `fixtures` is skipped so
/// deliberately-violating lint fixtures never pollute a real run.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules", "fixtures"];

/// One file the walk found.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Found {
    /// A Rust source file.
    Rust(String),
    /// A crate manifest.
    Manifest(String),
}

impl Found {
    /// The workspace-relative path either way.
    pub fn rel(&self) -> &str {
        match self {
            Found::Rust(p) | Found::Manifest(p) => p,
        }
    }
}

/// Walks `root` and returns every analyzable file, sorted, so runs
/// are deterministic regardless of directory iteration order.
pub fn walk(root: &Path) -> io::Result<Vec<Found>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                out.push(Found::Manifest(relative(root, &path)));
            } else if name.ends_with(".rs") {
                out.push(Found::Rust(relative(root, &path)));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let found = walk(root).unwrap();
        assert!(found.contains(&Found::Rust("src/walker.rs".into())));
        assert!(found.contains(&Found::Manifest("Cargo.toml".into())));
    }
}
