//! A small directed graph with Tarjan SCC — the cycle detector behind
//! the lock-ordering rule. (Interval analysis in the Cifuentes style
//! reduces to the same question for our purposes: a partial order is
//! violated exactly when a strongly connected component has more than
//! one node, or a node carries a self-edge.)

use std::collections::BTreeMap;

/// A directed graph over string-named nodes, each edge annotated with
/// the source site that created it.
#[derive(Debug, Default)]
pub struct DiGraph {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
    /// Adjacency: `edges[from] = [(to, site), ...]`.
    edges: Vec<Vec<(usize, String)>>,
}

impl DiGraph {
    /// An empty graph.
    pub fn new() -> DiGraph {
        DiGraph::default()
    }

    fn node(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.edges.push(Vec::new());
        i
    }

    /// Adds edge `from -> to`, remembering `site` (file:line text).
    pub fn add_edge(&mut self, from: &str, to: &str, site: &str) {
        let f = self.node(from);
        let t = self.node(to);
        if !self.edges[f].iter().any(|(dst, _)| *dst == t) {
            self.edges[f].push((t, site.to_string()));
        }
    }

    /// Every ordering violation: strongly connected components with
    /// more than one lock, plus single locks with a self-edge. Each
    /// violation lists its lock names and the edge sites involved.
    pub fn cycles(&self) -> Vec<Cycle> {
        let sccs = self.tarjan();
        let mut out = Vec::new();
        for scc in sccs {
            let in_scc = |i: usize| scc.contains(&i);
            let self_loop = scc.len() == 1 && self.edges[scc[0]].iter().any(|(t, _)| *t == scc[0]);
            if scc.len() < 2 && !self_loop {
                continue;
            }
            let mut locks: Vec<String> = scc.iter().map(|&i| self.names[i].clone()).collect();
            locks.sort();
            let mut sites = Vec::new();
            for &i in &scc {
                for (t, site) in &self.edges[i] {
                    if in_scc(*t) {
                        sites.push(format!(
                            "{} -> {} at {}",
                            self.names[i], self.names[*t], site
                        ));
                    }
                }
            }
            sites.sort();
            out.push(Cycle { locks, sites });
        }
        out.sort_by(|a, b| a.locks.cmp(&b.locks));
        out
    }

    /// Iterative Tarjan SCC (no recursion: source files can nest
    /// arbitrarily and this runs inside CI).
    fn tarjan(&self) -> Vec<Vec<usize>> {
        let n = self.names.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();
        // Explicit DFS frames: (node, next-edge-offset).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            while let Some(&(v, ei)) = frames.last() {
                if index[v] == usize::MAX {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&(w, _)) = self.edges[v].get(ei) {
                    if let Some(top) = frames.last_mut() {
                        top.1 += 1;
                    }
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }
}

/// One lock-ordering violation.
#[derive(Debug, Clone)]
pub struct Cycle {
    /// The locks in the cycle, sorted.
    pub locks: Vec<String>,
    /// `from -> to at file:line` descriptions of the participating
    /// edges, sorted.
    pub sites: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_lock_cycle_is_found() {
        let mut g = DiGraph::new();
        g.add_edge("a", "b", "f.rs:1");
        g.add_edge("b", "a", "f.rs:9");
        g.add_edge("b", "c", "f.rs:5");
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["a", "b"]);
        assert_eq!(cycles[0].sites.len(), 2);
    }

    #[test]
    fn dag_and_self_loop() {
        let mut g = DiGraph::new();
        g.add_edge("a", "b", "x");
        g.add_edge("b", "c", "y");
        assert!(g.cycles().is_empty());
        g.add_edge("c", "c", "z");
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["c"]);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        let mut g = DiGraph::new();
        for i in 0..10_000 {
            g.add_edge(&format!("l{i}"), &format!("l{}", i + 1), "deep");
        }
        assert!(g.cycles().is_empty());
        g.add_edge("l10000", "l0", "close");
        assert_eq!(g.cycles().len(), 1);
    }
}
