//! # uuidp-lint — the workspace's invariants as enforced rules
//!
//! A zero-dependency (std-only) static-analysis pass over the
//! workspace's own Rust source and manifests, in the same no-registry
//! spirit as `shims/` and `service::sys`. Every correctness anchor
//! this repo states in prose — never-panic wire decoding,
//! seed-determinism, the reactor's no-blocking-while-locked
//! discipline, metrics-family completeness, the shims choke point —
//! is enforced only dynamically by tests that must happen to exercise
//! it; this crate turns each into a rule that runs before the tests
//! do. See [`rules`] for the rule table and [`diag`] for the
//! `lint:allow` suppression grammar.
//!
//! The pipeline: [`walker`] finds files → [`lexer`] tokenizes →
//! [`source::RustFile`] masks test code and collects allows → per-file
//! rules run → workspace-level passes (lock-order SCC over the union
//! graph, metrics-family resolution) → allows are resolved against
//! findings → [`Report`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walker;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::{Allow, Diagnostic, Rule};
use graph::DiGraph;
use rules::metrics::FamilyUse;
use source::{path_is_test, RustFile};

/// What the analyzer checks and where exceptions live.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files (path substrings) under the never-panic decode contract.
    pub decode_paths: Vec<String>,
    /// Path prefixes exempt from the ambient-time rule.
    pub time_whitelist: Vec<String>,
    /// The file holding the canonical required-family list; its
    /// `uuidp_*` literals define the superset obligation.
    pub families_path: Option<String>,
}

impl Config {
    /// The real workspace's configuration — the one CI runs.
    pub fn workspace() -> Config {
        Config {
            decode_paths: vec![
                "crates/core/src/codec.rs".into(),
                "crates/core/src/persist.rs".into(),
                "crates/client/src/frame.rs".into(),
                "crates/service/src/protocol.rs".into(),
            ],
            time_whitelist: vec![
                // The one sanctioned clock: everything else takes
                // timestamps from here or as arguments.
                "crates/core/src/clock.rs".into(),
                // Benchmarks exist to measure wall time.
                "crates/bench/".into(),
                // The CLI edge (live dashboards, serve loops) is
                // inherently wall-clock-driven.
                "crates/cli/".into(),
                // The analyzer itself and the offline shims sit outside
                // the deterministic fingerprint paths.
                "crates/lint/".into(),
                "shims/".into(),
            ],
            families_path: Some("crates/obs/src/families.rs".into()),
        }
    }

    /// A bare configuration for fixture tests: no decode scope, no
    /// whitelist, no required list — tests opt paths in explicitly.
    pub fn bare() -> Config {
        Config {
            decode_paths: Vec::new(),
            time_whitelist: Vec::new(),
            families_path: None,
        }
    }
}

/// The analyzer: feed it files, then [`Analyzer::finish`].
pub struct Analyzer {
    config: Config,
    diags: Vec<Diagnostic>,
    allows: Vec<Allow>,
    lock_graph: DiGraph,
    family_uses: Vec<FamilyUse>,
    required: Vec<String>,
    files_seen: usize,
}

impl Analyzer {
    /// A fresh analyzer over `config`.
    pub fn new(config: Config) -> Analyzer {
        Analyzer {
            config,
            diags: Vec::new(),
            allows: Vec::new(),
            lock_graph: DiGraph::new(),
            family_uses: Vec::new(),
            required: Vec::new(),
            files_seen: 0,
        }
    }

    /// Analyzes one Rust source file (workspace-relative path).
    pub fn add_rust(&mut self, rel: &str, source: &str) {
        self.files_seen += 1;
        let file = RustFile::parse(rel, source);
        self.diags.extend(file.allow_diags.iter().cloned());
        self.allows.extend(file.allows.iter().cloned());
        if self
            .config
            .decode_paths
            .iter()
            .any(|p| rel.contains(p.as_str()))
        {
            self.diags.extend(rules::panic_free::check(&file));
        }
        if !self
            .config
            .time_whitelist
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
        {
            self.diags.extend(rules::ambient_time::check(&file));
        }
        let scan = rules::locks::check(&file, crate_of(rel));
        self.diags.extend(scan.diags);
        for (from, to, site) in scan.edges {
            self.lock_graph.add_edge(&from, &to, &site);
        }
        if self.config.families_path.as_deref() == Some(rel) {
            self.required = rules::metrics::scan(&file)
                .into_iter()
                .map(|u| u.name)
                .collect();
        }
        self.family_uses.extend(rules::metrics::scan(&file));
    }

    /// Analyzes one `Cargo.toml` (workspace-relative path).
    pub fn add_manifest(&mut self, rel: &str, source: &str) {
        // Shims may reference each other, and fixture manifests exist
        // to violate the rule on purpose.
        if rel.starts_with("shims/") || path_is_test(rel) {
            return;
        }
        self.files_seen += 1;
        let scan = rules::shims::check_manifest(rel, source);
        self.diags.extend(scan.diags);
        self.diags.extend(scan.allow_diags);
        self.allows.extend(scan.allows);
    }

    /// Runs the workspace-level passes and resolves allows.
    pub fn finish(mut self) -> Report {
        for cycle in self.lock_graph.cycles() {
            // Anchor the diagnostic at the first participating site so
            // a `lint:allow(lock-cycle)` can live next to real code.
            let (file, line) = cycle
                .sites
                .first()
                .and_then(|s| s.rsplit_once(" at "))
                .and_then(|(_, loc)| loc.rsplit_once(':'))
                .map(|(f, l)| (f.to_string(), l.parse().unwrap_or(1)))
                .unwrap_or_else(|| ("<workspace>".into(), 1));
            self.diags.push(Diagnostic {
                file,
                line,
                rule: Rule::LockCycle,
                message: format!(
                    "lock-order cycle between {{{}}} ({})",
                    cycle.locks.join(", "),
                    cycle.sites.join("; ")
                ),
                hint: "pick one global acquisition order and stick to it".into(),
            });
        }
        let required_file = self.config.families_path.clone();
        self.diags.extend(rules::metrics::finalize(
            &self.family_uses,
            &self.required,
            required_file.as_deref(),
        ));

        // Resolve suppressions: an allow matches a finding in the same
        // file, for its rule, on the same line or the line below the
        // comment. Hygiene findings are never suppressible.
        let mut kept = Vec::new();
        for d in self.diags {
            if d.rule == Rule::AllowHygiene {
                kept.push(d);
                continue;
            }
            let mut suppressed = false;
            for a in self.allows.iter_mut() {
                if a.rule == Some(d.rule)
                    && a.file == d.file
                    && (a.line == d.line || a.line + 1 == d.line)
                {
                    a.used = true;
                    suppressed = true;
                    break;
                }
            }
            if !suppressed {
                kept.push(d);
            }
        }
        kept.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        kept.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
        let mut allows = self.allows;
        allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        Report {
            diagnostics: kept,
            allows,
            files_seen: self.files_seen,
        }
    }
}

/// The crate a workspace-relative path belongs to (qualifies lock
/// identities in the order graph).
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or("root"),
        _ => "root",
    }
}

/// Everything one run produced.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived suppression, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Every `lint:allow` in the workspace, used or not.
    pub allows: Vec<Allow>,
    /// Files analyzed.
    pub files_seen: usize,
}

impl Report {
    /// Renders the exhaustive allow inventory (`--list-allows`).
    pub fn render_allows(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} lint:allow sites\n", self.allows.len()));
        for a in &self.allows {
            let status = if a.used { "used" } else { "UNUSED" };
            out.push_str(&format!(
                "{}:{}: allow({}) [{status}] — {}\n",
                a.file,
                a.line,
                a.rule.map(Rule::id).unwrap_or(a.rule_text.as_str()),
                if a.reason.is_empty() {
                    "<no reason>"
                } else {
                    &a.reason
                }
            ));
        }
        out
    }
}

/// Walks `root` and analyzes the whole workspace with [`Config`]
/// `config` (pass [`Config::workspace`] for the real rule set).
pub fn run(root: &Path, config: Config) -> io::Result<Report> {
    let mut analyzer = Analyzer::new(config);
    for found in walker::walk(root)? {
        let path: PathBuf = root.join(found.rel());
        let source = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => continue, // non-UTF-8 or vanished mid-walk
        };
        match &found {
            walker::Found::Rust(rel) => analyzer.add_rust(rel, &source),
            walker::Found::Manifest(rel) => analyzer.add_manifest(rel, &source),
        }
    }
    Ok(analyzer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_suppress_and_are_marked_used() {
        let mut a = Analyzer::new(Config::bare());
        a.add_rust(
            "crates/x/src/lib.rs",
            "fn f() {\n    // lint:allow(ambient-time): this test fixture needs wall time\n    let t = Instant::now();\n}\n",
        );
        let report = a.finish();
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.allows.len(), 1);
        assert!(report.allows[0].used);
    }

    #[test]
    fn unsuppressed_findings_survive() {
        let mut a = Analyzer::new(Config::bare());
        a.add_rust("crates/x/src/lib.rs", "fn f() { let t = Instant::now(); }");
        let report = a.finish();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, Rule::AmbientTime);
    }

    #[test]
    fn cross_file_lock_cycle_is_reported() {
        let mut a = Analyzer::new(Config::bare());
        a.add_rust(
            "crates/x/src/a.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        a.add_rust(
            "crates/x/src/b.rs",
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        );
        let report = a.finish();
        let cycles: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("x::self.alpha"));
        assert!(cycles[0].message.contains("x::self.beta"));
    }
}
