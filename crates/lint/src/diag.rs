//! Diagnostics, rule identities, and the `lint:allow` grammar.
//!
//! A finding is suppressed by a comment **on the offending line** (or
//! the line directly above it):
//!
//! ```text
//! // lint:allow(rule-id): reason the invariant is not violated here
//! ```
//!
//! The reason is mandatory — an allow without one is itself a finding
//! (`allow-hygiene`), as is an allow naming an unknown rule. Every
//! allow, used or not, is surfaced by `--list-allows` so reviewers can
//! audit the full escape-hatch inventory in one place.

use std::fmt;

/// Every rule the analyzer knows. The ids are the public contract:
/// they appear in diagnostics, in `lint:allow(...)` comments, and in
/// the README rule table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`-family/unguarded indexing in the
    /// designated never-panic decode modules.
    DecodePanic,
    /// No ambient time or OS randomness outside the whitelist.
    AmbientTime,
    /// No blocking call while a lock guard is live.
    LockBlocking,
    /// No cycle in the nested lock-acquisition order graph.
    LockCycle,
    /// Every `uuidp_*` family literal must be registered, and the
    /// registered set must cover `obs::families::REQUIRED`.
    MetricsFamily,
    /// No crate manifest may path-depend on `shims/` directly.
    ShimDep,
    /// `lint:allow` comments must carry a known rule id and a reason.
    AllowHygiene,
}

/// All rules, for iteration and id lookup.
pub const ALL_RULES: &[Rule] = &[
    Rule::DecodePanic,
    Rule::AmbientTime,
    Rule::LockBlocking,
    Rule::LockCycle,
    Rule::MetricsFamily,
    Rule::ShimDep,
    Rule::AllowHygiene,
];

impl Rule {
    /// The stable string id used in diagnostics and allow comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DecodePanic => "decode-panic",
            Rule::AmbientTime => "ambient-time",
            Rule::LockBlocking => "lock-blocking",
            Rule::LockCycle => "lock-cycle",
            Rule::MetricsFamily => "metrics-family",
            Rule::ShimDep => "shim-dep",
            Rule::AllowHygiene => "allow-hygiene",
        }
    }

    /// Parses a rule id as written in an allow comment.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What is wrong, in one line.
    pub message: String,
    /// How to fix it, in one line.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule being allowed, if its id parsed.
    pub rule: Option<Rule>,
    /// The raw id text as written.
    pub rule_text: String,
    /// The justification after the colon (empty = hygiene finding).
    pub reason: String,
    /// Set during resolution: did this allow suppress a finding?
    pub used: bool,
}

/// Parses the text of one retained `lint:` comment into an [`Allow`],
/// plus any hygiene diagnostics it earns. Returns `None` for `lint:`
/// comments that are not allows (future directives would go here).
pub fn parse_allow(file: &str, line: u32, text: &str) -> Option<(Allow, Vec<Diagnostic>)> {
    let rest = text.trim().strip_prefix("lint:allow")?;
    let mut diags = Vec::new();
    let (rule_text, reason) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
        Some((id, tail)) => {
            let reason = tail.trim().strip_prefix(':').unwrap_or("").trim();
            (id.trim().to_string(), reason.to_string())
        }
        None => (String::new(), String::new()),
    };
    let rule = Rule::from_id(&rule_text);
    if rule.is_none() {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: Rule::AllowHygiene,
            message: format!("lint:allow names unknown rule `{rule_text}`"),
            hint: "use one of the ids from `uuidp-lint --rules`".into(),
        });
    }
    if reason.is_empty() {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: Rule::AllowHygiene,
            message: "lint:allow has no reason".into(),
            hint: "write `// lint:allow(rule-id): why this site is safe`".into(),
        });
    }
    Some((
        Allow {
            file: file.to_string(),
            line,
            rule,
            rule_text,
            reason,
            used: false,
        },
        diags,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_grammar_round_trips() {
        let (allow, diags) =
            parse_allow("a.rs", 3, "lint:allow(ambient-time): latency is wall time").unwrap();
        assert_eq!(allow.rule, Some(Rule::AmbientTime));
        assert_eq!(allow.reason, "latency is wall time");
        assert!(diags.is_empty());
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_findings() {
        let (_, diags) = parse_allow("a.rs", 1, "lint:allow(ambient-time)").unwrap();
        assert_eq!(diags.len(), 1);
        let (allow, diags) = parse_allow("a.rs", 2, "lint:allow(no-such-rule): because").unwrap();
        assert!(allow.rule.is_none());
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn every_rule_id_parses_back() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(*r));
        }
    }
}
