//! A hand-rolled token-level Rust lexer.
//!
//! The rules need exactly enough syntax to be trustworthy: string and
//! char literals must not be mistaken for code (a `"x.lock()"` log
//! message is not an acquisition), comments must be skipped *except*
//! that `// lint:allow(...)` markers must be collected, raw strings
//! and nested block comments must not desynchronize the scan, and
//! lifetimes (`'a`) must not be read as unterminated char literals.
//! Everything else — expressions, types, items — stays flat: rules
//! match over the token stream with small pattern windows.

/// What a token is, as coarsely as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `unwrap`, `Instant`, ...).
    Ident,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). The
    /// token's `text` is the *content* between the quotes, raw.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) — distinct from `Char` so neither confuses
    /// the other.
    Lifetime,
    /// A numeric literal, suffix included (`0xFF`, `1_000u64`, `1.5`).
    Number,
    /// A single punctuation byte (`.`, `(`, `[`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse class.
    pub kind: TokenKind,
    /// Identifier/literal text; for `Punct`, the single character.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One comment the lexer kept: only `lint:` markers are retained.
#[derive(Debug, Clone)]
pub struct LintComment {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The comment text after `//`, trimmed.
    pub text: String,
}

/// A lexed file: the token stream plus retained `lint:` comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments containing a `lint:` marker, in source order.
    pub lint_comments: Vec<LintComment>,
}

/// Lexes `source` into tokens. Unknown bytes are skipped rather than
/// erroring: an analyzer must keep walking whatever it finds.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = source[start..i].trim();
                if text.contains("lint:") {
                    out.lint_comments.push(LintComment {
                        line,
                        text: text.to_string(),
                    });
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (content, next, newlines) = scan_string(source, i + 1, false);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line,
                });
                line += newlines;
                i = next;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (tok, next, newlines) = scan_prefixed_string(source, i, line);
                out.tokens.push(tok);
                line += newlines;
                i = next;
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                if is_lifetime_at(bytes, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let (content, next, newlines) = scan_char(source, i + 1);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: content,
                        line,
                    });
                    line += newlines;
                    i = next;
                }
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if is_ident_byte(c) {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && bytes.get(i.wrapping_sub(1)) != Some(&b'.')
                    {
                        // A decimal point, not a `0..n` range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                if b.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (b as char).to_string(),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Is the `'` at `i` a lifetime (rather than a char literal)? A
/// lifetime is `'` + ident not closed by another `'` right after.
fn is_lifetime_at(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(first) {
        return false;
    }
    // `'a'` is a char; `'a,` / `'a>` / `'static` are lifetimes.
    let mut j = i + 2;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

/// Does `r…` / `b…` at `i` open a raw/byte string (as opposed to a
/// plain identifier like `result`)?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => match bytes.get(i + 1) {
            Some(&b'"') | Some(&b'#') => raw_hashes_then_quote(bytes, i + 1),
            _ => false,
        },
        b'b' => match bytes.get(i + 1) {
            Some(&b'"') | Some(&b'\'') => true,
            Some(&b'r') => raw_hashes_then_quote(bytes, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// From `at`, is there a run of `#`s followed by `"`? (Guards against
/// treating `r#ident` raw identifiers as raw strings.)
fn raw_hashes_then_quote(bytes: &[u8], at: usize) -> bool {
    let mut j = at;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a plain (escaped) string or char body starting just after the
/// opening quote. Returns (content, index-after-close, newlines seen).
fn scan_string(source: &str, start: usize, char_mode: bool) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let close = if char_mode { b'\'' } else { b'"' };
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            c if c == close => {
                return (source[start..i].to_string(), i + 1, newlines);
            }
            _ => i += 1,
        }
    }
    (source[start..].to_string(), bytes.len(), newlines)
}

fn scan_char(source: &str, start: usize) -> (String, usize, u32) {
    scan_string(source, start, true)
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` starting at the
/// prefix. Returns the token, the index after it, and newlines seen.
fn scan_prefixed_string(source: &str, at: usize, line: u32) -> (Token, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = at;
    // Skip the r/b/br prefix.
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    if !raw && bytes.get(i) == Some(&b'\'') {
        let (content, next, newlines) = scan_char(source, i + 1);
        return (
            Token {
                kind: TokenKind::Char,
                text: content,
                line,
            },
            next,
            newlines,
        );
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let content_start = i;
    let mut newlines = 0u32;
    if raw {
        // Raw strings end at `"` + `#`×hashes, escapes inert.
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                newlines += 1;
                i += 1;
                continue;
            }
            if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (
                        Token {
                            kind: TokenKind::Str,
                            text: source[content_start..i].to_string(),
                            line,
                        },
                        j,
                        newlines,
                    );
                }
            }
            i += 1;
        }
        (
            Token {
                kind: TokenKind::Str,
                text: source[content_start..].to_string(),
                line,
            },
            bytes.len(),
            newlines,
        )
    } else {
        let (content, next, nl) = scan_string(source, content_start, false);
        (
            Token {
                kind: TokenKind::Str,
                text: content,
                line,
            },
            next,
            nl,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r##"let x = "a.lock() // not code"; let y = r#"panic!("no")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
        let strs: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.contains("panic!"));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'b' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "b");
    }

    #[test]
    fn lint_comments_are_collected_with_lines() {
        let src = "let a = 1;\n// lint:allow(ambient-time): fixture\nlet b = 2; // plain\n";
        let lexed = lex(src);
        assert_eq!(lexed.lint_comments.len(), 1);
        assert_eq!(lexed.lint_comments[0].line, 2);
        assert!(lexed.lint_comments[0].text.starts_with("lint:allow"));
    }

    #[test]
    fn nested_block_comments_and_ranges() {
        let src = "/* a /* b */ c */ let z = 0..10;";
        let toks = lex(src).tokens;
        assert!(toks.iter().any(|t| t.is_ident("let")));
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let ids = idents("let r#fn = 1; let rx = r#\"raw\"#;");
        assert!(ids.contains(&"fn".to_string()) || ids.contains(&"r".to_string()));
        let strs: Vec<_> = lex("let rx = r#\"raw\"#;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "raw");
    }
}
