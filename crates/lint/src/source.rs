//! A lexed Rust file plus the structure the rules share: which token
//! ranges are test code, and which lines carry `lint:allow` comments.
//!
//! Test code is exempt from the behavioral rules — tests are allowed
//! to unwrap, read wall clocks, and hold locks across channel calls —
//! so every rule consults the mask. A token is "test" when it sits
//! inside an item annotated `#[test]` or `#[cfg(test)]` (module, fn,
//! impl, or use), or when the whole file lives under a `tests/`,
//! `benches/`, `examples/`, or `fixtures/` directory.

use crate::diag::{parse_allow, Allow, Diagnostic};
use crate::lexer::{lex, Token, TokenKind};

/// One analyzed Rust source file.
pub struct RustFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` — token `i` is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Parsed `lint:allow` comments.
    pub allows: Vec<Allow>,
    /// Hygiene findings from malformed allows.
    pub allow_diags: Vec<Diagnostic>,
}

impl RustFile {
    /// Lexes and structures `source`.
    pub fn parse(rel: &str, source: &str) -> RustFile {
        let lexed = lex(source);
        let whole_file_test = path_is_test(rel);
        let test_mask = if whole_file_test {
            vec![true; lexed.tokens.len()]
        } else {
            test_mask(&lexed.tokens)
        };
        let mut allows = Vec::new();
        let mut allow_diags = Vec::new();
        for c in &lexed.lint_comments {
            if let Some((allow, diags)) = parse_allow(rel, c.line, &c.text) {
                allows.push(allow);
                allow_diags.extend(diags);
            }
        }
        RustFile {
            rel: rel.to_string(),
            tokens: lexed.tokens,
            test_mask,
            allows,
            allow_diags,
        }
    }

    /// The token at `i`, when in range.
    pub fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Is token `i` inside test-only code?
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Does the token window starting at `i` spell out the given
    /// punctuation/identifier pattern? Pattern entries are single-char
    /// strings for punctuation and names for identifiers.
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        pattern.iter().enumerate().all(|(k, p)| {
            self.tok(i + k).is_some_and(|t| match t.kind {
                TokenKind::Punct => t.text == *p,
                TokenKind::Ident => t.text == *p,
                _ => false,
            })
        })
    }
}

/// Whole-file test classification by path.
pub fn path_is_test(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "fixtures"))
}

/// Computes the per-token test mask from `#[test]` / `#[cfg(test)]`
/// attributes: the annotated item (attributes through its closing `}`
/// or `;`) is marked.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Walk this attribute and any directly following ones, noting
        // whether any is test-flavored.
        let mut testish = false;
        let mut j = i;
        while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct('!')) {
                k += 1; // inner attribute `#![...]` — still skip it
            }
            if !tokens.get(k).is_some_and(|t| t.is_punct('[')) {
                break;
            }
            let mut depth = 0i32;
            let body_start = k;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let attr: Vec<&str> = tokens[body_start..=k.min(tokens.len() - 1)]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let has = |s: &str| attr.contains(&s);
            if (attr == ["test"] || (has("cfg") && has("test")) || has("proptest")) && !has("not") {
                testish = true;
            }
            j = k + 1;
        }
        if !testish {
            i = j.max(i + 1);
            continue;
        }
        // Mark from the attribute through the annotated item: to the
        // first `;` before any brace, or through the matching `}`.
        let mut k = j;
        let mut depth = 0i32;
        let mut end = tokens.len();
        while let Some(t) = tokens.get(k) {
            if depth == 0 && t.is_punct(';') {
                end = k + 1;
                break;
            }
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end).skip(attr_start) {
            *m = true;
        }
        i = end;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = RustFile::parse("crates/x/src/lib.rs", src);
        let unwraps: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| (i, f.is_test(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "live unwrap must not be masked");
        assert!(unwraps[1].1, "test unwrap must be masked");
        // Code after the module is live again.
        let live2 = f.tokens.iter().position(|t| t.is_ident("live2")).unwrap();
        assert!(!f.is_test(live2));
    }

    #[test]
    fn test_fns_and_cfg_not_test_behave() {
        let src = "#[test]\nfn t() { a.unwrap(); }\n#[cfg(not(test))]\nfn live() { b.unwrap(); }\n";
        let f = RustFile::parse("crates/x/src/lib.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn files_under_tests_dirs_are_all_test() {
        let f = RustFile::parse("crates/x/tests/it.rs", "fn f() { a.unwrap(); }");
        assert!(f.test_mask.iter().all(|&b| b));
    }
}
