//! Conforms to `allow-hygiene`: a well-formed allow — known rule id,
//! real reason — sitting on the line above the finding it suppresses.

/// Stamps "now" from the ambient clock, with a sanctioned exception.
pub fn stamp() -> u128 {
    // lint:allow(ambient-time): fixture demonstrating a well-formed suppression
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}
