//! Conforms to `lock-cycle`: every path acquires alpha before beta,
//! so the order graph has one edge and no cycle.

use std::sync::Mutex;

/// Two locks with a single global acquisition order.
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// Acquires alpha, then beta.
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }

    /// Also alpha, then beta.
    pub fn forward_again(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }
}
