//! Violates `lock-blocking`: a channel send while the state guard is
//! still live — the PR 8 bug class, reduced.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// Shared state plus a notification channel.
pub struct Publisher {
    state: Mutex<u64>,
    tx: Sender<u64>,
}

impl Publisher {
    /// Bumps the counter and notifies — while holding the lock.
    pub fn publish(&self) {
        let guard = self.state.lock();
        self.tx.send(1);
    }
}
