//! Violates `allow-hygiene`: the allow names a rule id that does not
//! exist, so it can never suppress anything.

/// Passes the timestamp through.
pub fn stamp(now_ns: u64) -> u64 {
    // lint:allow(never-panic): this rule id does not exist
    now_ns
}
