//! Conforms to `decode-panic`: a typed error and a visible bounds
//! guard before the slice.

/// Decode failure for the fixture.
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
}

/// Reads the little-endian length prefix or reports truncation.
pub fn decode_len(buf: &[u8]) -> Result<u32, DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[..4]);
    Ok(u32::from_le_bytes(raw))
}
