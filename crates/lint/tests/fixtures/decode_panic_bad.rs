//! Violates `decode-panic`: one `.unwrap()` on a decode path that is
//! supposed to surface truncation as a typed error.

/// Reads the little-endian length prefix, panicking on short input.
pub fn decode_len(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf.get(0..4).and_then(|s| s.try_into().ok()).unwrap())
}
