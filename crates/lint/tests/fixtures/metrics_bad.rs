//! Violates `metrics-family`: the scrape assertion names a family
//! that no registration site ever creates (a one-letter typo).

/// Installs the fixture's metric families.
pub fn install(registry: &Registry) {
    registry.counter("uuidp_fixture_total");
}

/// Checks a scrape body — against the typo'd family name.
pub fn scrape_has_fixture(body: &str) -> bool {
    body.contains("uuidp_fixture_totall")
}
