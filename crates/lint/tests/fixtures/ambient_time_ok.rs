//! Conforms to `ambient-time`: the timestamp arrives as an argument
//! (from `uuidp_core::clock::monotonic_ns()` at the caller).

/// Ages an event given the caller-supplied clock reading.
pub fn age_ns(now_ns: u64, event_ns: u64) -> u64 {
    now_ns.saturating_sub(event_ns)
}
