//! Violates `lock-cycle`: two paths acquire the same pair of locks in
//! opposite orders — the classic AB/BA deadlock shape.

use std::sync::Mutex;

/// Two locks with no agreed acquisition order.
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// Acquires alpha, then beta.
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }

    /// Acquires beta, then alpha.
    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
    }
}
