//! Conforms to `lock-blocking`: copy what you need out of the guard,
//! let it die at the end of its scope, then block.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// Shared state plus a notification channel.
pub struct Publisher {
    state: Mutex<u64>,
    tx: Sender<u64>,
}

impl Publisher {
    /// Bumps the counter, then notifies with no lock held.
    pub fn publish(&self) {
        let value = {
            let guard = self.state.lock();
            7
        };
        self.tx.send(value);
    }
}
