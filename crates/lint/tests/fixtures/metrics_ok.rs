//! Conforms to `metrics-family`: every family named anywhere is
//! registered, including a histogram's exposition-derived `_count`.

/// Installs the fixture's metric families.
pub fn install(registry: &Registry) {
    registry.counter("uuidp_fixture_total");
    registry.histogram("uuidp_fixture_latency_ns");
}

/// Checks a scrape body against the registered names.
pub fn scrape_has_fixture(body: &str) -> bool {
    body.contains("uuidp_fixture_total") && body.contains("uuidp_fixture_latency_ns_count")
}
