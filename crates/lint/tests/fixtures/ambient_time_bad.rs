//! Violates `ambient-time`: reads the monotonic clock directly
//! instead of going through `uuidp_core::clock`.

/// Stamps "now" from the ambient clock.
pub fn stamp() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}
