//! Every rule exercised against an on-disk fixture pair: the
//! violating fixture yields exactly one diagnostic of its rule, and
//! the conforming twin yields none — so each rule is pinned against
//! both missed-detection and false-positive drift.
//!
//! Fixture *content* lives under `tests/fixtures/`, but it is fed to
//! the analyzer under synthetic production-looking paths: the real
//! location is deliberately both walker-skipped and test-masked, so
//! the violations never leak into a real workspace run.

use uuidp_lint::diag::Rule;
use uuidp_lint::{Analyzer, Config, Report};

/// Runs one Rust fixture through a fresh analyzer as `rel`.
fn analyze_rust(config: Config, rel: &str, source: &str) -> Report {
    let mut analyzer = Analyzer::new(config);
    analyzer.add_rust(rel, source);
    analyzer.finish()
}

/// Runs one manifest fixture through a fresh analyzer as `rel`.
fn analyze_manifest(config: Config, rel: &str, source: &str) -> Report {
    let mut analyzer = Analyzer::new(config);
    analyzer.add_manifest(rel, source);
    analyzer.finish()
}

/// The violating fixture's contract: one finding, the right rule.
fn assert_exactly_one(report: &Report, rule: Rule) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one finding, got: {:#?}",
        report.diagnostics
    );
    assert_eq!(report.diagnostics[0].rule, rule);
}

/// The conforming fixture's contract: silence.
fn assert_clean(report: &Report) {
    assert!(
        report.diagnostics.is_empty(),
        "expected no findings, got: {:#?}",
        report.diagnostics
    );
}

/// A config that puts the synthetic decode path under the never-panic
/// contract (everything else stays bare).
fn decode_config() -> Config {
    let mut config = Config::bare();
    config.decode_paths.push("crates/x/src/decode.rs".into());
    config
}

#[test]
fn decode_panic_pair() {
    let bad = analyze_rust(
        decode_config(),
        "crates/x/src/decode.rs",
        include_str!("fixtures/decode_panic_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::DecodePanic);
    assert!(bad.diagnostics[0].message.contains("unwrap"));

    let ok = analyze_rust(
        decode_config(),
        "crates/x/src/decode.rs",
        include_str!("fixtures/decode_panic_ok.rs"),
    );
    assert_clean(&ok);
}

#[test]
fn ambient_time_pair() {
    let bad = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/ambient_time_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::AmbientTime);
    assert!(bad.diagnostics[0].message.contains("Instant::now"));

    let ok = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/ambient_time_ok.rs"),
    );
    assert_clean(&ok);
}

#[test]
fn lock_blocking_pair() {
    let bad = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/lock_blocking_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::LockBlocking);
    assert!(bad.diagnostics[0].message.contains("self.state"));

    let ok = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/lock_blocking_ok.rs"),
    );
    assert_clean(&ok);
}

#[test]
fn lock_cycle_pair() {
    let bad = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/lock_cycle_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::LockCycle);
    assert!(bad.diagnostics[0].message.contains("x::self.alpha"));
    assert!(bad.diagnostics[0].message.contains("x::self.beta"));

    let ok = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/lock_cycle_ok.rs"),
    );
    assert_clean(&ok);
}

#[test]
fn metrics_family_pair() {
    let bad = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/metrics_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::MetricsFamily);
    assert!(bad.diagnostics[0].message.contains("uuidp_fixture_totall"));

    let ok = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/metrics_ok.rs"),
    );
    assert_clean(&ok);
}

#[test]
fn shim_dep_pair() {
    let bad = analyze_manifest(
        Config::bare(),
        "crates/x/Cargo.toml",
        include_str!("fixtures/shim_dep_bad.toml"),
    );
    assert_exactly_one(&bad, Rule::ShimDep);

    let ok = analyze_manifest(
        Config::bare(),
        "crates/x/Cargo.toml",
        include_str!("fixtures/shim_dep_ok.toml"),
    );
    assert_clean(&ok);
}

#[test]
fn allow_hygiene_pair() {
    let bad = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/allow_hygiene_bad.rs"),
    );
    assert_exactly_one(&bad, Rule::AllowHygiene);
    assert!(bad.diagnostics[0].message.contains("never-panic"));

    // The conforming twin is a *working* allow: it suppresses a real
    // ambient-time finding and shows up marked used.
    let ok = analyze_rust(
        Config::bare(),
        "crates/x/src/lib.rs",
        include_str!("fixtures/allow_hygiene_ok.rs"),
    );
    assert_clean(&ok);
    assert_eq!(ok.allows.len(), 1);
    assert!(ok.allows[0].used, "the allow must suppress the finding");
}
