//! The analyzer's dogfood gate: the real workspace must scan clean
//! under the exact configuration CI runs, and every `lint:allow` on
//! the books must earn its keep by suppressing something.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_ci_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = uuidp_lint::run(&root, uuidp_lint::Config::workspace()).expect("walk workspace");
    assert!(
        report.files_seen > 100,
        "suspiciously few files analyzed: {}",
        report.files_seen
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace lint findings:\n{}",
        rendered.join("\n")
    );
    for allow in &report.allows {
        assert!(
            allow.used,
            "unused lint:allow at {}:{} — remove it",
            allow.file, allow.line
        );
    }
}
