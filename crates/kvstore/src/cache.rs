//! A shared block cache with CLOCK (second-chance) eviction.
//!
//! Keyed by [`CacheKey`] — the uncoordinated SST unique ID plus block
//! offset. The cache is deliberately oblivious to ground-truth file
//! identities: like the real RocksDB block cache, it trusts the unique ID.
//! If two files collide on an ID, the cache will happily serve one file's
//! block for the other's read; detecting that is the audit layer's job
//! (and in production, nobody's — that is the paper's motivating hazard).
//!
//! CLOCK is used instead of strict LRU because it needs no ordered list —
//! a ring of reference bits — while retaining LRU-like behaviour; it is
//! also what production caches approximate. The cache is internally locked
//! (`parking_lot::Mutex`) so concurrent store instances can share it.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::sst::{BlockPayload, CacheKey};

/// Aggregate counters for one cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions.
    pub inserts: u64,
    /// Evictions performed by CLOCK.
    pub evictions: u64,
}

#[derive(Debug)]
struct Slot {
    key: CacheKey,
    payload: BlockPayload,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    hand: usize,
    stats: CacheStats,
}

/// A fixed-capacity shared block cache.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BlockCache {
    /// A cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up `key`, marking the entry recently used.
    pub fn get(&self, key: CacheKey) -> Option<BlockPayload> {
        let mut inner = self.inner.lock();
        match inner.map.get(&key).copied() {
            Some(idx) => {
                inner.stats.hits += 1;
                let slot = inner.slots[idx].as_mut().expect("mapped slot occupied");
                slot.referenced = true;
                Some(slot.payload)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key → payload`, evicting via CLOCK if full.
    pub fn insert(&self, key: CacheKey, payload: BlockPayload) {
        let mut inner = self.inner.lock();
        inner.stats.inserts += 1;
        if let Some(&idx) = inner.map.get(&key) {
            let slot = inner.slots[idx].as_mut().expect("mapped slot occupied");
            slot.payload = payload;
            slot.referenced = true;
            return;
        }
        let idx = if inner.slots.len() < self.capacity {
            inner.slots.push(None);
            inner.slots.len() - 1
        } else {
            self.evict_locked(&mut inner)
        };
        inner.map.insert(key, idx);
        inner.slots[idx] = Some(Slot {
            key,
            payload,
            referenced: true,
        });
    }

    /// CLOCK sweep: clear reference bits until an unreferenced victim is
    /// found; returns its slot index (now vacated).
    fn evict_locked(&self, inner: &mut Inner) -> usize {
        loop {
            let hand = inner.hand;
            inner.hand = (inner.hand + 1) % inner.slots.len();
            let evict_key = match inner.slots[hand].as_mut() {
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    continue;
                }
                Some(slot) => slot.key,
                None => return hand,
            };
            inner.map.remove(&evict_key);
            inner.slots[hand] = None;
            inner.stats.evictions += 1;
            return hand;
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::FileIdentity;

    fn key(uid: u128, block: u32) -> CacheKey {
        CacheKey {
            sst_unique_id: uid,
            block,
        }
    }

    fn payload(instance: u32, number: u64, block: u32) -> BlockPayload {
        BlockPayload {
            origin: FileIdentity {
                origin_instance: instance,
                file_number: number,
            },
            block,
        }
    }

    #[test]
    fn get_after_insert() {
        let cache = BlockCache::new(4);
        cache.insert(key(1, 0), payload(0, 1, 0));
        assert_eq!(cache.get(key(1, 0)), Some(payload(0, 1, 0)));
        assert_eq!(cache.get(key(2, 0)), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn capacity_is_respected() {
        let cache = BlockCache::new(8);
        for i in 0..100u128 {
            cache.insert(key(i, 0), payload(0, i as u64, 0));
        }
        assert!(cache.len() <= 8);
        assert!(cache.stats().evictions >= 92);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let cache = BlockCache::new(4);
        for i in 0..4u128 {
            cache.insert(key(i, 0), payload(0, i as u64, 0));
        }
        // Touch keys 0..3 except 2, then insert: 2 is the natural victim
        // after one sweep clears bits; the touched ones get second chances.
        cache.get(key(0, 0));
        cache.get(key(1, 0));
        cache.get(key(3, 0));
        cache.insert(key(99, 0), payload(0, 99, 0));
        assert!(cache.get(key(99, 0)).is_some());
        // At least 3 of the 4 touched keys survive the single eviction.
        let survivors = [0u128, 1, 3]
            .iter()
            .filter(|&&i| cache.get(key(i, 0)).is_some())
            .count();
        assert!(survivors >= 2, "{survivors} survivors");
    }

    #[test]
    fn colliding_uids_alias_silently() {
        // The cache itself cannot tell two files apart when uids collide —
        // this is the failure mode the audit layer exists to expose.
        let cache = BlockCache::new(4);
        cache.insert(key(42, 1), payload(0, 10, 1));
        let got = cache.get(key(42, 1)).unwrap();
        // A different file with the same uid reads the same key...
        assert_eq!(got.origin.origin_instance, 0);
        // ...and would receive instance 0's data regardless of who asks.
    }

    #[test]
    fn overwrite_updates_payload() {
        let cache = BlockCache::new(2);
        cache.insert(key(1, 0), payload(0, 1, 0));
        cache.insert(key(1, 0), payload(5, 9, 0));
        assert_eq!(cache.get(key(1, 0)), Some(payload(5, 9, 0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(BlockCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u128 {
                    c.insert(key(i % 50, t), payload(t, i as u64, t));
                    c.get(key(i % 50, t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
