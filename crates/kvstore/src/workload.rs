//! Synthetic workload generator for the deployment.
//!
//! **Substitution note (per DESIGN.md):** the paper's evidence for
//! Cluster came from Meta production RocksDB deployments, which we cannot
//! replay. Collision exposure, however, depends only on (a) how many IDs
//! each instance draws (flush/compaction volume) and (b) which instances'
//! files share a cache (migration + shared-cache topology). This workload
//! reproduces exactly those two drivers with tunable rates, so the
//! collision/corruption behaviour of the ID algorithms — the thing under
//! study — is preserved; throughput realism is explicitly out of scope.

use uuidp_core::rng::{uniform_below, SeedDomain, SeedTree, Xoshiro256pp};
use uuidp_core::traits::Algorithm;

use crate::cache::CacheStats;
use crate::cluster::Deployment;

/// Workload shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of store instances.
    pub instances: usize,
    /// Total operations to attempt.
    pub operations: u64,
    /// Blocks per flushed SST.
    pub blocks_per_file: u32,
    /// Shared cache capacity in blocks.
    pub cache_capacity: usize,
    /// Relative weight of flush operations.
    pub flush_weight: u32,
    /// Relative weight of read operations.
    pub read_weight: u32,
    /// Relative weight of compactions.
    pub compact_weight: u32,
    /// Relative weight of migrations.
    pub migrate_weight: u32,
    /// Relative weight of instance crash-restarts.
    pub restart_weight: u32,
    /// Bulk-lease batch size for instance ID issuing (0 = scalar
    /// `next_id` per file; ≥ 1 = instances draw through
    /// [`uuidp_core::lease::Lease`]-buffered `next_ids` batches, the
    /// service-layer discipline). The assigned ID stream — and therefore
    /// the collision/corruption report — is identical in both modes.
    pub lease_batch: u128,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            instances: 8,
            operations: 10_000,
            blocks_per_file: 4,
            cache_capacity: 4096,
            flush_weight: 30,
            read_weight: 50,
            compact_weight: 10,
            migrate_weight: 10,
            restart_weight: 0,
            lease_batch: 0,
        }
    }
}

/// What happened during a workload run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadReport {
    /// Files created (flushes + compaction outputs).
    pub files_created: u64,
    /// Block reads issued.
    pub reads: u64,
    /// Reads that returned another file's data.
    pub corrupt_reads: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Instance crash-restarts performed.
    pub restarts: u64,
    /// Distinct duplicate-unique-ID events.
    pub id_collisions: u64,
    /// Whether any generator exhausted mid-run.
    pub exhausted: bool,
    /// Final cache counters.
    pub cache: CacheStats,
}

impl WorkloadReport {
    /// Fraction of reads that were silently wrong.
    pub fn corruption_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.corrupt_reads as f64 / self.reads as f64
        }
    }
}

/// Runs the workload for `algorithm`, deterministically from `master_seed`.
pub fn run_workload(
    algorithm: &dyn Algorithm,
    config: WorkloadConfig,
    master_seed: u64,
) -> WorkloadReport {
    assert!(config.instances >= 2, "need at least two instances");
    assert!(config.blocks_per_file >= 1);
    let seeds = SeedTree::new(master_seed);
    let mut rng: Xoshiro256pp = seeds.rng(SeedDomain::Workload);
    let mut dep = Deployment::with_lease_batch(
        algorithm,
        config.instances,
        config.cache_capacity,
        &seeds,
        config.lease_batch,
    );
    let mut report = WorkloadReport::default();

    let weights = [
        config.flush_weight,
        config.read_weight,
        config.compact_weight,
        config.migrate_weight,
        config.restart_weight,
    ];
    let total_weight: u32 = weights.iter().sum();
    assert!(
        total_weight > 0,
        "at least one operation weight must be set"
    );

    for _ in 0..config.operations {
        let mut roll = uniform_below(&mut rng, total_weight as u128) as u32;
        let op = weights
            .iter()
            .position(|&w| {
                if roll < w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .expect("weighted choice within total");
        match op {
            // Flush on a random instance.
            0 => {
                let i = uniform_below(&mut rng, config.instances as u128) as usize;
                match dep.flush(i, config.blocks_per_file) {
                    Ok(_) => report.files_created += 1,
                    Err(_) => report.exhausted = true,
                }
            }
            // Read a random block of a random live file.
            1 => {
                let i = uniform_below(&mut rng, config.instances as u128) as usize;
                let files = dep.instance(i).files().len();
                if files == 0 {
                    continue;
                }
                let f = uniform_below(&mut rng, files as u128) as usize;
                let blocks = dep.instance(i).files()[f].blocks;
                let b = uniform_below(&mut rng, blocks as u128) as u32;
                report.reads += 1;
                if !dep.read(i, f, b) {
                    report.corrupt_reads += 1;
                }
            }
            // Compact two random files of a random instance.
            2 => {
                let i = uniform_below(&mut rng, config.instances as u128) as usize;
                let files = dep.instance(i).files().len();
                if files < 2 {
                    continue;
                }
                let a = uniform_below(&mut rng, files as u128) as usize;
                let mut b = uniform_below(&mut rng, (files - 1) as u128) as usize;
                if b >= a {
                    b += 1;
                }
                match dep.compact(i, &[a, b], config.blocks_per_file) {
                    Ok(_) => {
                        report.compactions += 1;
                        report.files_created += 1;
                    }
                    Err(_) => report.exhausted = true,
                }
            }
            // Migrate a random file between two random instances.
            3 => {
                let from = uniform_below(&mut rng, config.instances as u128) as usize;
                let mut to = uniform_below(&mut rng, (config.instances - 1) as u128) as usize;
                if to >= from {
                    to += 1;
                }
                let files = dep.instance(from).files().len();
                if files == 0 {
                    continue;
                }
                let f = uniform_below(&mut rng, files as u128) as usize;
                dep.migrate(from, to, f);
                report.migrations += 1;
            }
            // Crash-restart a random instance with a fresh seed.
            _ => {
                let i = uniform_below(&mut rng, config.instances as u128) as usize;
                let seed = uniform_below(&mut rng, u64::MAX as u128) as u64;
                dep.restart_instance(i, algorithm, seed);
                report.restarts += 1;
            }
        }
    }

    report.id_collisions = dep.audit().id_collisions().len() as u64;
    report.corrupt_reads = dep.audit().corruptions().len() as u64;
    report.cache = dep.cache_stats();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::{Cluster, Random};
    use uuidp_core::id::IdSpace;

    #[test]
    fn workload_is_reproducible() {
        let space = IdSpace::with_bits(40).unwrap();
        let alg = Cluster::new(space);
        let cfg = WorkloadConfig {
            operations: 2000,
            ..WorkloadConfig::default()
        };
        let a = run_workload(&alg, cfg, 7);
        let b = run_workload(&alg, cfg, 7);
        assert_eq!(a.files_created, b.files_created);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.id_collisions, b.id_collisions);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn big_universe_cluster_has_no_collisions() {
        let space = IdSpace::with_bits(64).unwrap();
        let alg = Cluster::new(space);
        let cfg = WorkloadConfig {
            operations: 5000,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&alg, cfg, 1);
        assert_eq!(report.id_collisions, 0);
        assert_eq!(report.corrupt_reads, 0);
        assert!(report.files_created > 0);
        assert!(report.reads > 0);
        assert!(!report.exhausted);
    }

    #[test]
    fn tiny_universe_random_collides_and_corrupts() {
        // Scaled-down m so birthday collisions are common within the run.
        let space = IdSpace::new(1 << 10).unwrap();
        let alg = Random::new(space);
        let cfg = WorkloadConfig {
            instances: 8,
            operations: 20_000,
            read_weight: 60,
            flush_weight: 25,
            migrate_weight: 10,
            compact_weight: 5,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&alg, cfg, 3);
        assert!(
            report.id_collisions > 0,
            "expected birthday collisions at m = 2^10"
        );
        assert!(report.reads > 0);
    }

    #[test]
    fn leased_issuing_is_observationally_scalar() {
        // The batch-lease discipline must not change a single assigned ID:
        // the whole report (files, collisions, corruptions, cache hits) is
        // bit-identical between scalar and any lease batch size, including
        // runs with crash-restarts in the mix.
        let space = IdSpace::new(1 << 14).unwrap(); // small: collisions occur
        let alg = Random::new(space);
        let base = WorkloadConfig {
            operations: 8000,
            restart_weight: 5,
            ..WorkloadConfig::default()
        };
        let scalar = run_workload(&alg, base, 13);
        assert!(scalar.id_collisions > 0, "fixture should collide");
        for batch in [1u128, 7, 64] {
            let leased = run_workload(
                &alg,
                WorkloadConfig {
                    lease_batch: batch,
                    ..base
                },
                13,
            );
            assert_eq!(leased.files_created, scalar.files_created, "batch {batch}");
            assert_eq!(leased.id_collisions, scalar.id_collisions, "batch {batch}");
            assert_eq!(leased.corrupt_reads, scalar.corrupt_reads, "batch {batch}");
            assert_eq!(leased.reads, scalar.reads, "batch {batch}");
            assert_eq!(leased.restarts, scalar.restarts, "batch {batch}");
            assert_eq!(leased.cache.hits, scalar.cache.hits, "batch {batch}");
        }
    }

    #[test]
    fn all_operation_types_occur() {
        let space = IdSpace::with_bits(48).unwrap();
        let alg = Cluster::new(space);
        let cfg = WorkloadConfig {
            operations: 5000,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&alg, cfg, 11);
        assert!(report.files_created > 0);
        assert!(report.reads > 0);
        assert!(report.migrations > 0);
        assert!(report.compactions > 0);
    }
}
