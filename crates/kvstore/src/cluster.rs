//! The simulated deployment: many store instances, one shared block
//! cache, an audit.
//!
//! This is the RocksDB-as-deployed-at-scale shape from the paper's
//! introduction (Bing's web platform, MyRocks, ZippyDB): instances run
//! independently, data files *move* between them (load balancing,
//! rebalancing, backup restore), and block caches are keyed by the
//! uncoordinated unique IDs. The deployment object wires reads through
//! the cache and every ID/read through the audit, so experiments can
//! count both raw ID collisions and the *silent corruptions* they cause.

use uuidp_core::rng::{SeedDomain, SeedTree};
use uuidp_core::traits::{Algorithm, GeneratorError};

use crate::audit::Audit;
use crate::cache::{BlockCache, CacheStats};
use crate::node::StoreInstance;
use crate::sst::SstFile;

/// A deployment of `n` uncoordinated store instances sharing a cache.
pub struct Deployment {
    instances: Vec<StoreInstance>,
    cache: BlockCache,
    audit: Audit,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("instances", &self.instances.len())
            .field("cache_len", &self.cache.len())
            .finish()
    }
}

impl Deployment {
    /// Spins up `n` instances of `algorithm` (seeded independently from
    /// `seeds`) sharing a block cache of `cache_capacity` blocks.
    pub fn new(
        algorithm: &dyn Algorithm,
        n: usize,
        cache_capacity: usize,
        seeds: &SeedTree,
    ) -> Self {
        Self::with_lease_batch(algorithm, n, cache_capacity, seeds, 0)
    }

    /// Like [`new`](Self::new), but instances issue their unique IDs
    /// through bulk leases of `lease_batch` IDs (the service-layer
    /// batching discipline; `0` = scalar issuing). The assigned ID stream
    /// is identical either way — leases are observationally consecutive
    /// `next_id` calls — so reports are comparable across modes.
    pub fn with_lease_batch(
        algorithm: &dyn Algorithm,
        n: usize,
        cache_capacity: usize,
        seeds: &SeedTree,
        lease_batch: u128,
    ) -> Self {
        let instances = (0..n)
            .map(|i| {
                let generator = algorithm.spawn(seeds.seed(SeedDomain::Instance(i as u64)));
                if lease_batch > 0 {
                    StoreInstance::with_lease_batch(i as u32, generator, lease_batch)
                } else {
                    StoreInstance::new(i as u32, generator)
                }
            })
            .collect();
        Deployment {
            instances,
            cache: BlockCache::new(cache_capacity),
            audit: Audit::new(),
        }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.instances.len()
    }

    /// Read access to instance `i`.
    pub fn instance(&self, i: usize) -> &StoreInstance {
        &self.instances[i]
    }

    /// Flushes a new `blocks`-block SST on instance `i`.
    pub fn flush(&mut self, i: usize, blocks: u32) -> Result<SstFile, GeneratorError> {
        let file = self.instances[i].flush(blocks)?;
        self.audit
            .register_file(file.unique_id.value(), file.identity);
        Ok(file)
    }

    /// Compacts files `inputs` of instance `i` into one `blocks`-block SST.
    pub fn compact(
        &mut self,
        i: usize,
        inputs: &[usize],
        blocks: u32,
    ) -> Result<SstFile, GeneratorError> {
        let file = self.instances[i].compact(inputs, blocks)?;
        self.audit
            .register_file(file.unique_id.value(), file.identity);
        Ok(file)
    }

    /// Crash-restarts instance `i`: its generator state is lost and
    /// replaced with a freshly spawned one. A *correct* uncoordinated
    /// scheme keeps uniqueness across restarts because the fresh instance
    /// draws fresh randomness — the same property that protects two
    /// different machines protects one machine before and after a crash.
    pub fn restart_instance(&mut self, i: usize, algorithm: &dyn Algorithm, seed: u64) {
        self.instances[i].restart(algorithm.spawn(seed));
    }

    /// Crash-restarts instance `i` with *exact resume*: the generator
    /// state is reloaded from its last snapshot (as if persisted in the
    /// manifest), so the instance continues the identical ID stream and
    /// the effective number of uncoordinated instances never grows.
    /// Returns `false` if the algorithm does not support snapshots (the
    /// instance is then left untouched).
    pub fn restart_instance_resumed(&mut self, i: usize) -> bool {
        let Some(snapshot) = self.instances[i].generator_snapshot() else {
            return false;
        };
        match uuidp_core::state::restore(self.instances[i].generator_space(), &snapshot) {
            Ok(generator) => {
                self.instances[i].restart(generator);
                true
            }
            Err(_) => false,
        }
    }

    /// Migrates file `file_idx` from instance `from` to instance `to`.
    pub fn migrate(&mut self, from: usize, to: usize, file_idx: usize) {
        assert_ne!(from, to, "migration needs distinct instances");
        let file = self.instances[from].release(file_idx);
        self.instances[to].adopt(file);
    }

    /// Reads block `block` of instance `i`'s file `file_idx` through the
    /// shared cache. Returns `true` if the data served was correct
    /// (corruptions are also recorded in the audit).
    pub fn read(&mut self, i: usize, file_idx: usize, block: u32) -> bool {
        let file = self.instances[i].files()[file_idx].clone();
        let key = file.cache_key(block);
        match self.cache.get(key) {
            Some(served) => self.audit.check_read(file.identity, &served),
            None => {
                // Miss: load from "disk" — the file's true payload.
                let payload = file.block_payload(block);
                self.cache.insert(key, payload);
                true
            }
        }
    }

    /// The audit record.
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Total live files across instances.
    pub fn live_files(&self) -> usize {
        self.instances.iter().map(|i| i.files().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::{Cluster, Random};
    use uuidp_core::id::IdSpace;

    #[test]
    fn clean_reads_on_distinct_ids() {
        let space = IdSpace::with_bits(64).unwrap();
        let alg = Cluster::new(space);
        let seeds = SeedTree::new(1);
        let mut dep = Deployment::new(&alg, 4, 256, &seeds);
        for i in 0..4 {
            dep.flush(i, 4).unwrap();
        }
        for i in 0..4 {
            for b in 0..4 {
                assert!(dep.read(i, 0, b), "read must be clean");
                assert!(dep.read(i, 0, b), "cached read must be clean");
            }
        }
        assert!(dep.audit().id_collisions().is_empty());
        assert!(dep.audit().corruptions().is_empty());
        let s = dep.cache_stats();
        assert_eq!(s.hits, 16);
        assert_eq!(s.misses, 16);
    }

    #[test]
    fn forced_collision_corrupts_reads_after_migration() {
        // A tiny universe makes collisions certain quickly.
        let space = IdSpace::new(4).unwrap();
        let alg = Random::new(space);
        let seeds = SeedTree::new(2);
        let mut dep = Deployment::new(&alg, 2, 64, &seeds);
        // Each instance flushes 3 files: 6 IDs from a 4-ID universe must
        // collide across instances.
        for i in 0..2 {
            for _ in 0..3 {
                dep.flush(i, 2).unwrap();
            }
        }
        assert!(
            !dep.audit().id_collisions().is_empty(),
            "pigeonhole collision expected"
        );
        // Warm the cache with instance 0's blocks, then read everything of
        // instance 1: any colliding file now yields corrupt reads.
        for f in 0..3 {
            for b in 0..2 {
                dep.read(0, f, b);
            }
        }
        let mut corrupt = 0;
        for f in 0..3 {
            for b in 0..2 {
                if !dep.read(1, f, b) {
                    corrupt += 1;
                }
            }
        }
        assert!(corrupt > 0, "collisions must surface as corruption");
        assert_eq!(dep.audit().corruptions().len(), corrupt);
    }

    #[test]
    fn migration_moves_files() {
        let space = IdSpace::with_bits(32).unwrap();
        let alg = Cluster::new(space);
        let seeds = SeedTree::new(3);
        let mut dep = Deployment::new(&alg, 2, 64, &seeds);
        dep.flush(0, 2).unwrap();
        assert_eq!(dep.instance(0).files().len(), 1);
        dep.migrate(0, 1, 0);
        assert_eq!(dep.instance(0).files().len(), 0);
        assert_eq!(dep.instance(1).files().len(), 1);
        assert_eq!(dep.live_files(), 1);
        // The migrated file reads cleanly through the shared cache.
        assert!(dep.read(1, 0, 0));
    }
}
