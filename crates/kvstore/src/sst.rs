//! SST files and their cache keys.
//!
//! RocksDB assigns every SST file a *unique ID* used (among other things)
//! to key its blocks in the shared block cache ("New stable, fixed-length
//! cache keys", RocksDB PR #9126 — the system the paper's authors built,
//! and the reason the paper exists). Instances generate these IDs without
//! coordination; when SSTs migrate between instances that share a cache,
//! an ID collision makes two different files' blocks alias in the cache —
//! a *silent correctness* failure, not just a performance one.
//!
//! The *ground-truth identity* of a file here is `(origin_instance,
//! file_number)`, which is globally unique by construction (it encodes who
//! created it). The whole point of the experiment is that the cache cannot
//! use the ground truth — real systems don't have a global registry — and
//! must trust the uncoordinated unique ID.

use serde::{Deserialize, Serialize};
use uuidp_core::id::Id;

/// Globally unique ground-truth identity of an SST file (who created it
/// and their local sequence number). Used only by the audit layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileIdentity {
    /// The store instance that created the file.
    pub origin_instance: u32,
    /// The creating instance's local file counter.
    pub file_number: u64,
}

/// The cache key of one block: the file's *uncoordinated* unique ID plus
/// the block offset — exactly the fixed-length key structure of PR #9126.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// The SST's uncoordinated unique ID.
    pub sst_unique_id: u128,
    /// Block index within the file.
    pub block: u32,
}

/// An SST file: metadata only (block *contents* are synthesized from the
/// identity on demand, which is all the audit needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstFile {
    /// Ground-truth identity (audit only).
    pub identity: FileIdentity,
    /// The uncoordinated unique ID all subsystems key on.
    pub unique_id: Id,
    /// Number of data blocks.
    pub blocks: u32,
}

impl SstFile {
    /// The cache key of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn cache_key(&self, block: u32) -> CacheKey {
        assert!(block < self.blocks, "block {block} out of {}", self.blocks);
        CacheKey {
            sst_unique_id: self.unique_id.value(),
            block,
        }
    }

    /// Synthesizes the canonical payload of block `block` — a fingerprint
    /// of the ground-truth identity, so any aliased read is detectable.
    pub fn block_payload(&self, block: u32) -> BlockPayload {
        assert!(block < self.blocks);
        BlockPayload {
            origin: self.identity,
            block,
        }
    }
}

/// What the cache stores per block: enough to recognize whose data it is.
///
/// A real cache stores bytes; we store the provenance fingerprint those
/// bytes would hash to, which is what the corruption audit compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPayload {
    /// Ground-truth identity of the file this block belongs to.
    pub origin: FileIdentity,
    /// Block index within that file.
    pub block: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(instance: u32, number: u64, uid: u128, blocks: u32) -> SstFile {
        SstFile {
            identity: FileIdentity {
                origin_instance: instance,
                file_number: number,
            },
            unique_id: Id(uid),
            blocks,
        }
    }

    #[test]
    fn cache_keys_depend_only_on_uid_and_block() {
        let a = file(0, 1, 42, 4);
        let b = file(7, 99, 42, 4); // different identity, same (colliding) uid
        assert_eq!(a.cache_key(2), b.cache_key(2));
        assert_ne!(a.cache_key(1), a.cache_key(2));
    }

    #[test]
    fn payloads_carry_ground_truth() {
        let a = file(0, 1, 42, 4);
        let b = file(7, 99, 42, 4);
        assert_ne!(a.block_payload(2), b.block_payload(2));
        assert_eq!(a.block_payload(2).origin, a.identity);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_block_panics() {
        file(0, 1, 42, 4).cache_key(4);
    }
}
