//! The audit layer: detects what the cache cannot.
//!
//! Two failure classes, both caused by uncoordinated ID collisions:
//!
//! * **ID collisions** — two live files with the same unique ID. Found by
//!   a registry keyed on the unique ID (something production systems
//!   cannot afford globally, which is exactly why the paper's problem
//!   matters; here it is our measurement instrument).
//! * **Cache corruptions** — a read served a block whose ground-truth
//!   origin differs from the file being read: a *silent wrong answer*
//!   from the database's perspective.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::sst::{BlockPayload, FileIdentity};

/// A detected duplicate unique ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdCollision {
    /// The colliding unique ID.
    pub unique_id: u128,
    /// The file that registered the ID first.
    pub first: FileIdentity,
    /// The file that collided with it.
    pub second: FileIdentity,
}

/// A read that returned another file's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCorruption {
    /// The file the reader believed it was reading.
    pub expected: FileIdentity,
    /// The provenance of the block actually served.
    pub served: FileIdentity,
    /// The block index.
    pub block: u32,
}

/// The audit: an ID registry plus event logs.
#[derive(Debug, Default)]
pub struct Audit {
    registry: HashMap<u128, FileIdentity>,
    id_collisions: Vec<IdCollision>,
    corruptions: Vec<CacheCorruption>,
}

impl Audit {
    /// An empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a newly created file's unique ID; records a collision if
    /// the ID is already held by a different file.
    pub fn register_file(&mut self, unique_id: u128, identity: FileIdentity) {
        match self.registry.entry(unique_id) {
            Entry::Occupied(e) => {
                if *e.get() != identity {
                    self.id_collisions.push(IdCollision {
                        unique_id,
                        first: *e.get(),
                        second: identity,
                    });
                }
            }
            Entry::Vacant(e) => {
                e.insert(identity);
            }
        }
    }

    /// Checks a served block against the reader's expectation; records a
    /// corruption on mismatch. Returns whether the read was clean.
    pub fn check_read(&mut self, expected: FileIdentity, served: &BlockPayload) -> bool {
        if served.origin != expected {
            self.corruptions.push(CacheCorruption {
                expected,
                served: served.origin,
                block: served.block,
            });
            false
        } else {
            true
        }
    }

    /// All ID collisions observed.
    pub fn id_collisions(&self) -> &[IdCollision] {
        &self.id_collisions
    }

    /// All cache corruptions observed.
    pub fn corruptions(&self) -> &[CacheCorruption] {
        &self.corruptions
    }

    /// Number of unique IDs registered.
    pub fn registered(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(i: u32, n: u64) -> FileIdentity {
        FileIdentity {
            origin_instance: i,
            file_number: n,
        }
    }

    #[test]
    fn detects_duplicate_ids() {
        let mut audit = Audit::new();
        audit.register_file(42, ident(0, 1));
        audit.register_file(43, ident(0, 2));
        audit.register_file(42, ident(1, 7));
        assert_eq!(audit.id_collisions().len(), 1);
        let c = audit.id_collisions()[0];
        assert_eq!(c.unique_id, 42);
        assert_eq!(c.first, ident(0, 1));
        assert_eq!(c.second, ident(1, 7));
    }

    #[test]
    fn re_registering_same_file_is_not_a_collision() {
        let mut audit = Audit::new();
        audit.register_file(42, ident(0, 1));
        audit.register_file(42, ident(0, 1));
        assert!(audit.id_collisions().is_empty());
    }

    #[test]
    fn detects_corrupt_reads() {
        let mut audit = Audit::new();
        let served = BlockPayload {
            origin: ident(1, 7),
            block: 3,
        };
        assert!(!audit.check_read(ident(0, 1), &served));
        assert!(audit.check_read(ident(1, 7), &served));
        assert_eq!(audit.corruptions().len(), 1);
        assert_eq!(audit.corruptions()[0].expected, ident(0, 1));
    }
}
