//! A single store instance: a RocksDB-like engine that creates SST files
//! and assigns their unique IDs from an uncoordinated generator.
//!
//! Instances know nothing of each other — the generator boxed inside each
//! one is an independent instance of the ID algorithm, per the UUIDP
//! model. File creation happens on *flush* (memtable → SST) and
//! *compaction* (k SSTs → 1 SST); both consume one fresh unique ID, which
//! is how RocksDB's real ID demand grows with write volume, not file
//! count alive.

use uuidp_core::lease::Lease;
use uuidp_core::state::GeneratorState;
use uuidp_core::traits::{GeneratorError, IdGenerator};

use crate::sst::{FileIdentity, SstFile};

/// One store instance.
pub struct StoreInstance {
    instance_id: u32,
    generator: Box<dyn IdGenerator>,
    /// Bulk-lease buffer, when the instance issues in leased batches
    /// (the service discipline): `next_ids(lease_batch)` refills it and
    /// file creation pops scalar IDs from it. `None` = scalar issuing.
    lease: Option<Lease>,
    lease_batch: u128,
    next_file_number: u64,
    live: Vec<SstFile>,
}

impl std::fmt::Debug for StoreInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreInstance")
            .field("instance_id", &self.instance_id)
            .field("next_file_number", &self.next_file_number)
            .field("live_files", &self.live.len())
            .finish()
    }
}

impl StoreInstance {
    /// A new instance with its own uncoordinated ID generator, issuing
    /// one scalar ID per file.
    pub fn new(instance_id: u32, generator: Box<dyn IdGenerator>) -> Self {
        StoreInstance {
            instance_id,
            generator,
            lease: None,
            lease_batch: 0,
            next_file_number: 1,
            live: Vec::new(),
        }
    }

    /// A new instance that issues through bulk leases of `batch ≥ 1` IDs:
    /// the generator is asked for `batch` IDs at a time via
    /// [`IdGenerator::next_ids`] and files consume the lease. Since a
    /// lease is observationally `batch` consecutive `next_id` calls, the
    /// assigned ID *stream* is identical to scalar issuing — only the
    /// generator interaction is batched (one interval push per run
    /// instead of one call per file), which is the service-layer issuing
    /// discipline.
    pub fn with_lease_batch(
        instance_id: u32,
        generator: Box<dyn IdGenerator>,
        batch: u128,
    ) -> Self {
        assert!(batch >= 1, "lease batch must cover at least one ID");
        let lease = Lease::new(generator.space());
        StoreInstance {
            instance_id,
            generator,
            lease: Some(lease),
            lease_batch: batch,
            next_file_number: 1,
            live: Vec::new(),
        }
    }

    /// Draws the next unique ID — scalar, or from the lease buffer
    /// (refilling it when drained). A partial lease granted right before
    /// exhaustion is fully consumed before the error surfaces, matching
    /// the scalar stream's exhaustion point exactly.
    fn draw_id(&mut self) -> Result<uuidp_core::id::Id, GeneratorError> {
        match &mut self.lease {
            None => self.generator.next_id(),
            Some(lease) => {
                if let Some(id) = lease.pop() {
                    return Ok(id);
                }
                let refill = lease.fill(self.generator.as_mut(), self.lease_batch);
                match lease.pop() {
                    Some(id) => Ok(id),
                    None => Err(refill.err().unwrap_or(GeneratorError::Exhausted {
                        generated: self.generator.generated(),
                    })),
                }
            }
        }
    }

    /// IDs leased from the generator but not yet assigned to files (0 in
    /// scalar mode).
    pub fn leased_unused(&self) -> u128 {
        self.lease.as_ref().map_or(0, |l| l.remaining())
    }

    /// This instance's index.
    pub fn instance_id(&self) -> u32 {
        self.instance_id
    }

    /// The live SST files (owned by this instance right now — origin may
    /// differ after migrations).
    pub fn files(&self) -> &[SstFile] {
        &self.live
    }

    /// Total unique IDs this instance has drawn from its generator
    /// (in leased mode this includes leased-ahead, not-yet-assigned IDs).
    pub fn ids_drawn(&self) -> u128 {
        self.generator.generated()
    }

    /// Flushes a memtable into a new SST of `blocks` blocks, drawing a
    /// fresh unique ID. Returns the new file.
    pub fn flush(&mut self, blocks: u32) -> Result<SstFile, GeneratorError> {
        assert!(blocks > 0, "an SST has at least one block");
        let unique_id = self.draw_id()?;
        let file = SstFile {
            identity: FileIdentity {
                origin_instance: self.instance_id,
                file_number: self.next_file_number,
            },
            unique_id,
            blocks,
        };
        self.next_file_number += 1;
        self.live.push(file.clone());
        Ok(file)
    }

    /// Compacts the files at `input_indices` into one new SST (with a
    /// fresh unique ID) of `blocks` blocks. Inputs are removed from the
    /// live set. Returns the output file.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, duplicated, or empty.
    pub fn compact(
        &mut self,
        input_indices: &[usize],
        blocks: u32,
    ) -> Result<SstFile, GeneratorError> {
        assert!(!input_indices.is_empty(), "compaction needs inputs");
        let mut sorted: Vec<usize> = input_indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), input_indices.len(), "duplicate inputs");
        assert!(
            *sorted.last().unwrap() < self.live.len(),
            "input index out of range"
        );
        // Draw the output ID first so a generator failure leaves the
        // instance unchanged.
        let out = self.flush(blocks)?;
        // Remove inputs (descending so indices stay valid); the new file
        // was pushed at the end and is untouched.
        for &idx in sorted.iter().rev() {
            self.live.swap_remove(idx);
        }
        Ok(out)
    }

    /// Adopts a file migrated from another instance. The file keeps its
    /// unique ID — this is precisely the operation that makes collisions
    /// observable: the adopted file's blocks now share a cache with this
    /// instance's files.
    pub fn adopt(&mut self, file: SstFile) {
        self.live.push(file);
    }

    /// Releases the file at `idx` (for migration elsewhere or deletion).
    pub fn release(&mut self, idx: usize) -> SstFile {
        self.live.swap_remove(idx)
    }

    /// The universe the embedded generator draws from.
    pub fn generator_space(&self) -> uuidp_core::id::IdSpace {
        self.generator.space()
    }

    /// Captures the generator's persistable state (what a real engine
    /// would write to its manifest alongside the file list), if the
    /// algorithm supports exact resume.
    pub fn generator_snapshot(&self) -> Option<GeneratorState> {
        self.generator.snapshot()
    }

    /// Simulates a crash-restart: the in-memory generator state is lost
    /// and replaced by `generator` (a fresh instance with a fresh seed —
    /// what RocksDB's session-based scheme does on every process start).
    /// Live files and the file-number counter survive, as they live in
    /// the persistent manifest.
    pub fn restart(&mut self, generator: Box<dyn IdGenerator>) {
        self.generator = generator;
        // The lease buffer is in-memory state too: a crash abandons its
        // unused remainder (those IDs are simply never assigned).
        if let Some(lease) = &mut self.lease {
            lease.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_core::algorithms::Cluster;
    use uuidp_core::id::IdSpace;
    use uuidp_core::traits::Algorithm;

    fn instance(id: u32, seed: u64) -> StoreInstance {
        let space = IdSpace::with_bits(32).unwrap();
        StoreInstance::new(id, Cluster::new(space).spawn(seed))
    }

    #[test]
    fn flush_assigns_sequential_identity_and_fresh_ids() {
        let mut inst = instance(3, 1);
        let a = inst.flush(4).unwrap();
        let b = inst.flush(4).unwrap();
        assert_eq!(a.identity.origin_instance, 3);
        assert_eq!(a.identity.file_number, 1);
        assert_eq!(b.identity.file_number, 2);
        assert_ne!(a.unique_id, b.unique_id);
        assert_eq!(inst.files().len(), 2);
        assert_eq!(inst.ids_drawn(), 2);
    }

    #[test]
    fn compact_replaces_inputs_with_one_output() {
        let mut inst = instance(0, 2);
        for _ in 0..4 {
            inst.flush(2).unwrap();
        }
        let out = inst.compact(&[0, 2], 8).unwrap();
        assert_eq!(inst.files().len(), 3); // 4 − 2 + 1
        assert!(inst.files().iter().any(|f| f == &out));
        assert_eq!(out.blocks, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate inputs")]
    fn compact_rejects_duplicates() {
        let mut inst = instance(0, 3);
        inst.flush(2).unwrap();
        inst.flush(2).unwrap();
        let _ = inst.compact(&[0, 0], 4);
    }

    #[test]
    fn migration_roundtrip_preserves_file() {
        let mut a = instance(0, 4);
        let mut b = instance(1, 5);
        let f = a.flush(4).unwrap();
        let released = a.release(0);
        assert_eq!(released, f);
        b.adopt(released);
        assert_eq!(b.files().len(), 1);
        assert_eq!(b.files()[0].identity.origin_instance, 0);
        assert!(a.files().is_empty());
    }
}
