//! # uuidp-kvstore — the system the paper is about
//!
//! A RocksDB-shaped distributed key-value-store substrate that makes the
//! UUIDP's stakes concrete. Multiple store instances create SST files and
//! assign them unique IDs *without coordination* (each instance embeds an
//! independent generator from `uuidp-core`); blocks are cached in a shared
//! block cache keyed by `(sst_unique_id, block_offset)` — the fixed-length
//! cache-key scheme of RocksDB PR #9126; files migrate between instances.
//!
//! An ID collision is not an abstract event here: it makes two files'
//! blocks alias in the cache, so a read returns *another file's data* with
//! no error anywhere. The [`audit`] layer is the measurement instrument
//! that catches both the raw collisions and the resulting silent
//! corruptions; the [`workload`] generator drives parameterized
//! flush/read/compact/migrate traffic so experiments (E13) can compare ID
//! algorithms end-to-end.
//!
//! ```
//! use uuidp_core::prelude::*;
//! use uuidp_kvstore::workload::{run_workload, WorkloadConfig};
//!
//! let space = IdSpace::with_bits(64).unwrap();
//! let algorithm = Cluster::new(space); // RocksDB's actual choice
//! let report = run_workload(&algorithm, WorkloadConfig::default(), 42);
//! assert_eq!(report.id_collisions, 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod cache;
pub mod cluster;
pub mod node;
pub mod sst;
pub mod workload;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::audit::{Audit, CacheCorruption, IdCollision};
    pub use crate::cache::{BlockCache, CacheStats};
    pub use crate::cluster::Deployment;
    pub use crate::node::StoreInstance;
    pub use crate::sst::{BlockPayload, CacheKey, FileIdentity, SstFile};
    pub use crate::workload::{run_workload, WorkloadConfig, WorkloadReport};
}
