//! Numeric building blocks: log-gamma, log-binomials, and safe
//! probability combinators, all in log space so that quantities like
//! `C(2^40, 2^20) / C(2^64, 2^20)` are representable.

use std::f64::consts::PI;

/// Natural log of the gamma function, Lanczos approximation (g = 7, 9
/// coefficients). Absolute error below 1e-13 for `x > 0.5`; the reflection
/// formula covers the rest. Accurate far beyond what collision-probability
/// comparisons need.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x.is_finite(), "ln_gamma needs finite input");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)`.
pub fn ln_factorial(n: u128) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; `-inf` when `k > n`.
///
/// For small `k` (or small `n − k`) uses the direct product
/// `Σᵢ ln(n − i) − ln k!`, which stays accurate even at `n = 2¹²⁷` where
/// the difference-of-lgammas form loses everything to cancellation.
pub fn ln_binomial(n: u128, k: u128) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    const DIRECT_LIMIT: u128 = 1 << 16;
    if k <= DIRECT_LIMIT {
        let mut acc = 0.0f64;
        for i in 0..k {
            acc += ((n - i) as f64).ln();
        }
        return acc - ln_factorial(k);
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln [C(a, d) / C(m, d)]` for `a ≤ m`, computed stably as
/// `Σ_{t<d} ln((a − t)/(m − t))`.
///
/// The two binomials individually can be astronomically large while their
/// ratio is a perfectly ordinary probability; differencing lgammas would
/// cancel catastrophically. `-inf` when `d > a` (the numerator vanishes).
pub fn ln_binomial_ratio(a: u128, m: u128, d: u128) -> f64 {
    assert!(a <= m, "ratio requires a <= m");
    if d > a {
        return f64::NEG_INFINITY;
    }
    if d == 0 || a == m {
        return 0.0;
    }
    const DIRECT_LIMIT: u128 = 1 << 22;
    if d <= DIRECT_LIMIT {
        let mut acc = 0.0f64;
        for t in 0..d {
            acc += (((a - t) as f64) / ((m - t) as f64)).ln();
        }
        return acc.min(0.0);
    }
    // Fallback for gigantic d: lgamma form (reduced precision, still
    // monotone enough for shape checks).
    (ln_binomial(a, d) - ln_binomial(m, d)).min(0.0)
}

/// `C(n, 2)` as f64 (saturating conversion for astronomically large `n`).
pub fn choose2(n: u128) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0
}

/// `1 − exp(x)` computed accurately for `x ≤ 0` (complement of a
/// log-probability).
pub fn one_minus_exp(x: f64) -> f64 {
    debug_assert!(x <= 0.0);
    -x.exp_m1()
}

/// Combines independent event probabilities: `1 − ∏(1 − pᵢ)`, computed in
/// log space to avoid catastrophic cancellation at tiny probabilities.
pub fn union_of_independent(probs: &[f64]) -> f64 {
    let mut log_none = 0.0f64;
    for &p in probs {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p >= 1.0 {
            return 1.0;
        }
        log_none += (-p).ln_1p();
    }
    one_minus_exp(log_none)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_factorial_small_cases() {
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            assert!((ln_factorial(n as u128) - f.ln()).abs() < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        for n in 0..20u128 {
            let mut row = vec![1u128];
            for _ in 0..n {
                let mut next = vec![1];
                for w in row.windows(2) {
                    next.push(w[0] + w[1]);
                }
                next.push(1);
                row = next;
            }
            for (k, &c) in row.iter().enumerate() {
                let got = ln_binomial(n, k as u128);
                assert!(
                    (got - (c as f64).ln()).abs() < 1e-9,
                    "C({n},{k}) = {c}, got ln = {got}"
                );
            }
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_binomial_handles_huge_arguments() {
        // C(2^64, 2) = 2^64·(2^64−1)/2; check against the direct formula.
        let n = 1u128 << 64;
        let direct = ((n as f64) * ((n - 1) as f64) / 2.0).ln();
        assert!((ln_binomial(n, 2) - direct).abs() < 1e-6);
    }

    #[test]
    fn union_of_independent_sanity() {
        assert!((union_of_independent(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert_eq!(union_of_independent(&[0.3, 1.0, 0.2]), 1.0);
        assert_eq!(union_of_independent(&[]), 0.0);
        // Tiny probabilities: union ≈ sum.
        let tiny = [1e-12, 2e-12, 3e-12];
        let u = union_of_independent(&tiny);
        assert!((u - 6e-12).abs() / 6e-12 < 1e-6);
    }

    #[test]
    fn choose2_values() {
        assert_eq!(choose2(0), 0.0);
        assert_eq!(choose2(1), 0.0);
        assert_eq!(choose2(2), 1.0);
        assert_eq!(choose2(10), 45.0);
    }
}
