//! The paper's collision-probability bounds as executable formulas.
//!
//! Every Θ/O/Ω statement is reproduced with its inner expression and
//! constant 1 (the paper's constants are not stated); experiments compare
//! *shape* — slopes, ratios across sweeps, crossovers — never absolute
//! values. Each function cites its source theorem.

use uuidp_adversary::profile::DemandProfile;

use crate::math::choose2;

/// Clamps an intensity to a probability: the paper's recurring
/// `min(1, ·)` safeguard.
#[inline]
pub fn clamp_prob(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// **Theorem 1**: `p_Cluster(D) = Θ(min(1, n‖D‖₁/m))`.
pub fn cluster(profile: &DemandProfile, m: u128) -> f64 {
    let n = profile.n() as f64;
    let l1 = profile.l1() as f64;
    clamp_prob(n * l1 / m as f64)
}

/// **Theorem 2**: `p_Bins(k)(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/(km) + n‖D‖₁/m +
/// n²k/m))`.
pub fn bins(profile: &DemandProfile, k: u128, m: u128) -> f64 {
    let n = profile.n() as f64;
    let l1 = profile.l1() as f64;
    let l2sq = profile.l2_squared() as f64;
    let (k, m) = (k as f64, m as f64);
    clamp_prob((l1 * l1 - l2sq) / (k * m) + n * l1 / m + n * n * k / m)
}

/// **Corollary 3**: `p_Random(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/m))`.
pub fn random(profile: &DemandProfile, m: u128) -> f64 {
    let l1 = profile.l1() as f64;
    let l2sq = profile.l2_squared() as f64;
    clamp_prob((l1 * l1 - l2sq) / m as f64)
}

/// **Corollary 5** (worst case over `D1(n, d)`): Cluster side,
/// `Θ(min(1, nd/m))`.
pub fn cluster_worst_case(n: usize, d: u128, m: u128) -> f64 {
    clamp_prob(n as f64 * d as f64 / m as f64)
}

/// **Corollary 5** (worst case over `D1(n, d)`): Random side,
/// `Θ(min(1, d²/m))`.
pub fn random_worst_case(d: u128, m: u128) -> f64 {
    let d = d as f64;
    clamp_prob(d * d / m as f64)
}

/// **Theorem 6**: for all but an `exp(−Θ(n))` fraction of `D ∈ D1(n, d)`,
/// `p*(D) = Ω(min(1, nd/m))` — the oblivious worst-case lower bound.
pub fn oblivious_lower_bound(n: usize, d: u128, m: u128) -> f64 {
    cluster_worst_case(n, d, m)
}

/// **Equation (4)** / Lemma 16: on the uniform profile `(h)ⁿ` the optimal
/// algorithm (Bins(h)) collides with probability `Θ(min(1, n²h/m))`.
pub fn uniform_optimum(n: usize, h: u128, m: u128) -> f64 {
    let n = n as f64;
    clamp_prob(n * n * h as f64 / m as f64)
}

/// **Lemma 7**: the adaptive nearest-pair adversary forces Cluster to
/// `Ω(min(1, n²d/m))`.
pub fn cluster_adaptive_lower_bound(n: usize, d: u128, m: u128) -> f64 {
    let n = n as f64;
    clamp_prob(n * n * d as f64 / m as f64)
}

/// **Theorem 8**: Cluster★ against any adaptive adversary in
/// `D1(d) ∩ D∞(n, m/(2 log m))`: `O(min(1, (nd/m)·log₂(1 + d/n)))`.
pub fn cluster_star_adaptive_bound(n: usize, d: u128, m: u128) -> f64 {
    let n = n as f64;
    let d = d as f64;
    clamp_prob((n * d / m as f64) * (1.0 + d / n).log2())
}

/// **Lemma 20**: for a rounded profile with rank distribution `s`,
/// `p*(D⁻) = Ω(min(1, (1/m)·Σᵢ C(sᵢ,2)·2ⁱ))`.
pub fn rank_lower_bound(rank_distribution: &[u128], m: u128) -> f64 {
    let sum: f64 = rank_distribution
        .iter()
        .enumerate()
        .map(|(idx, &s)| choose2(s) * 2f64.powi(idx as i32 + 1))
        .sum();
    clamp_prob(sum / m as f64)
}

/// **Lemma 22**: `p_Bins★(D⁻) = O((log m / m)·Σᵢ C(sᵢ,2)·2ⁱ)`.
pub fn bins_star_upper_bound(rank_distribution: &[u128], m: u128) -> f64 {
    let log_m = (m as f64).log2();
    clamp_prob(rank_lower_bound(rank_distribution, m) * log_m)
}

/// **Lemma 24**: `p*((i, j)) = Θ(i/m)` for `1 ≤ i ≤ j ≤ m/2`.
pub fn pair_optimum(i: u128, j: u128, m: u128) -> f64 {
    assert!(i >= 1 && i <= j, "requires 1 <= i <= j");
    assert!(j <= m / 2, "requires j <= m/2");
    clamp_prob(i as f64 / m as f64)
}

/// **Theorem 9 / Corollary 12**: Bins★'s competitive ratio bound,
/// `O(log₂ m)` — the quantity experiments compare measured ratios against.
pub fn bins_star_competitive_bound(m: u128) -> f64 {
    (m as f64).log2()
}

/// **Theorem 10 / Lemma 25**: under the hard distribution Φ every
/// algorithm has `E_Φ[p_A] = Ω(log²m / m)`.
pub fn phi_expected_lower_bound(m: u128) -> f64 {
    let lg = (m as f64).log2();
    clamp_prob(lg * lg / m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(v: &[u128]) -> DemandProfile {
        DemandProfile::new(v.to_vec())
    }

    #[test]
    fn clamping() {
        assert_eq!(clamp_prob(2.5), 1.0);
        assert_eq!(clamp_prob(-0.1), 0.0);
        assert_eq!(clamp_prob(0.25), 0.25);
    }

    #[test]
    fn cluster_formula() {
        // n=2, d=30, m=1000 → 2·30/1000.
        let p = profile(&[20, 10]);
        assert!((cluster(&p, 1000) - 0.06).abs() < 1e-12);
        // Saturation.
        assert_eq!(cluster(&p, 10), 1.0);
    }

    #[test]
    fn random_formula_is_birthdayish() {
        // (l1² − l2²)/m = (900 − 500)/1000.
        let p = profile(&[20, 10]);
        assert!((random(&p, 1000) - 0.4).abs() < 1e-12);
        // Singletons (1,1): (4 − 2)/m = 2/m, the birthday pair term.
        let q = profile(&[1, 1]);
        assert!((random(&q, 1000) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn bins_interpolates_random_and_coarse() {
        let p = profile(&[100, 100]);
        let m = 1 << 20;
        // k = 1 reduces to random + lower-order terms.
        let b1 = bins(&p, 1, m);
        let r = random(&p, m);
        assert!(b1 >= r && b1 <= r + 5e-4, "b1 = {b1}, r = {r}");
        // Larger k shrinks the pair term until the n²k/m term dominates.
        let b100 = bins(&p, 100, m);
        assert!(b100 < b1);
    }

    #[test]
    fn dominance_cluster_le_bins() {
        // Corollary 4: Cluster ≤ O(Bins(k)) for all k — with constant-1
        // formulas the inequality holds directly since n·l1/m is one of
        // Bins' three terms.
        for demands in [vec![5u128, 5], vec![100, 3, 1], vec![7, 7, 7, 7]] {
            let p = profile(&demands);
            let m = 1 << 24;
            for k in [1u128, 4, 64, 1024] {
                assert!(cluster(&p, m) <= bins(&p, k, m) + 1e-15);
            }
        }
    }

    #[test]
    fn adaptive_bounds_ordering() {
        // The adaptive lower bound for Cluster exceeds its oblivious bound
        // by the factor n; Cluster★'s bound sits in between for small n.
        let (n, d, m) = (16usize, 1u128 << 12, 1u128 << 30);
        let obl = cluster_worst_case(n, d, m);
        let adp = cluster_adaptive_lower_bound(n, d, m);
        assert!((adp / obl - n as f64).abs() < 1e-9);
        let cs = cluster_star_adaptive_bound(n, d, m);
        assert!(cs > obl && cs < adp);
    }

    #[test]
    fn rank_bound_matches_uniform_case() {
        // Uniform rounded profile (2^(i-1))^s: single rank term.
        let s = [0u128, 0, 4]; // four instances of demand 4
        let m = 1 << 20;
        let got = rank_lower_bound(&s, m);
        let expected = choose2(4) * 8.0 / m as f64;
        assert!((got - expected).abs() < 1e-15);
        let upper = bins_star_upper_bound(&s, m);
        assert!((upper / got - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pair_optimum_guards() {
        assert!((pair_optimum(4, 100, 1000) - 0.004).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "j <= m/2")]
    fn pair_optimum_rejects_large_j() {
        pair_optimum(4, 600, 1000);
    }

    #[test]
    fn phi_bound_scales_as_log_squared_over_m() {
        let m = 1u128 << 20;
        let got = phi_expected_lower_bound(m);
        assert!((got - 400.0 / m as f64).abs() < 1e-12);
    }
}
