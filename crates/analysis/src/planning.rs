//! Capacity planning: the practitioner-facing inverse of the paper's
//! bounds.
//!
//! The theorems answer "given `n`, `d`, `m`, how likely is a collision?".
//! Deployments ask the inverse questions:
//!
//! * *How many IDs can my fleet draw before exceeding a collision
//!   budget?* — [`safe_demand`]
//! * *How many ID bits do I need for a target workload?* —
//!   [`required_bits`]
//! * *When do the schemes cross over?* — [`crossover_demand`]
//!
//! All answers use the paper's leading-order expressions (Corollaries 3
//! and 5): Random `p ≈ d²/m`, Cluster `p ≈ nd/m`. They are planning
//! figures, not guarantees — the hidden Θ-constants are ≈ 1/2 to 1 in our
//! measurements (experiments E2/E3), so these estimates are mildly
//! conservative when used as upper limits on demand.

/// The scheme being planned for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// GUID-style uniform sampling: the birthday regime, `p ≈ d²/m`.
    Random,
    /// RocksDB-style sequential-from-random-start: `p ≈ n·d/m`.
    Cluster,
}

/// Maximum total demand `d` keeping the collision probability within
/// `budget`, for `n` instances over a `m`-sized universe.
///
/// # Panics
///
/// Panics unless `0 < budget < 1`, `n ≥ 1`, and `m ≥ 2`.
pub fn safe_demand(scheme: Scheme, budget: f64, n: u128, m_bits: u32) -> f64 {
    validate(budget, n, m_bits);
    let m = 2f64.powi(m_bits as i32);
    match scheme {
        Scheme::Random => (budget * m).sqrt(),
        Scheme::Cluster => budget * m / n as f64,
    }
}

/// Minimum ID width in bits so that `d` total IDs across `n` instances
/// stay within `budget`.
pub fn required_bits(scheme: Scheme, budget: f64, n: u128, d: f64) -> u32 {
    assert!(budget > 0.0 && budget < 1.0, "budget must be in (0, 1)");
    assert!(n >= 1 && d >= 1.0);
    let m = match scheme {
        Scheme::Random => d * d / budget,
        Scheme::Cluster => n as f64 * d / budget,
    };
    m.log2().ceil().max(1.0) as u32
}

/// The demand at which Cluster's collision probability overtakes
/// Random's is `d = n` (below it the all-singleton profiles make the two
/// coincide; above it Random loses by `d/n`). Returns `n` as f64 for
/// symmetry with the other planning functions.
pub fn crossover_demand(n: u128) -> f64 {
    n as f64
}

/// The capacity advantage of Cluster over Random at a fixed budget:
/// `d_cluster / d_random = √(budget·m)/n`. This is the paper's "orders of
/// magnitude beyond Random's capacity" quantified.
pub fn cluster_advantage(budget: f64, n: u128, m_bits: u32) -> f64 {
    validate(budget, n, m_bits);
    safe_demand(Scheme::Cluster, budget, n, m_bits) / safe_demand(Scheme::Random, budget, n, m_bits)
}

fn validate(budget: f64, n: u128, m_bits: u32) {
    assert!(budget > 0.0 && budget < 1.0, "budget must be in (0, 1)");
    assert!(n >= 1, "at least one instance");
    // Pure f64 arithmetic: unlike `IdSpace`, planning happily covers the
    // full 128-bit GUID width and beyond.
    assert!((1..=192).contains(&m_bits), "1..=192 ID bits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_demand_formulas() {
        // Random at 128 bits, budget 1e-6: √(1e-6 · 2^128) = 2^(64 − ~10).
        let d = safe_demand(Scheme::Random, 1e-6, 1024, 128);
        assert!(
            (d.log2() - (128.0 - 19.93) / 2.0).abs() < 0.1,
            "{}",
            d.log2()
        );
        // Cluster at the same point: 1e-6 · 2^128 / 2^10 = 2^(128−20−10).
        let d = safe_demand(Scheme::Cluster, 1e-6, 1024, 128);
        assert!((d.log2() - (128.0 - 19.93 - 10.0)).abs() < 0.1);
    }

    #[test]
    fn cluster_beats_random_at_scale() {
        // The paper's headline: at 128 bits Cluster's capacity advantage
        // is astronomical for any realistic fleet size.
        let adv = cluster_advantage(1e-9, 1 << 16, 128);
        assert!(adv.log2() > 30.0, "advantage 2^{:.1}", adv.log2());
        // At tiny m and huge n the advantage can invert (Random wins
        // below the d = n crossover).
        let adv = cluster_advantage(0.5, 1 << 20, 24);
        assert!(adv < 1.0);
    }

    #[test]
    fn required_bits_roundtrips_safe_demand() {
        for scheme in [Scheme::Random, Scheme::Cluster] {
            let (budget, n) = (1e-6, 256u128);
            let bits = 96u32;
            let d = safe_demand(scheme, budget, n, bits);
            let back = required_bits(scheme, budget, n, d);
            assert!(
                (back as i64 - bits as i64).abs() <= 1,
                "{scheme:?}: {bits} → d {d:.3e} → {back}"
            );
        }
    }

    #[test]
    fn required_bits_monotone_in_demand() {
        let a = required_bits(Scheme::Random, 1e-6, 16, 1e6);
        let b = required_bits(Scheme::Random, 1e-6, 16, 1e12);
        assert!(b > a);
    }

    #[test]
    fn crossover_is_n() {
        assert_eq!(crossover_demand(1024), 1024.0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn rejects_invalid_budget() {
        safe_demand(Scheme::Random, 1.5, 4, 64);
    }

    #[test]
    fn guid_inadequacy_headline() {
        // §1: "with companies operating at exabyte scales we are not far
        // from a world where Random with 128-bit IDs sees collisions."
        // At d = 2^64 objects, Random's p ≈ 1; Cluster with n = 2^20
        // instances still has p ≈ 2^(64+20−128) = 2^−44.
        let d = 2f64.powi(64);
        let p_random = d * d / 2f64.powi(128);
        assert!(p_random >= 1.0);
        let p_cluster = (1u128 << 20) as f64 * d / 2f64.powi(128);
        assert!(p_cluster < 1e-12);
    }
}
