//! Exact collision probabilities for structured cases.
//!
//! Where the paper's proofs yield closed forms with *no* hidden constants,
//! we implement them exactly; they anchor the Monte-Carlo engine (the
//! simulator must land inside the confidence interval of these values) and
//! serve as `p*` references in the competitive experiments.
//!
//! | Case | Source | Function |
//! |------|--------|----------|
//! | Cluster, any pair `(d₁, d₂)` | Thm 1 proof: `(d₁+d₂−1)/m` | [`cluster_pair`] |
//! | Cluster, union bounds | Thm 1 proof + Bonferroni | [`cluster_union_bounds`] |
//! | Cluster, `n ≤ 3`, small `m` | brute-force enumeration | [`cluster_enumerated`] |
//! | Random, any profile | disjoint-subset counting | [`random_exact`] |
//! | Bins(k), any profile | disjoint-bin counting | [`bins_exact`] |
//! | Uniform profile optimum | Lemma 16: `p* = p_Bins(h)` | [`uniform_p_star`] |

use uuidp_adversary::profile::DemandProfile;

use crate::math::{ln_binomial_ratio, one_minus_exp};

/// Exact Cluster collision probability for two instances (Theorem 1's
/// proof): `Pr[C₁₂] = (d₁ + d₂ − 1)/m`.
pub fn cluster_pair(d1: u128, d2: u128, m: u128) -> f64 {
    assert!(d1 >= 1 && d2 >= 1);
    if d1 + d2 > m {
        return 1.0;
    }
    ((d1 + d2 - 1) as f64 / m as f64).min(1.0)
}

/// Sandwich bounds on the exact Cluster collision probability for any
/// profile, from the pairwise-independence argument in Theorem 1's proof.
///
/// Upper: union bound `S₁ = Σ_{i<j} (dᵢ+dⱼ−1)/m`. Lower: the Bonferroni
/// inequality with pairwise-independent events, `S₁ − S₁²/2` (clamped at
/// 0) — tight when `S₁` is small, which is the regime of interest.
pub fn cluster_union_bounds(profile: &DemandProfile, m: u128) -> (f64, f64) {
    let d = profile.demands();
    let mut s1 = 0.0f64;
    for i in 0..d.len() {
        for j in (i + 1)..d.len() {
            s1 += cluster_pair(d[i], d[j], m);
        }
    }
    let upper = s1.min(1.0);
    let lower = (s1 - s1 * s1 / 2.0).max(0.0);
    (lower, upper)
}

/// Exact Cluster collision probability by brute force over all start
/// tuples. Exponential in `n`; restricted to `n ≤ 3` and `mⁿ ≤ 2²⁴`.
pub fn cluster_enumerated(profile: &DemandProfile, m: u128) -> f64 {
    let d = profile.demands();
    let n = d.len();
    assert!((2..=3).contains(&n), "enumeration supports n in {{2, 3}}");
    let states = (m as f64).powi(n as i32);
    assert!(states <= (1 << 24) as f64, "state space too large");
    let overlap = |xi: u128, di: u128, xj: u128, dj: u128| -> bool {
        // Arcs [xi, xi+di) and [xj, xj+dj) intersect mod m iff the forward
        // distance from xi to xj is < di or from xj to xi is < dj.
        let fwd = |a: u128, b: u128| if b >= a { b - a } else { m - a + b };
        fwd(xi, xj) < di || fwd(xj, xi) < dj
    };
    let mut collisions = 0u64;
    let mut total = 0u64;
    if n == 2 {
        // By symmetry, fix x₀ = 0 and scan x₁.
        for x1 in 0..m {
            total += 1;
            if overlap(0, d[0], x1, d[1]) {
                collisions += 1;
            }
        }
    } else {
        for x1 in 0..m {
            for x2 in 0..m {
                total += 1;
                if overlap(0, d[0], x1, d[1])
                    || overlap(0, d[0], x2, d[2])
                    || overlap(x1, d[1], x2, d[2])
                {
                    collisions += 1;
                }
            }
        }
    }
    collisions as f64 / total as f64
}

/// Exact Random collision probability: the `n` instances draw uniform
/// random subsets (of sizes `d₁, …, dₙ`) without replacement, and
///
/// ```text
/// Pr[no collision] = Π_i  C(m − Σ_{j<i} dⱼ, dᵢ) / C(m, dᵢ)
/// ```
///
/// computed in log space.
pub fn random_exact(profile: &DemandProfile, m: u128) -> f64 {
    if profile.l1() > m {
        return 1.0;
    }
    let mut ln_no_collision = 0.0f64;
    let mut used = 0u128;
    for &di in profile.demands() {
        ln_no_collision += ln_binomial_ratio(m - used, m, di);
        used += di;
    }
    one_minus_exp(ln_no_collision)
}

/// Exact Bins(k) collision probability for profiles that stay within the
/// bins (`dᵢ ≤ ⌊m/k⌋·k`): instance `i` occupies `⌈dᵢ/k⌉` uniform random
/// distinct bins, every shared bin is a collision (both instances emit the
/// bin's first ID), so
///
/// ```text
/// Pr[no collision] = Π_i  C(B − Σ_{j<i} bⱼ, bᵢ) / C(B, bᵢ),   B = ⌊m/k⌋.
/// ```
pub fn bins_exact(profile: &DemandProfile, k: u128, m: u128) -> f64 {
    assert!(k >= 1 && k <= m);
    let bins_total = m / k;
    let needs: Vec<u128> = profile.demands().iter().map(|&d| d.div_ceil(k)).collect();
    if profile.demands().iter().any(|&d| d > bins_total * k) {
        // Some instance spills into the leftover region after using every
        // bin; any second instance then shares a bin with it for certain.
        return 1.0;
    }
    if needs.iter().sum::<u128>() > bins_total {
        return 1.0;
    }
    let mut ln_no_collision = 0.0f64;
    let mut used = 0u128;
    for &bi in &needs {
        ln_no_collision += ln_binomial_ratio(bins_total - used, bins_total, bi);
        used += bi;
    }
    one_minus_exp(ln_no_collision)
}

/// **Lemma 16**: on the uniform profile `(h, …, h)` the optimum is
/// achieved by Bins(h); this is its exact collision probability — the
/// exact `p*` for uniform profiles.
pub fn uniform_p_star(n: usize, h: u128, m: u128) -> f64 {
    bins_exact(&DemandProfile::uniform(n, h), h, m)
}

/// The generalized birthday probability: `d` instances with one request
/// each (`1 − Π_{i<d} (1 − i/m)`), the paper's touchstone for Random.
pub fn birthday(d: u128, m: u128) -> f64 {
    if d > m {
        return 1.0;
    }
    let mut ln_no = 0.0f64;
    for i in 1..d {
        ln_no += (1.0 - i as f64 / m as f64).ln();
    }
    one_minus_exp(ln_no)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_pair_saturates_and_scales() {
        assert!((cluster_pair(5, 3, 100) - 0.07).abs() < 1e-12);
        assert_eq!(cluster_pair(60, 60, 100), 1.0);
        assert!((cluster_pair(1, 1, 100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cluster_enumerated_matches_pair_formula() {
        for (d1, d2, m) in [(1u128, 1u128, 32u128), (3, 5, 64), (10, 2, 100)] {
            let p = DemandProfile::pair(d1, d2);
            let exact = cluster_enumerated(&p, m);
            let formula = cluster_pair(d1, d2, m);
            assert!(
                (exact - formula).abs() < 1e-12,
                "({d1},{d2},m={m}): {exact} vs {formula}"
            );
        }
    }

    #[test]
    fn cluster_union_bounds_bracket_enumeration_for_n3() {
        let m = 128u128;
        let p = DemandProfile::new(vec![4, 6, 3]);
        let exact = cluster_enumerated(&p, m);
        let (lo, hi) = cluster_union_bounds(&p, m);
        assert!(
            lo <= exact + 1e-12 && exact <= hi + 1e-12,
            "exact {exact} outside [{lo}, {hi}]"
        );
        // The sandwich must be reasonably tight at small probabilities.
        assert!(hi - lo < 0.02);
    }

    #[test]
    fn random_exact_matches_birthday_for_singletons() {
        let m = 365u128;
        for d in [2u128, 10, 23, 50] {
            let p = DemandProfile::new(vec![1; d as usize]);
            let a = random_exact(&p, m);
            let b = birthday(d, m);
            assert!((a - b).abs() < 1e-10, "d = {d}: {a} vs {b}");
        }
    }

    #[test]
    fn birthday_paradox_landmark() {
        // 23 people, 365 days: ≈ 0.507.
        let p = birthday(23, 365);
        assert!((p - 0.5073).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn random_exact_certain_beyond_universe() {
        let p = DemandProfile::new(vec![5, 6]);
        assert_eq!(random_exact(&p, 10), 1.0);
    }

    #[test]
    fn bins_exact_reduces_to_random_at_k1() {
        let m = 100u128;
        for demands in [vec![3u128, 4], vec![2, 2, 2], vec![10, 1, 5]] {
            let p = DemandProfile::new(demands);
            let a = bins_exact(&p, 1, m);
            let b = random_exact(&p, m);
            assert!((a - b).abs() < 1e-10, "{:?}: {a} vs {b}", p.demands());
        }
    }

    #[test]
    fn bins_exact_two_instances_one_bin_each() {
        // Each instance occupies exactly 1 of B bins: collision = 1/B.
        let m = 100u128;
        let k = 10u128;
        let p = DemandProfile::new(vec![10, 10]);
        assert!((bins_exact(&p, k, m) - 0.1).abs() < 1e-10);
        // Partially filled bins share the same formula.
        let q = DemandProfile::new(vec![3, 7]);
        assert!((bins_exact(&q, k, m) - 0.1).abs() < 1e-10);
    }

    #[test]
    fn bins_exact_saturates_when_bins_run_out() {
        let m = 100u128;
        let k = 10u128; // 10 bins
        let p = DemandProfile::new(vec![60, 50]); // 6 + 5 bins > 10
        assert_eq!(bins_exact(&p, k, m), 1.0);
    }

    #[test]
    fn uniform_p_star_decreases_in_m_increases_in_n() {
        let p1 = uniform_p_star(4, 16, 1 << 12);
        let p2 = uniform_p_star(4, 16, 1 << 16);
        assert!(p2 < p1);
        let p3 = uniform_p_star(8, 16, 1 << 12);
        assert!(p3 > p1);
    }

    #[test]
    fn uniform_p_star_tracks_eq4_shape() {
        // Equation (4): Θ(min(1, n²h/m)). Check the ratio stays bounded
        // over a sweep.
        for (n, h, m) in [
            (2usize, 8u128, 1u128 << 16),
            (8, 32, 1 << 20),
            (16, 4, 1 << 18),
        ] {
            let exact = uniform_p_star(n, h, m);
            let theta = (n * n) as f64 * h as f64 / m as f64;
            let ratio = exact / theta;
            assert!(
                (0.2..=1.5).contains(&ratio),
                "(n={n}, h={h}, m={m}): exact {exact:.3e}, theta {theta:.3e}"
            );
        }
    }
}
