//! Collision-*time* distributions: when does the first collision happen?
//!
//! The paper bounds the collision *probability* of a fixed demand; an
//! operator watching a live fleet cares about the distribution of the
//! first-collision time `T` under steady traffic. For balanced
//! round-robin traffic over `n` instances these are computable:
//!
//! * **Random** — exact: after `t` total requests under round-robin, the
//!   requesting instance has drawn `⌊t/n⌋` IDs and the others hold
//!   `t − ⌊t/n⌋` distinct IDs (conditioned on no collision yet), so
//!   `P(T > t) = Π_{i<t} (1 − other(i)/(m − own(i)))`.
//! * **Cluster** — continuous-spacing approximation: the first collision
//!   happens when some instance's arc reaches the next start clockwise;
//!   with all arcs at length `ℓ = ⌈t/n⌉`, all `n` spacings of a uniform
//!   circle split must exceed `ℓ`, giving
//!   `P(T > t) ≈ (1 − nℓ/m)₊^(n−1)` (exact in the continuum limit).
//!
//! Both are validated against simulation in the integration tests.

/// Classic birthday survival: `P(T > t)` when every request is a fresh
/// uniform draw (the `n → ∞` limit of Random), `Π_{i<t}(1 − i/m)`.
pub fn birthday_survival(t: u64, m: u128) -> f64 {
    if t as u128 > m {
        return 0.0;
    }
    let mut ln_p = 0.0f64;
    for i in 0..t {
        ln_p += (1.0 - i as f64 / m as f64).ln();
    }
    ln_p.exp()
}

/// Expected first-collision time of the classic birthday process,
/// `E[T] = Σ_t P(T > t)` (≈ `√(πm/2)` for large `m`).
pub fn birthday_expected_time(m: u128) -> f64 {
    let mut total = 0.0f64;
    let mut ln_p = 0.0f64;
    let mut t = 0u64;
    loop {
        let p = ln_p.exp();
        total += p;
        if p < 1e-12 || t as u128 >= m {
            break;
        }
        ln_p += (1.0 - t as f64 / m as f64).ln();
        t += 1;
    }
    total
}

/// Exact survival of Random under round-robin over `n` instances:
/// `P(T > t)`.
pub fn random_round_robin_survival(t: u64, n: u64, m: u128) -> f64 {
    assert!(n >= 1);
    let m = m as f64;
    let mut ln_p = 0.0f64;
    for i in 0..t {
        let own = (i / n) as f64; // IDs already drawn by the requester
        let others = i as f64 - own; // distinct IDs held elsewhere
        let avail = m - own;
        if others >= avail {
            return 0.0;
        }
        ln_p += (1.0 - others / avail).ln();
    }
    ln_p.exp()
}

/// Expected first-collision time of Random under round-robin.
pub fn random_expected_time(n: u64, m: u128) -> f64 {
    let mut total = 0.0f64;
    let mut t = 0u64;
    loop {
        let p = random_round_robin_survival(t, n, m);
        total += p;
        t += 1;
        if p < 1e-9 {
            break;
        }
    }
    total
}

/// Continuum approximation of Cluster's survival under round-robin:
/// `P(T > t) ≈ (1 − n·⌈t/n⌉/m)₊^(n−1)`.
pub fn cluster_round_robin_survival(t: u64, n: u64, m: u128) -> f64 {
    assert!(n >= 1);
    let ell = t.div_ceil(n) as f64;
    let x = 1.0 - (n as f64 * ell) / m as f64;
    if x <= 0.0 {
        0.0
    } else {
        x.powi(n as i32 - 1)
    }
}

/// Expected first-collision time of Cluster under round-robin (continuum
/// approximation): `E[T] ≈ m/(n·n) · n = m/n` scaled by the spacing
/// integral; computed by summing the survival curve.
pub fn cluster_expected_time(n: u64, m: u128) -> f64 {
    // Sum in per-round steps of n requests to keep this O(m/n) at worst,
    // with early exit once survival is negligible.
    let mut total = 0.0f64;
    let mut t = 0u64;
    loop {
        let p = cluster_round_robin_survival(t, n, m);
        total += p * n as f64; // survival is flat within a round
        t += n;
        if p < 1e-9 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birthday_survival_landmarks() {
        // P(T > 23) on 365 days ≈ 0.4927 (complement of the paradox).
        let p = birthday_survival(23, 365);
        assert!((p - 0.4927).abs() < 1e-3, "p = {p}");
        assert_eq!(birthday_survival(366, 365), 0.0);
        assert_eq!(birthday_survival(0, 365), 1.0);
    }

    #[test]
    fn birthday_expected_time_matches_asymptotic() {
        // E[T] → √(πm/2) + 2/3.
        for m in [1u128 << 10, 1 << 16, 1 << 20] {
            let exact = birthday_expected_time(m);
            let asym = (std::f64::consts::PI * m as f64 / 2.0).sqrt() + 2.0 / 3.0;
            let rel = (exact - asym).abs() / asym;
            assert!(rel < 0.01, "m = {m}: exact {exact}, asym {asym}");
        }
    }

    #[test]
    fn random_round_robin_approaches_birthday_for_large_n() {
        // With n ≥ t, round-robin Random *is* the birthday process.
        let m = 1u128 << 16;
        for t in [10u64, 100, 300] {
            let a = random_round_robin_survival(t, 1 << 20, m);
            let b = birthday_survival(t, m);
            assert!((a - b).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn random_small_n_survives_longer_than_birthday() {
        // Fewer instances ⇒ more of the drawn IDs are "own" (can't
        // collide) ⇒ survival is higher.
        let m = 1u128 << 16;
        let t = 400u64;
        let few = random_round_robin_survival(t, 2, m);
        let many = random_round_robin_survival(t, 1 << 20, m);
        assert!(few > many);
    }

    #[test]
    fn cluster_survival_shape() {
        let m = 1u128 << 20;
        let n = 16u64;
        assert_eq!(cluster_round_robin_survival(0, n, m), 1.0);
        // Monotone nonincreasing in t.
        let mut prev = 1.0;
        for t in (0..100_000).step_by(5000) {
            let p = cluster_round_robin_survival(t, n, m);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
        // Certain collision once the arcs cover the circle.
        assert_eq!(cluster_round_robin_survival((m as u64) + 1, n, m), 0.0);
    }

    #[test]
    fn cluster_outlives_random_by_the_capacity_factor() {
        // E[T_cluster]/E[T_random] ≈ (m/n)/√m = √m/n, the paper's
        // capacity story in expectation form.
        let m = 1u128 << 20;
        let n = 8u64;
        let tc = cluster_expected_time(n, m);
        let tr = random_expected_time(n, m);
        let predicted = (m as f64).sqrt() / n as f64;
        let ratio = tc / tr;
        assert!(
            ratio > predicted * 0.2 && ratio < predicted * 5.0,
            "ratio {ratio:.1} vs predicted scale {predicted:.1}"
        );
    }
}
