//! Numeric verification helpers for the paper's auxiliary lemmas.
//!
//! These lemmas carry the probabilistic machinery of the main theorems.
//! We implement them as *checkable* numeric statements so property tests
//! can hammer them across their whole domains — a reproduction of the
//! paper's internal consistency, not just its headlines.

use crate::math::choose2;

/// **Lemma 13** (pairwise-independent union): for pairwise independent
/// events with probabilities `probs`, the probability of the union lies in
/// the returned `(lower, upper)` sandwich:
///
/// * upper: the union bound `min(1, Σpᵢ)`;
/// * lower: the Bonferroni step from the proof. With `S = Σpᵢ`:
///   if `S ≤ 2/3` the proof gives `(1 − S)·S ≥ S/3`; otherwise the proof's
///   case analysis guarantees at least `1/9`.
pub fn lemma13_bounds(probs: &[f64]) -> (f64, f64) {
    let s: f64 = probs.iter().copied().sum();
    let upper = s.min(1.0);
    let lower = if s <= 2.0 / 3.0 {
        ((1.0 - s) * s).max(0.0)
    } else {
        1.0 / 9.0
    };
    (lower.min(upper), upper)
}

/// Exact probability that `n` balls thrown independently into bins with
/// probabilities `probs` all land in distinct bins:
/// `n! · e_n(p₁, …, p_ℓ)` where `e_n` is the elementary symmetric
/// polynomial, computed by the standard DP in `O(ℓ·n)`.
///
/// This is the quantity **Lemma 15** says is maximized by the uniform
/// distribution.
pub fn all_distinct_probability(n: usize, probs: &[f64]) -> f64 {
    assert!(n >= 1);
    let total: f64 = probs.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "probabilities must sum to 1 (got {total})"
    );
    if n > probs.len() {
        return 0.0;
    }
    // e[k] after processing a prefix = elementary symmetric poly of degree k.
    let mut e = vec![0.0f64; n + 1];
    e[0] = 1.0;
    for &p in probs {
        for k in (1..=n).rev() {
            e[k] += e[k - 1] * p;
        }
    }
    let n_factorial: f64 = (1..=n).map(|i| i as f64).product();
    (n_factorial * e[n]).clamp(0.0, 1.0)
}

/// **Lemma 15** restated as a checkable predicate: the uniform
/// distribution maximizes [`all_distinct_probability`]. Returns the pair
/// `(uniform_value, given_value)` for callers to assert on.
pub fn lemma15_compare(n: usize, probs: &[f64]) -> (f64, f64) {
    let uniform = vec![1.0 / probs.len() as f64; probs.len()];
    (
        all_distinct_probability(n, &uniform),
        all_distinct_probability(n, probs),
    )
}

/// **Lemma 21(i)**: `C(x+y, 2) ≤ 3·C(x,2) + 2x + (3/2)·C(y,2) + y/2` for
/// all `x, y ≥ 0`. Returns `(lhs, rhs)`.
pub fn lemma21_sides(x: u128, y: u128) -> (f64, f64) {
    let lhs = choose2(x + y);
    let rhs = 3.0 * choose2(x) + 2.0 * x as f64 + 1.5 * choose2(y) + y as f64 / 2.0;
    (lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma13_bounds_are_ordered_and_sane() {
        let cases: &[&[f64]] = &[
            &[0.01, 0.02, 0.03],
            &[0.2, 0.2, 0.2],
            &[0.5, 0.5, 0.5],
            &[1e-9; 5],
        ];
        for probs in cases {
            let (lo, hi) = lemma13_bounds(probs);
            assert!(lo <= hi, "{probs:?}");
            assert!(lo >= 0.0 && hi <= 1.0);
            // For pairwise independent events, inclusion-exclusion truth:
            // P(∪) ≥ S − Σ_{i<j} pᵢpⱼ ≥ lower in the small-S regime.
            let s: f64 = probs.iter().sum();
            if s <= 2.0 / 3.0 {
                let pair_sum: f64 = {
                    let mut acc = 0.0;
                    for i in 0..probs.len() {
                        for j in (i + 1)..probs.len() {
                            acc += probs[i] * probs[j];
                        }
                    }
                    acc
                };
                assert!(s - pair_sum >= lo - 1e-12);
            }
        }
    }

    #[test]
    fn all_distinct_matches_birthday_for_uniform() {
        // n balls into ℓ uniform bins: ∏ (1 − i/ℓ).
        let l = 20usize;
        let probs = vec![1.0 / l as f64; l];
        for n in 1..=6usize {
            let expected: f64 = (0..n).map(|i| 1.0 - i as f64 / l as f64).product();
            let got = all_distinct_probability(n, &probs);
            assert!(
                (got - expected).abs() < 1e-10,
                "n = {n}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn all_distinct_zero_when_more_balls_than_bins() {
        let probs = vec![0.5, 0.5];
        assert_eq!(all_distinct_probability(3, &probs), 0.0);
    }

    #[test]
    fn lemma15_uniform_beats_skewed() {
        // A deliberately skewed distribution over 4 bins, 3 balls.
        let skewed = [0.7, 0.1, 0.1, 0.1];
        let (uniform, given) = lemma15_compare(3, &skewed);
        assert!(
            uniform > given,
            "uniform {uniform} must beat skewed {given}"
        );
        // And the uniform case is a fixed point.
        let flat = [0.25; 4];
        let (u2, g2) = lemma15_compare(3, &flat);
        assert!((u2 - g2).abs() < 1e-12);
    }

    #[test]
    fn lemma21_holds_on_a_grid() {
        for x in 0..50u128 {
            for y in 0..50u128 {
                let (lhs, rhs) = lemma21_sides(x, y);
                assert!(lhs <= rhs + 1e-9, "violated at x={x}, y={y}: {lhs} > {rhs}");
            }
        }
    }
}
