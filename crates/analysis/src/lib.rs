//! # uuidp-analysis — the paper's mathematics, executable
//!
//! Three layers of predictions against which simulations are compared:
//!
//! * [`theory`] — every Θ/O/Ω bound from the paper as a formula (shape
//!   predictors; the paper's constants are not specified);
//! * [`exact`] — closed forms with *no* hidden constants (Cluster pairs,
//!   Random/Bins disjointness counting, the uniform-profile optimum of
//!   Lemma 16, brute-force enumeration for tiny cases);
//! * [`competitive`] — concrete `p*(D)` bounds for the profile families of
//!   the competitive analysis (Lemmas 16, 20, 24; Theorem 10's Φ).
//!
//! [`inequalities`] exposes the auxiliary lemmas (13, 15, 21) as checkable
//! numeric statements for property tests, and [`math`] holds the log-space
//! numerics underneath it all.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod competitive;
pub mod distribution;
pub mod exact;
pub mod inequalities;
pub mod math;
pub mod planning;
pub mod theory;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::competitive::{
        competitive_ratio, pair_p_star_bounds, phi_p_star_upper, rounded_p_star_lower, Bounds,
    };
    pub use crate::distribution;
    pub use crate::exact::{
        bins_exact, birthday, cluster_enumerated, cluster_pair, cluster_union_bounds, random_exact,
        uniform_p_star,
    };
    pub use crate::planning::{
        cluster_advantage, crossover_demand, required_bits, safe_demand, Scheme,
    };
    pub use crate::theory;
}
