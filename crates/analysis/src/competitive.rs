//! Competitive analysis machinery: concrete bounds on `p*(D)` and ratio
//! computation.
//!
//! The competitive ratio compares `p_A(D)` against the best achievable
//! `p*(D) = min_{A'} p_{A'}(D)`. `p*` has no general closed form, but the
//! paper pins it down for the profile families the experiments use:
//!
//! * uniform profiles — exactly (Lemma 16: `p* = p_Bins(h)`);
//! * two-instance profiles `(i, j)` — within constants (Lemma 24), with
//!   explicit upper/lower witnesses;
//! * rounded profiles — from below via the rank decomposition (Lemma 20).

use uuidp_adversary::profile::{DemandProfile, PhiDistribution};
use uuidp_core::id::IdSpace;

use crate::exact::{bins_exact, uniform_p_star};
use crate::math::union_of_independent;

/// Two-sided bounds on a quantity known within constant factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
}

impl Bounds {
    /// Whether `x` lies within the bounds (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// Bounds on `p*((i, j)))` for `1 ≤ i ≤ j` (Lemma 24 made concrete).
///
/// * Lower: `p*((i,j)) ≥ p*((i,i)) = p_Bins(i)((i,i))` on `[m]`
///   (monotonicity in demand + Lemma 16), computed exactly.
/// * Upper: the SetAside(i, j) witness — Bins(i) on `m − (j − i)` IDs plus
///   a hard-wired tail — collides exactly like Bins(i) on the reduced
///   space.
pub fn pair_p_star_bounds(i: u128, j: u128, m: u128) -> Bounds {
    assert!(i >= 1 && i <= j && j <= m);
    let lower = uniform_p_star(2, i, m);
    let reduced = m - (j - i);
    let upper = if reduced >= i {
        bins_exact(&DemandProfile::uniform(2, i), i, reduced)
    } else {
        1.0
    };
    Bounds { lower, upper }
}

/// Lower bound on `p*(D)` via the rank decomposition of `D⁻` (Lemma 20
/// with exact per-rank optima instead of Θ-envelopes).
///
/// For each rank `i` with `sᵢ ≥ 2` instances of demand `2^(i−1)`, any
/// algorithm collides among them with probability at least
/// `p_Bins(2^(i−1))` on the uniform sub-profile; ranks involve disjoint
/// instance sets, so the events are independent.
pub fn rounded_p_star_lower(profile: &DemandProfile, m: u128) -> f64 {
    let rounded = profile.rounded();
    let ranks = rounded.rank_distribution();
    let per_rank: Vec<f64> = ranks
        .iter()
        .enumerate()
        .filter(|(_, &s)| s >= 2)
        .map(|(idx, &s)| uniform_p_star(s as usize, 1u128 << idx, m))
        .collect();
    union_of_independent(&per_rank)
}

/// `p_A(D) / p*(D)`-style ratio with care at the degenerate ends.
pub fn competitive_ratio(p_measured: f64, p_star: f64) -> f64 {
    if p_star <= 0.0 {
        if p_measured <= 0.0 {
            f64::NAN
        } else {
            f64::INFINITY
        }
    } else {
        p_measured / p_star
    }
}

/// Upper bound on `E_Φ[p*(D)]` under the Theorem 10 hard distribution:
/// term-by-term SetAside witnesses. Lemma 25 + Theorem 10 show every
/// algorithm's `E_Φ[p_A]` exceeds this by `Ω(log m)`.
pub fn phi_p_star_upper(space: IdSpace) -> f64 {
    let phi = PhiDistribution::new(space);
    let m = space.size();
    phi.enumerate()
        .map(|(d, prob)| {
            let (i, j) = (d.demand(0).min(d.demand(1)), d.demand(0).max(d.demand(1)));
            prob * pair_p_star_bounds(i, j, m).upper
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_bounds_are_ordered_and_tightish() {
        let m = 1u128 << 16;
        for (i, j) in [(1u128, 1u128), (1, 100), (8, 8), (16, 1024), (64, 4096)] {
            let b = pair_p_star_bounds(i, j, m);
            assert!(b.lower <= b.upper + 1e-15, "({i},{j}): {b:?}");
            // Lemma 24 says both are Θ(i/m): within a small constant.
            let theta = i as f64 / m as f64;
            assert!(b.lower >= theta * 0.2, "({i},{j}): lower {:.3e}", b.lower);
            assert!(b.upper <= theta * 3.0, "({i},{j}): upper {:.3e}", b.upper);
        }
    }

    #[test]
    fn pair_bounds_contains() {
        let b = Bounds {
            lower: 0.1,
            upper: 0.2,
        };
        assert!(b.contains(0.15));
        assert!(!b.contains(0.3));
    }

    #[test]
    fn rounded_lower_bound_monotone_in_load() {
        let m = 1u128 << 20;
        let light = DemandProfile::new(vec![4, 4, 4, 4]);
        let heavy = DemandProfile::new(vec![64, 64, 64, 64]);
        let pl = rounded_p_star_lower(&light, m);
        let ph = rounded_p_star_lower(&heavy, m);
        assert!(
            ph > pl,
            "heavier uniform load must have larger p*: {pl} vs {ph}"
        );
    }

    #[test]
    fn rounded_lower_bound_counts_only_paired_ranks() {
        // (1, 2, 4, 8) rounds to (1, 2, 4, 4): the unique largest entry is
        // clipped to the runner-up, so the only rank with a pair is 4.
        let m = 1u128 << 20;
        let p = DemandProfile::new(vec![1, 2, 4, 8]);
        let got = rounded_p_star_lower(&p, m);
        let expected = crate::exact::uniform_p_star(2, 4, m);
        assert!(
            (got - expected).abs() < 1e-12,
            "got {got:.3e}, expected {expected:.3e}"
        );
    }

    #[test]
    fn competitive_ratio_edge_cases() {
        assert!((competitive_ratio(0.2, 0.1) - 2.0).abs() < 1e-12);
        assert!(competitive_ratio(0.1, 0.0).is_infinite());
        assert!(competitive_ratio(0.0, 0.0).is_nan());
    }

    #[test]
    fn phi_p_star_upper_is_order_log_m_over_m() {
        // Theorem 10's proof: E_Φ[p*] = O(log m / m).
        let space = IdSpace::new(1 << 20).unwrap();
        let v = phi_p_star_upper(space);
        let m = (1u128 << 20) as f64;
        let log_m = m.log2();
        assert!(v > 0.0);
        assert!(
            v <= 4.0 * log_m / m,
            "E_Φ[p*] = {v:.3e} should be O(log m / m) = {:.3e}",
            log_m / m
        );
    }
}
