//! The ID universe `[m]` and modular ring arithmetic on it.
//!
//! The paper works with a universe `[m] = {1, …, m}`. We use the
//! zero-based representation `{0, …, m−1}` internally, which is the natural
//! encoding for modular arithmetic; nothing in the analysis depends on the
//! labels of the IDs (every algorithm in the paper is invariant under
//! relabeling except for the *order within* runs/bins, which the zero-based
//! encoding preserves).
//!
//! `m` may be as large as 2¹²⁷ so that the sum of any two elements of the
//! universe still fits in a `u128` without overflow. This covers the paper's
//! motivating regime (128-bit GUIDs, exabyte-scale object counts) with room
//! to spare.

use std::fmt;

/// A single identifier drawn from an [`IdSpace`].
///
/// `Id` is a plain 128-bit value; it is only meaningful relative to the
/// `IdSpace` it was drawn from. The `Ord` implementation is the natural
/// integer order, which is what the paper's "return IDs of a bin in
/// increasing order" refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u128);

impl Id {
    /// The raw value of this ID.
    #[inline]
    pub const fn value(self) -> u128 {
        self.0
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u128> for Id {
    #[inline]
    fn from(v: u128) -> Self {
        Id(v)
    }
}

impl From<Id> for u128 {
    #[inline]
    fn from(id: Id) -> Self {
        id.0
    }
}

/// The largest supported universe size: 2¹²⁷.
///
/// Capping `m` at 2¹²⁷ guarantees `a + b` never overflows `u128` for
/// `a, b < m`, so all modular arithmetic below is branch-light and safe.
pub const MAX_UNIVERSE: u128 = 1 << 127;

/// The universe `[m]` of identifiers, with circular (mod `m`) arithmetic.
///
/// All the paper's algorithms view the universe as a cycle: Cluster wraps
/// around after `m − 1`, runs and bins are arcs of the cycle. `IdSpace`
/// centralizes that arithmetic.
///
/// # Examples
///
/// ```
/// use uuidp_core::id::{Id, IdSpace};
///
/// let space = IdSpace::new(20).unwrap();
/// assert_eq!(space.add(Id(19), 1), Id(0));          // wrap-around
/// assert_eq!(space.forward_distance(Id(18), Id(3)), 5);
/// assert_eq!(space.circular_distance(Id(18), Id(3)), 5);
/// assert_eq!(space.circular_distance(Id(3), Id(18)), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdSpace {
    m: u128,
}

/// Error returned when constructing an [`IdSpace`] with an unsupported size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdSpaceError {
    /// The universe must contain at least one ID.
    Empty,
    /// The universe may not exceed [`MAX_UNIVERSE`].
    TooLarge(u128),
}

impl fmt::Display for IdSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdSpaceError::Empty => write!(f, "universe size m must be at least 1"),
            IdSpaceError::TooLarge(m) => {
                write!(f, "universe size m = {m} exceeds the maximum 2^127")
            }
        }
    }
}

impl std::error::Error for IdSpaceError {}

impl IdSpace {
    /// Creates the universe `{0, …, m−1}`.
    pub fn new(m: u128) -> Result<Self, IdSpaceError> {
        if m == 0 {
            return Err(IdSpaceError::Empty);
        }
        if m > MAX_UNIVERSE {
            return Err(IdSpaceError::TooLarge(m));
        }
        Ok(IdSpace { m })
    }

    /// Creates the universe of all `bits`-bit IDs, i.e. `m = 2^bits`.
    ///
    /// `bits` must be at most 127.
    pub fn with_bits(bits: u32) -> Result<Self, IdSpaceError> {
        if bits > 127 {
            return Err(IdSpaceError::TooLarge(u128::MAX));
        }
        IdSpace::new(1u128 << bits)
    }

    /// The universe size `m`.
    #[inline]
    pub const fn size(self) -> u128 {
        self.m
    }

    /// `⌈log₂ m⌉`, clamped below at 1. Used by Bins★'s chunk geometry and by
    /// several of the paper's bounds (`log m` always means `log₂`).
    #[inline]
    pub fn log2_ceil(self) -> u32 {
        if self.m <= 2 {
            1
        } else {
            128 - (self.m - 1).leading_zeros()
        }
    }

    /// `⌊log₂ m⌋`.
    #[inline]
    pub fn log2_floor(self) -> u32 {
        127 - self.m.leading_zeros()
    }

    /// Whether `id` belongs to this universe.
    #[inline]
    pub fn contains(self, id: Id) -> bool {
        id.0 < self.m
    }

    /// `(id + delta) mod m`.
    ///
    /// `delta` may be any value below `m`; `id` must belong to the universe.
    #[inline]
    pub fn add(self, id: Id, delta: u128) -> Id {
        debug_assert!(self.contains(id));
        debug_assert!(delta < self.m || self.m == 1);
        let s = id.0 + (delta % self.m);
        Id(if s >= self.m { s - self.m } else { s })
    }

    /// `(id − delta) mod m`.
    #[inline]
    pub fn sub(self, id: Id, delta: u128) -> Id {
        debug_assert!(self.contains(id));
        let d = delta % self.m;
        Id(if id.0 >= d {
            id.0 - d
        } else {
            id.0 + self.m - d
        })
    }

    /// The successor of `id` on the cycle (wraps `m − 1 → 0`).
    #[inline]
    pub fn next(self, id: Id) -> Id {
        self.add(id, 1)
    }

    /// Number of steps to walk *forward* (in increasing direction, wrapping)
    /// from `a` to `b`. Zero iff `a == b`.
    #[inline]
    pub fn forward_distance(self, a: Id, b: Id) -> u128 {
        debug_assert!(self.contains(a) && self.contains(b));
        if b.0 >= a.0 {
            b.0 - a.0
        } else {
            self.m - a.0 + b.0
        }
    }

    /// The circular distance `min(forward(a,b), forward(b,a))`.
    ///
    /// This is the notion of "closeness" the Lemma 7 adversary exploits:
    /// two Cluster instances whose starting IDs are at circular distance
    /// less than the remaining demand can be forced to collide.
    #[inline]
    pub fn circular_distance(self, a: Id, b: Id) -> u128 {
        let f = self.forward_distance(a, b);
        f.min(self.m - f)
    }

    /// Iterates over the whole universe in increasing order.
    ///
    /// Intended for tests and tiny exact computations only; panics if
    /// `m > 2^24` to guard against accidental use at scale.
    pub fn iter_all(self) -> impl Iterator<Item = Id> {
        assert!(
            self.m <= 1 << 24,
            "iter_all is for small universes only (m = {})",
            self.m
        );
        (0..self.m).map(Id)
    }
}

impl fmt::Display for IdSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[m={}]", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_universe() {
        assert_eq!(IdSpace::new(0), Err(IdSpaceError::Empty));
    }

    #[test]
    fn new_rejects_oversized_universe() {
        let too_big = MAX_UNIVERSE + 1;
        assert_eq!(IdSpace::new(too_big), Err(IdSpaceError::TooLarge(too_big)));
        assert!(IdSpace::new(MAX_UNIVERSE).is_ok());
    }

    #[test]
    fn with_bits_constructs_power_of_two() {
        assert_eq!(IdSpace::with_bits(0).unwrap().size(), 1);
        assert_eq!(IdSpace::with_bits(10).unwrap().size(), 1024);
        assert_eq!(IdSpace::with_bits(127).unwrap().size(), MAX_UNIVERSE);
        assert!(IdSpace::with_bits(128).is_err());
    }

    #[test]
    fn add_wraps_around() {
        let s = IdSpace::new(20).unwrap();
        assert_eq!(s.add(Id(0), 0), Id(0));
        assert_eq!(s.add(Id(19), 1), Id(0));
        assert_eq!(s.add(Id(10), 15), Id(5));
        assert_eq!(s.add(Id(19), 19), Id(18));
    }

    #[test]
    fn sub_wraps_around() {
        let s = IdSpace::new(20).unwrap();
        assert_eq!(s.sub(Id(0), 1), Id(19));
        assert_eq!(s.sub(Id(5), 10), Id(15));
        assert_eq!(s.sub(Id(5), 5), Id(0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let s = IdSpace::new(97).unwrap();
        for a in [0u128, 1, 50, 96] {
            for d in [0u128, 1, 48, 96] {
                assert_eq!(s.sub(s.add(Id(a), d), d), Id(a));
            }
        }
    }

    #[test]
    fn forward_distance_basics() {
        let s = IdSpace::new(20).unwrap();
        assert_eq!(s.forward_distance(Id(3), Id(3)), 0);
        assert_eq!(s.forward_distance(Id(3), Id(7)), 4);
        assert_eq!(s.forward_distance(Id(7), Id(3)), 16);
        assert_eq!(s.forward_distance(Id(19), Id(0)), 1);
    }

    #[test]
    fn circular_distance_is_symmetric_and_bounded() {
        let s = IdSpace::new(21).unwrap();
        for a in 0..21u128 {
            for b in 0..21u128 {
                let d1 = s.circular_distance(Id(a), Id(b));
                let d2 = s.circular_distance(Id(b), Id(a));
                assert_eq!(d1, d2);
                assert!(d1 <= 21 / 2);
                assert_eq!(d1 == 0, a == b);
            }
        }
    }

    #[test]
    fn unit_universe_arithmetic() {
        let s = IdSpace::new(1).unwrap();
        assert_eq!(s.add(Id(0), 0), Id(0));
        assert_eq!(s.next(Id(0)), Id(0));
        assert_eq!(s.forward_distance(Id(0), Id(0)), 0);
    }

    #[test]
    fn log2_helpers() {
        let cases = [
            (1u128, 1u32, 0u32),
            (2, 1, 1),
            (3, 2, 1),
            (4, 2, 2),
            (20, 5, 4),
            (32, 5, 5),
            (1 << 64, 64, 64),
        ];
        for (m, ceil, floor) in cases {
            let s = IdSpace::new(m).unwrap();
            assert_eq!(s.log2_ceil(), ceil, "ceil for m={m}");
            assert_eq!(s.log2_floor(), floor, "floor for m={m}");
        }
    }

    #[test]
    fn iter_all_yields_every_id_once() {
        let s = IdSpace::new(16).unwrap();
        let ids: Vec<_> = s.iter_all().collect();
        assert_eq!(ids.len(), 16);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0, i as u128);
        }
    }
}
