//! Reusable bulk-lease buffers over [`IdGenerator::next_ids`].
//!
//! A [`Lease`] is the unit of ID issuance for batching front-ends (the
//! `uuidp-service` shards, the kvstore's leased store instances): one
//! `next_ids(count)` call fills the buffer with the arcs of a run of IDs,
//! and consumers then draw scalar IDs from the buffer — or hand the arcs
//! straight to a symbolic auditor — without touching the generator again.
//! The buffer recycles its arc vector across fills, so a long-lived
//! issuing shard allocates nothing per lease in steady state.

use crate::id::{Id, IdSpace};
use crate::interval::Arc;
use crate::traits::{GeneratorError, IdGenerator};

/// A filled (or partially consumed) bulk lease: the arcs of one
/// `next_ids` batch, in emission order, plus a consumption cursor.
#[derive(Debug, Clone)]
pub struct Lease {
    space: IdSpace,
    arcs: Vec<Arc>,
    /// Total IDs across `arcs`.
    granted: u128,
    /// IDs already consumed via [`pop`](Self::pop).
    consumed: u128,
    /// Cursor: next arc to draw from, and offset within it.
    cursor_arc: usize,
    cursor_off: u128,
}

impl Lease {
    /// An empty lease buffer over `space`.
    pub fn new(space: IdSpace) -> Self {
        Lease {
            space,
            arcs: Vec::new(),
            granted: 0,
            consumed: 0,
            cursor_arc: 0,
            cursor_off: 0,
        }
    }

    /// The universe the leased IDs live in.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Empties the buffer, retaining the arc vector's capacity.
    pub fn clear(&mut self) {
        self.arcs.clear();
        self.granted = 0;
        self.consumed = 0;
        self.cursor_arc = 0;
        self.cursor_off = 0;
    }

    /// Discards any unconsumed remainder and refills the buffer with the
    /// next `count` IDs of `generator`, as arcs.
    ///
    /// On exhaustion mid-batch the arcs already granted stay in the
    /// buffer (a *partial* lease) and the error is returned; consumers
    /// can drain the partial grant before surfacing the error.
    pub fn fill(
        &mut self,
        generator: &mut dyn IdGenerator,
        count: u128,
    ) -> Result<(), GeneratorError> {
        debug_assert_eq!(self.space, generator.space(), "lease/generator universe");
        self.clear();
        let Lease { arcs, granted, .. } = self;
        generator.next_ids(count, &mut |arc| {
            *granted += arc.len;
            arcs.push(arc);
        })
    }

    /// Total IDs granted by the last fill.
    pub fn granted(&self) -> u128 {
        self.granted
    }

    /// IDs still available to [`pop`](Self::pop).
    pub fn remaining(&self) -> u128 {
        self.granted - self.consumed
    }

    /// Whether every granted ID has been consumed.
    pub fn is_drained(&self) -> bool {
        self.remaining() == 0
    }

    /// The granted arcs, in emission order (including consumed prefixes).
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Draws the next unconsumed ID, in exact emission order.
    pub fn pop(&mut self) -> Option<Id> {
        let arc = *self.arcs.get(self.cursor_arc)?;
        let id = arc.nth(self.space, self.cursor_off);
        self.cursor_off += 1;
        self.consumed += 1;
        if self.cursor_off == arc.len {
            self.cursor_arc += 1;
            self.cursor_off = 0;
        }
        Some(id)
    }

    /// Iterates every granted ID in emission order (consumed or not).
    /// Test/diagnostic helper; intended for small leases.
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        let space = self.space;
        self.arcs
            .iter()
            .flat_map(move |arc| (0..arc.len).map(move |i| arc.nth(space, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Cluster, ClusterStar, Random};
    use crate::traits::Algorithm;

    #[test]
    fn fill_and_pop_match_scalar_emission() {
        let space = IdSpace::new(1 << 16).unwrap();
        let alg = ClusterStar::new(space);
        let mut leased = alg.spawn(7);
        let mut scalar = alg.spawn(7);
        let mut lease = Lease::new(space);
        for batch in [1u128, 5, 64, 3, 100] {
            lease.fill(leased.as_mut(), batch).unwrap();
            assert_eq!(lease.granted(), batch);
            for _ in 0..batch {
                assert_eq!(lease.pop(), Some(scalar.next_id().unwrap()));
            }
            assert!(lease.is_drained());
            assert_eq!(lease.pop(), None);
        }
        assert_eq!(leased.generated(), scalar.generated());
    }

    #[test]
    fn cluster_lease_is_a_single_arc() {
        let space = IdSpace::with_bits(40).unwrap();
        let alg = Cluster::new(space);
        let mut gen = alg.spawn(1);
        let mut lease = Lease::new(space);
        lease.fill(gen.as_mut(), 4096).unwrap();
        assert_eq!(lease.arcs().len(), 1, "Cluster leases one arc");
        assert_eq!(lease.granted(), 4096);
        assert!(gen.supports_bulk_lease());
    }

    #[test]
    fn partial_grant_on_exhaustion_is_drainable() {
        let space = IdSpace::new(8).unwrap();
        let alg = Random::new(space);
        let mut gen = alg.spawn(3);
        let mut lease = Lease::new(space);
        let err = lease.fill(gen.as_mut(), 20).unwrap_err();
        assert!(matches!(err, GeneratorError::Exhausted { generated: 8 }));
        assert_eq!(lease.granted(), 8, "partial grant delivered");
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = lease.pop() {
            assert!(seen.insert(id));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn refill_discards_remainder_and_reuses_capacity() {
        let space = IdSpace::new(1 << 12).unwrap();
        let alg = ClusterStar::new(space);
        let mut gen = alg.spawn(9);
        let mut lease = Lease::new(space);
        lease.fill(gen.as_mut(), 10).unwrap();
        lease.pop();
        lease.fill(gen.as_mut(), 6).unwrap();
        assert_eq!(lease.granted(), 6);
        assert_eq!(lease.remaining(), 6);
        // The two fills are consecutive slices of one generator stream.
        assert_eq!(gen.generated(), 16);
    }

    #[test]
    fn ids_iterator_agrees_with_pop_order() {
        let space = IdSpace::new(1 << 10).unwrap();
        let alg = ClusterStar::new(space);
        let mut gen = alg.spawn(11);
        let mut lease = Lease::new(space);
        lease.fill(gen.as_mut(), 50).unwrap();
        let listed: Vec<Id> = lease.ids().collect();
        let popped: Vec<Id> = std::iter::from_fn(|| lease.pop()).collect();
        assert_eq!(listed, popped);
    }
}
