//! # uuidp-core — Optimal Uncoordinated Unique IDs
//!
//! A from-scratch implementation of every ID-generation algorithm in
//! *Optimal Uncoordinated Unique IDs* (Dillinger, Farach-Colton,
//! Tagliavini, Walzer; PODS 2023).
//!
//! ## The problem
//!
//! In the **Uncoordinated Unique Identifiers Problem** (UUIDP), `n`
//! independent instances of an algorithm `A` generate IDs from a universe
//! `[m]`, with *no communication* between instances — no central authority,
//! no MAC addresses, no clocks. An adversary decides which instance serves
//! each request; the algorithm designer wants to minimize the probability
//! that any ID is ever generated twice (a *collision*). Surrogate-key
//! generation in distributed databases (Cassandra, MongoDB, MySQL,
//! Postgres, RocksDB, …) is this problem.
//!
//! ## The algorithms
//!
//! | Algorithm | Guarantee | Setting |
//! |-----------|-----------|---------|
//! | [`algorithms::Random`] | `Θ(min(1, (‖D‖₁²−‖D‖₂²)/m))` — birthday bound | any |
//! | [`algorithms::Cluster`] | `Θ(min(1, n‖D‖₁/m))` — worst-case optimal | oblivious |
//! | [`algorithms::Bins`]`(k)` | `Θ(…)` (Thm 2); optimal for uniform profiles at `k = h` | oblivious |
//! | [`algorithms::ClusterStar`] | `O((nd/m)·log(1+d/n))` — near-optimal | adaptive |
//! | [`algorithms::BinsStar`] | `O(log m)` competitive ratio — optimal | both |
//!
//! ## Quick start
//!
//! ```
//! use uuidp_core::prelude::*;
//!
//! // A 64-bit ID space, as in RocksDB's cache keys.
//! let space = IdSpace::with_bits(64).unwrap();
//! let algorithm = Cluster::new(space);
//!
//! // Two uncoordinated instances (think: two database nodes).
//! let mut node_a = algorithm.spawn(/* seed = entropy */ 1);
//! let mut node_b = algorithm.spawn(2);
//!
//! let id_a = node_a.next_id().unwrap();
//! let id_b = node_b.next_id().unwrap();
//! assert_ne!(id_a, id_b); // overwhelmingly likely, never guaranteed
//! ```
//!
//! ## Crate layout
//!
//! * [`id`] — the universe `[m]` and modular arithmetic;
//! * [`rng`] — reproducible randomness (SplitMix64, xoshiro256++);
//! * [`interval`] — circular interval sets (run placement, symbolic
//!   footprints);
//! * [`shuffle`] — lazy Fisher–Yates (sampling without replacement at
//!   `m = 2¹²⁷` scale);
//! * [`traits`] — [`traits::IdGenerator`] / [`traits::Algorithm`];
//! * [`lease`] — reusable bulk-lease buffers over
//!   [`traits::IdGenerator::next_ids`] (service/kvstore batching);
//! * [`clock`] — the process-wide monotonic nanosecond clock stamping
//!   observability events;
//! * [`algorithms`] — the five paper algorithms plus practical baselines;
//! * [`state`] — snapshot/restore for exact crash-resume;
//! * [`persist`] — versioned, checksummed on-disk snapshots with the
//!   write-ahead reservation discipline and crash-safe recovery;
//! * [`diagram`] — the paper's illustration diagrams, reproduced.
//!
//! Production note: the simulation-grade PRNG here is deliberate (see
//! [`rng`]); swap in an OS CSPRNG for the seed material when deploying.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod clock;
pub mod codec;
pub mod diagram;
pub mod id;
pub mod interval;
pub mod lease;
pub mod lockorder;
pub mod persist;
pub mod rng;
pub mod shuffle;
pub mod state;
pub mod traits;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::algorithms::{
        AlgorithmKind, Bins, BinsStar, Cluster, ClusterStar, Random, SessionCounter, SetAside,
        Snowflake, SnowflakeConfig,
    };
    pub use crate::id::{Id, IdSpace};
    pub use crate::interval::{Arc, IntervalSet};
    pub use crate::lease::Lease;
    pub use crate::persist::{recover, PersistError, SnapshotRecord, SnapshotStore};
    pub use crate::state::{restore, GeneratorState, StateError};
    pub use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};
}
