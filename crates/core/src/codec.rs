//! The workspace's shared little-endian binary codec: the byte-level
//! vocabulary behind every versioned on-disk and on-wire format.
//!
//! [`persist`](crate::persist) (snapshot files) and the `uuidp-client`
//! wire frames both follow the same discipline — magic, version,
//! length, payload, FNV-1a checksum — and this module carries the part
//! they share: primitive writers ([`put_u64`] and friends), a
//! bounded-read [`Cursor`] whose every accessor returns a typed
//! [`CodecError`] instead of panicking, and the [`fnv1a`] integrity
//! hash. Formats own their framing (magic bytes, version rules,
//! checksum placement); the codec owns the bytes in between.
//!
//! All integers are little-endian. Variable-length sequences carry a
//! `u64` count prefix, validated against the remaining payload before
//! any allocation, so a crafted length can never force a huge
//! pre-allocation. `f64`s travel as their IEEE-754 bit patterns, so
//! round-trips are bit-exact.

/// Error decoding a binary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    Truncated,
    /// The payload decoded but described an impossible value.
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over `bytes` — the formats' integrity check (corruption
/// detection, not an adversarial MAC).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u128`, little-endian.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a 4-word RNG state.
pub fn put_rng(out: &mut Vec<u8>, rng: &[u64; 4]) {
    for &w in rng {
        put_u64(out, w);
    }
}

/// Appends a count-prefixed sequence of `u128`s.
pub fn put_u128_seq(out: &mut Vec<u8>, seq: &[u128]) {
    put_u64(out, seq.len() as u64);
    for &v in seq {
        put_u128(out, v);
    }
}

/// Appends a count-prefixed sequence of `u128` pairs.
pub fn put_pair_seq(out: &mut Vec<u8>, seq: &[(u128, u128)]) {
    put_u64(out, seq.len() as u64);
    for &(a, b) in seq {
        put_u128(out, a);
        put_u128(out, b);
    }
}

/// Appends an optional `u128` (presence byte + value).
pub fn put_opt_u128(out: &mut Vec<u8>, v: &Option<u128>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u128(out, *v);
        }
    }
}

/// Appends an optional `u128` pair (presence byte + values).
pub fn put_opt_pair(out: &mut Vec<u8>, v: &Option<(u128, u128)>) {
    match v {
        None => out.push(0),
        Some((a, b)) => {
            out.push(1);
            put_u128(out, *a);
            put_u128(out, *b);
        }
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an optional string (presence byte + string).
pub fn put_opt_str(out: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Bounded-read cursor over a decoded payload. Every accessor validates
/// the remaining length first — decoding arbitrary bytes can fail, but
/// never panic or over-allocate.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    /// The cursor's byte offset from the start.
    pub fn position(&self) -> usize {
        self.at
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Takes the next `N` bytes as a fixed array. The typed-error twin
    /// of `take(N)?.try_into().unwrap()`: the length check and the
    /// slice-to-array conversion cannot drift apart.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.array()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a 4-word RNG state.
    pub fn rng(&mut self) -> Result<[u64; 4], CodecError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }

    /// Reads a sequence length prefix. A length prefix can never exceed
    /// the remaining bytes (each element is at least one byte), so
    /// absurd counts are rejected before they become pre-allocations.
    pub fn seq_len(&mut self) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len as usize > self.bytes.len().saturating_sub(self.at) {
            return Err(CodecError::Truncated);
        }
        Ok(len as usize)
    }

    /// Reads a count-prefixed `u128` sequence.
    pub fn u128_seq(&mut self) -> Result<Vec<u128>, CodecError> {
        let len = self.seq_len()?;
        (0..len).map(|_| self.u128()).collect()
    }

    /// Reads a count-prefixed `u128`-pair sequence.
    pub fn pair_seq(&mut self) -> Result<Vec<(u128, u128)>, CodecError> {
        let len = self.seq_len()?;
        (0..len).map(|_| Ok((self.u128()?, self.u128()?))).collect()
    }

    /// Reads an optional `u128`.
    pub fn opt_u128(&mut self) -> Result<Option<u128>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u128()?)),
            t => Err(CodecError::Corrupt(format!("bad option tag {t}"))),
        }
    }

    /// Reads an optional `u128` pair.
    pub fn opt_pair(&mut self) -> Result<Option<(u128, u128)>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some((self.u128()?, self.u128()?))),
            t => Err(CodecError::Corrupt(format!("bad option tag {t}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.seq_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Corrupt("string is not UTF-8".into()))
    }

    /// Reads an optional string.
    pub fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(CodecError::Corrupt(format!("bad option tag {t}"))),
        }
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(CodecError::Corrupt(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_u128(&mut out, u128::MAX / 3);
        put_f64(&mut out, -1234.5678e-9);
        put_rng(&mut out, &[1, 2, 3, 4]);
        put_u128_seq(&mut out, &[9, 8, 7]);
        put_pair_seq(&mut out, &[(1, 2), (3, 4)]);
        put_opt_u128(&mut out, &None);
        put_opt_u128(&mut out, &Some(5));
        put_opt_pair(&mut out, &Some((6, 7)));
        put_str(&mut out, "héllo");
        put_opt_str(&mut out, &Some("x".into()));
        put_opt_str(&mut out, &None);
        let mut c = Cursor::new(&out);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.u128().unwrap(), u128::MAX / 3);
        assert_eq!(c.f64().unwrap().to_bits(), (-1234.5678e-9f64).to_bits());
        assert_eq!(c.rng().unwrap(), [1, 2, 3, 4]);
        assert_eq!(c.u128_seq().unwrap(), vec![9, 8, 7]);
        assert_eq!(c.pair_seq().unwrap(), vec![(1, 2), (3, 4)]);
        assert_eq!(c.opt_u128().unwrap(), None);
        assert_eq!(c.opt_u128().unwrap(), Some(5));
        assert_eq!(c.opt_pair().unwrap(), Some((6, 7)));
        assert_eq!(c.str().unwrap(), "héllo");
        assert_eq!(c.opt_str().unwrap(), Some("x".into()));
        assert_eq!(c.opt_str().unwrap(), None);
        c.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        assert_eq!(Cursor::new(&out[..5]).u64(), Err(CodecError::Truncated));
        let c = Cursor::new(&out);
        assert!(matches!(c.finish(), Err(CodecError::Corrupt(_))));
        // A crafted near-MAX sequence length must not pre-allocate.
        let mut huge = Vec::new();
        put_u64(&mut huge, u64::MAX - 3);
        assert_eq!(Cursor::new(&huge).u128_seq(), Err(CodecError::Truncated));
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
