//! Lazy Fisher–Yates: uniform sampling without replacement from `{0..n}`
//! in `O(1)` time and `O(draws)` memory, for `n` up to 2¹²⁷.
//!
//! Random needs a uniform random *permutation* of `[m]`, revealed one
//! element at a time, where `m` can be astronomically large (the paper's
//! regime is `m = 2¹²⁸`-ish). Materializing the permutation is impossible;
//! the classic trick is to run Fisher–Yates against a *virtual* array
//! `a[i] = i`, storing only the displaced entries in a hash map. Each draw
//! costs O(1) expected time and one map entry, so drawing `d` IDs costs
//! `O(d)` regardless of `n`. The resulting sequence is distributed exactly
//! as a uniform permutation prefix — the same distribution as rejection
//! sampling, but with deterministic per-draw cost and no pathological
//! retry loops as the space fills up.
//!
//! Bins(k) reuses the same structure to draw its random permutation of
//! `⌊m/k⌋` bins.

use std::collections::HashMap;

use crate::rng::{uniform_below, Xoshiro256pp};

/// Uniform sampler without replacement from `{0, 1, …, n−1}`.
#[derive(Debug, Clone)]
pub struct LazyShuffle {
    n: u128,
    drawn: u128,
    /// Sparse view of the virtual array: indices whose value differs from
    /// the identity mapping.
    displaced: HashMap<u128, u128>,
}

impl LazyShuffle {
    /// A sampler over `{0, …, n−1}`. `n == 0` yields an immediately
    /// exhausted sampler.
    pub fn new(n: u128) -> Self {
        LazyShuffle {
            n,
            drawn: 0,
            displaced: HashMap::new(),
        }
    }

    /// Returns the sampler to its initial state over `{0, …, n−1}`,
    /// keeping the displacement map's allocation for reuse.
    pub fn reset(&mut self, n: u128) {
        self.n = n;
        self.drawn = 0;
        self.displaced.clear();
    }

    /// Size of the underlying set.
    pub fn len(&self) -> u128 {
        self.n
    }

    /// Whether the underlying set is empty (`n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether every element has been drawn.
    pub fn is_exhausted(&self) -> bool {
        self.drawn >= self.n
    }

    /// Number of elements drawn so far.
    pub fn drawn(&self) -> u128 {
        self.drawn
    }

    /// Number of elements remaining.
    pub fn remaining(&self) -> u128 {
        self.n - self.drawn
    }

    /// The sparse displacements, for persistence (sorted for determinism).
    pub fn displacements(&self) -> Vec<(u128, u128)> {
        let mut v: Vec<(u128, u128)> = self.displaced.iter().map(|(&k, &x)| (k, x)).collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a sampler from persisted parts.
    ///
    /// # Panics
    ///
    /// Panics if `drawn > n` or a displacement key is out of range.
    pub fn from_parts(n: u128, drawn: u128, displacements: Vec<(u128, u128)>) -> Self {
        assert!(drawn <= n, "drawn exceeds set size");
        let displaced: HashMap<u128, u128> = displacements.into_iter().collect();
        for (&k, &x) in &displaced {
            assert!(k >= drawn && k < n, "displacement key {k} out of range");
            assert!(x < n, "displacement value {x} out of range");
        }
        LazyShuffle {
            n,
            drawn,
            displaced,
        }
    }

    /// Draws the next element of the virtual permutation, or `None` if all
    /// `n` elements have been drawn.
    pub fn draw(&mut self, rng: &mut Xoshiro256pp) -> Option<u128> {
        if self.drawn >= self.n {
            return None;
        }
        // Classic inside-out Fisher–Yates step on the virtual array:
        // swap a[i] with a[j] for uniform j in [i, n), then reveal a[i].
        let i = self.drawn;
        let j = i + uniform_below(rng, self.n - i);
        let a_j = self.displaced.get(&j).copied().unwrap_or(j);
        if j != i {
            let a_i = self.displaced.get(&i).copied().unwrap_or(i);
            self.displaced.insert(j, a_i);
        }
        // a[i] is now fixed forever; drop it from the sparse map to keep
        // memory at O(remaining displacements) instead of O(draws).
        self.displaced.remove(&i);
        self.drawn += 1;
        Some(a_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn draws_each_element_exactly_once() {
        let mut rng = Xoshiro256pp::new(1);
        let mut shuffle = LazyShuffle::new(100);
        let mut seen = HashSet::new();
        while let Some(x) = shuffle.draw(&mut rng) {
            assert!(x < 100);
            assert!(seen.insert(x), "element {x} drawn twice");
        }
        assert_eq!(seen.len(), 100);
        assert!(shuffle.is_exhausted());
        assert!(shuffle.draw(&mut rng).is_none());
    }

    #[test]
    fn zero_sized_set_is_immediately_exhausted() {
        let mut rng = Xoshiro256pp::new(2);
        let mut shuffle = LazyShuffle::new(0);
        assert!(shuffle.is_exhausted());
        assert!(shuffle.draw(&mut rng).is_none());
    }

    #[test]
    fn works_at_huge_n_with_small_memory() {
        let mut rng = Xoshiro256pp::new(3);
        let n = 1u128 << 120;
        let mut shuffle = LazyShuffle::new(n);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let x = shuffle.draw(&mut rng).unwrap();
            assert!(x < n);
            assert!(seen.insert(x), "duplicate at huge n");
        }
        assert!(shuffle.displaced.len() <= 10_000);
    }

    #[test]
    fn permutation_distribution_is_uniform_for_n3() {
        // All 6 permutations of {0,1,2} should appear with equal frequency.
        let mut rng = Xoshiro256pp::new(4);
        let mut counts: HashMap<Vec<u128>, u32> = HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let mut s = LazyShuffle::new(3);
            let perm: Vec<u128> = std::iter::from_fn(|| s.draw(&mut rng)).collect();
            *counts.entry(perm).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (perm, c) in &counts {
            let dev = (*c as f64 - expected).abs() / expected;
            assert!(dev < 0.06, "perm {perm:?}: count {c}, dev {dev:.3}");
        }
    }

    #[test]
    fn first_draw_is_uniform() {
        let mut rng = Xoshiro256pp::new(5);
        let n = 10u128;
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let mut s = LazyShuffle::new(n);
            counts[s.draw(&mut rng).unwrap() as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (x, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "value {x}: dev {dev:.3}");
        }
    }

    #[test]
    fn from_parts_roundtrips_mid_stream() {
        let mut rng = Xoshiro256pp::new(9);
        let mut a = LazyShuffle::new(50);
        for _ in 0..20 {
            a.draw(&mut rng);
        }
        let mut b = LazyShuffle::from_parts(a.len(), a.drawn(), a.displacements());
        // Same RNG stream from here ⇒ identical continuations.
        let mut rng2 = rng.clone();
        for _ in 0..30 {
            assert_eq!(a.draw(&mut rng), b.draw(&mut rng2));
        }
    }

    #[test]
    fn counters_track_progress() {
        let mut rng = Xoshiro256pp::new(6);
        let mut s = LazyShuffle::new(5);
        assert_eq!(s.remaining(), 5);
        s.draw(&mut rng);
        s.draw(&mut rng);
        assert_eq!(s.drawn(), 2);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.len(), 5);
    }
}
