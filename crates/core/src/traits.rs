//! Core abstractions: ID generators, their footprints, and algorithm
//! factories.
//!
//! The paper models an ID-generation algorithm `A` as a distribution over
//! permutations of `[m]`; an *instance* of `A` reveals that permutation one
//! ID at a time, on request, without knowing how many requests will come.
//! [`IdGenerator`] is exactly that interface. [`Algorithm`] is the factory
//! that spawns independent instances (independent randomness, no
//! communication — the factory hands each instance nothing but a seed).

use std::fmt;

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};

/// Error conditions an instance can hit while generating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// The instance cannot produce another ID under its rules.
    ///
    /// For Random/Cluster this happens only after all `m` IDs are emitted.
    /// Bins(k) runs out after all bins and leftovers are used. Cluster★ can
    /// fail earlier if its own reserved runs fragment the space so much that
    /// no gap fits the next run (the paper sidesteps this by restricting
    /// demand to `m / (2 log m)` per instance; we surface it as an error).
    /// Bins★ is exhausted after its last chunk's bin (the paper's Theorem 9
    /// likewise only covers demand below `m / log m`).
    Exhausted {
        /// Number of IDs successfully generated before exhaustion.
        generated: u128,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::Exhausted { generated } => {
                write!(f, "instance exhausted after generating {generated} IDs")
            }
        }
    }
}

impl std::error::Error for GeneratorError {}

/// The exact set of IDs an instance has emitted so far, in whichever
/// representation is compact for its algorithm.
///
/// Collision detection between instances only needs set intersection, so
/// exposing the emitted set symbolically lets the simulator check collisions
/// in time proportional to the number of *arcs*, not the number of IDs —
/// the difference between simulating `d = 2^40` and not.
#[derive(Debug)]
pub enum Footprint<'a> {
    /// Individual IDs, in emission order. Used by Random-like algorithms
    /// whose outputs have no arc structure.
    Points(&'a [Id]),
    /// A set of arcs. Used by Cluster, Bins(k), Cluster★, Bins★, whose
    /// emitted sets are unions of `O(polylog d)` or `O(d/k)` arcs.
    Arcs(&'a IntervalSet),
}

impl Footprint<'_> {
    /// Number of IDs in the footprint.
    pub fn measure(&self) -> u128 {
        match self {
            Footprint::Points(p) => p.len() as u128,
            Footprint::Arcs(s) => s.measure(),
        }
    }
}

/// One running instance of an ID-generation algorithm.
///
/// Instances are sequential state machines: each [`next_id`] call reveals
/// the next element of the instance's random permutation of `[m]`.
///
/// [`next_id`]: IdGenerator::next_id
pub trait IdGenerator: Send {
    /// The universe this instance draws from.
    fn space(&self) -> IdSpace;

    /// Produces the next ID.
    fn next_id(&mut self) -> Result<Id, GeneratorError>;

    /// Number of IDs produced so far.
    fn generated(&self) -> u128;

    /// The exact set of IDs produced so far.
    ///
    /// Takes `&mut self` because arc-structured generators keep their
    /// footprint *lazy*: [`next_id`](Self::next_id) only bumps counters,
    /// and the emitted prefix of the open run is folded into the interval
    /// set here, on demand. Between calls the set always reflects every ID
    /// emitted so far; the call is amortized O(1) per emitted run.
    fn footprint(&mut self) -> Footprint<'_>;

    /// Returns the instance to its freshly-constructed state under a new
    /// seed, reusing allocations (interval-set segment vectors, run lists,
    /// hash maps) instead of dropping them.
    ///
    /// Observationally identical to `algorithm.spawn(seed)`: the ID
    /// stream, footprints, and error behavior after `reset(seed)` must be
    /// bit-for-bit those of a fresh instance built with `seed`. This is
    /// the contract the Monte-Carlo trial engine relies on to run
    /// millions of trials without per-trial boxing, and it is enforced by
    /// the differential property tests.
    fn reset(&mut self, seed: u64);

    /// Produces the next `count` IDs as a *bulk lease*: the emitted IDs
    /// are pushed to `sink` as arcs, in emission order, covering exactly
    /// the IDs that `count` consecutive [`next_id`](Self::next_id) calls
    /// would have returned (and leaving the instance in the identical
    /// post-state — same footprint, same continuation, same errors).
    ///
    /// The default implementation calls `next_id` `count` times and emits
    /// one single-ID arc per call. Arc-structured algorithms override it
    /// to emit one arc per touched run/bin — `O(1)` amortized per *run*
    /// instead of per ID — which is what lets a service front-end lease
    /// thousands of IDs per request at interval-push cost. On exhaustion
    /// mid-batch the arcs already emitted stay delivered and the error is
    /// returned, exactly like the scalar loop.
    fn next_ids(&mut self, count: u128, sink: &mut dyn FnMut(Arc)) -> Result<(), GeneratorError> {
        let space = self.space();
        for _ in 0..count {
            let id = self.next_id()?;
            sink(Arc::point(space, id));
        }
        Ok(())
    }

    /// Whether [`next_ids`](Self::next_ids) is sublinear in `count` for
    /// this algorithm (true for the arc-structured algorithms, whose
    /// leases cost `O(runs touched)`, false for Random-like ones).
    fn supports_bulk_lease(&self) -> bool {
        false
    }

    /// Advances the instance by `count` IDs without materializing them.
    ///
    /// Semantically identical to calling [`next_id`](Self::next_id) `count`
    /// times and discarding the results; the footprint afterwards reflects
    /// all skipped IDs. Algorithms with arc structure override this with an
    /// `O(arcs)` implementation, which is what lets worst-case experiments
    /// reach demands far beyond materializable scale.
    fn skip(&mut self, count: u128) -> Result<(), GeneratorError> {
        for _ in 0..count {
            self.next_id()?;
        }
        Ok(())
    }

    /// Whether [`skip`](Self::skip) is sublinear in `count` for this
    /// algorithm (true for the arc-structured algorithms, false for
    /// Random-like ones).
    fn supports_fast_skip(&self) -> bool {
        false
    }

    /// Captures a serializable snapshot for exact resume after a restart
    /// (see [`crate::state`]). `None` when the algorithm does not support
    /// persistence (SetAside, Snowflake — both stateful on externals).
    fn snapshot(&self) -> Option<crate::state::GeneratorState> {
        None
    }
}

/// A factory for independent instances of one ID-generation algorithm over
/// one universe.
///
/// The factory is the crate's unit of configuration: experiments are
/// parameterized by a list of `Box<dyn Algorithm>`. Spawned instances share
/// nothing; independence across instances — the defining constraint of the
/// UUIDP — is enforced by construction, since `spawn` passes only a seed.
pub trait Algorithm: Send + Sync {
    /// Short, stable, human-readable name (e.g. `"cluster"`, `"bins(64)"`).
    fn name(&self) -> String;

    /// The universe instances will draw from.
    fn space(&self) -> IdSpace;

    /// Spawns a fresh instance using `seed` as its only source of
    /// randomness.
    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator>;
}

impl fmt::Debug for dyn Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Algorithm({} over {})", self.name(), self.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        space: IdSpace,
        next: u128,
        emitted: Vec<Id>,
    }

    impl IdGenerator for Fake {
        fn space(&self) -> IdSpace {
            self.space
        }
        fn next_id(&mut self) -> Result<Id, GeneratorError> {
            if self.next >= self.space.size() {
                return Err(GeneratorError::Exhausted {
                    generated: self.next,
                });
            }
            let id = Id(self.next);
            self.next += 1;
            self.emitted.push(id);
            Ok(id)
        }
        fn generated(&self) -> u128 {
            self.next
        }
        fn footprint(&mut self) -> Footprint<'_> {
            Footprint::Points(&self.emitted)
        }
        fn reset(&mut self, _seed: u64) {
            self.next = 0;
            self.emitted.clear();
        }
    }

    #[test]
    fn default_skip_materializes() {
        let mut g = Fake {
            space: IdSpace::new(10).unwrap(),
            next: 0,
            emitted: Vec::new(),
        };
        g.skip(4).unwrap();
        assert_eq!(g.generated(), 4);
        assert_eq!(g.footprint().measure(), 4);
        assert!(!g.supports_fast_skip());
    }

    #[test]
    fn default_skip_propagates_exhaustion() {
        let mut g = Fake {
            space: IdSpace::new(3).unwrap(),
            next: 0,
            emitted: Vec::new(),
        };
        let err = g.skip(5).unwrap_err();
        assert_eq!(err, GeneratorError::Exhausted { generated: 3 });
    }

    #[test]
    fn default_next_ids_emits_point_arcs() {
        let mut g = Fake {
            space: IdSpace::new(10).unwrap(),
            next: 0,
            emitted: Vec::new(),
        };
        let mut arcs = Vec::new();
        g.next_ids(4, &mut |a| arcs.push(a)).unwrap();
        assert_eq!(arcs.len(), 4, "one point arc per ID");
        assert!(arcs.iter().all(|a| a.len == 1));
        assert_eq!(g.generated(), 4);
        assert!(!g.supports_bulk_lease());
    }

    #[test]
    fn default_next_ids_propagates_exhaustion_after_partial_batch() {
        let mut g = Fake {
            space: IdSpace::new(3).unwrap(),
            next: 0,
            emitted: Vec::new(),
        };
        let mut arcs = Vec::new();
        let err = g.next_ids(5, &mut |a| arcs.push(a)).unwrap_err();
        assert_eq!(err, GeneratorError::Exhausted { generated: 3 });
        assert_eq!(arcs.len(), 3, "partial batch stays delivered");
    }

    #[test]
    fn exhausted_error_formats() {
        let e = GeneratorError::Exhausted { generated: 42 };
        assert!(e.to_string().contains("42"));
    }
}
