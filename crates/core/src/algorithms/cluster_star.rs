//! **Cluster★** — nearly optimal in the worst case against *adaptive*
//! adversaries (Theorem 8).
//!
//! > *Algorithm Cluster★: let `run(x, r)` be the sequence
//! > `(x, x+1, …, x+(r−1))` modulo `m`. Repeat the following for
//! > `r = 1, 2, 4, 8, …`: draw `x ∈ [m]` uniformly at random, such that
//! > `run(x, r)` does not collide with previously chosen runs. For the next
//! > `r` requests return the IDs from `run(x, r)`.*
//!
//! The doubling run lengths mean an adversary can only predict a long run
//! of future IDs from an instance if it has already requested about that
//! many IDs from it — which is what caps the damage of adaptivity at a
//! `log(1 + d/n)` factor over the oblivious lower bound:
//! `p ≤ O(min(1, (nd/m)·log(1 + d/n)))`.
//!
//! "Previously chosen runs" means *this instance's own* runs (instances
//! cannot see each other); the conditional draw is implemented exactly by
//! [`IntervalSet::sample_fitting_start`], which is equivalent to rejection
//! sampling but always terminates.
//!
//! Due to fragmentation, an instance may become unable to place its next
//! run; the paper restricts its analysis to at most `m / (2 log m)` requests
//! per instance, which always fit (an instance then opens at most `log m`
//! runs of size at most `m / (2 log m)`). We surface the out-of-space
//! condition as [`GeneratorError::Exhausted`].

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::rng::Xoshiro256pp;
use crate::state::{check, rng_from, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`ClusterStarGenerator`] instances.
#[derive(Debug, Clone)]
pub struct ClusterStar {
    space: IdSpace,
    growth: u32,
}

impl ClusterStar {
    /// Cluster★ over the universe `space`, with the paper's doubling runs.
    pub fn new(space: IdSpace) -> Self {
        ClusterStar { space, growth: 2 }
    }

    /// Cluster★ with runs growing by `growth`× instead of doubling — the
    /// ablation knob for the design choice the paper makes implicitly.
    /// Larger growth means fewer runs (less adaptive leakage, closer to
    /// plain Cluster's oblivious performance) but each opened run exposes
    /// more predictable future IDs; `growth = 2` balances the two, which
    /// is what experiment EA2 measures.
    ///
    /// # Panics
    ///
    /// Panics unless `growth ≥ 2`.
    pub fn with_growth(space: IdSpace, growth: u32) -> Self {
        assert!(growth >= 2, "run growth factor must be at least 2");
        ClusterStar { space, growth }
    }

    /// The configured growth factor.
    pub fn growth(&self) -> u32 {
        self.growth
    }

    /// The per-instance demand up to which the paper guarantees runs always
    /// fit: `m / (2·⌈log₂ m⌉)`.
    pub fn guaranteed_capacity(space: IdSpace) -> u128 {
        space.size() / (2 * space.log2_ceil() as u128).max(1)
    }
}

impl Algorithm for ClusterStar {
    fn name(&self) -> String {
        if self.growth == 2 {
            "cluster*".to_owned()
        } else {
            format!("cluster*(x{})", self.growth)
        }
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(ClusterStarGenerator::with_growth(
            self.space,
            self.growth,
            seed,
        ))
    }
}

/// One instance of Cluster★.
///
/// The emitted footprint is lazy: `next_id` only advances the open run's
/// counter, and the emitted prefix is folded into `emitted` when a run
/// closes or when [`IdGenerator::footprint`] is called. This makes
/// emission O(1) per ID; the only per-run cost is the placement draw.
#[derive(Debug)]
pub struct ClusterStarGenerator {
    space: IdSpace,
    rng: Xoshiro256pp,
    /// Union of all runs this instance has opened (whether fully emitted or
    /// not). New runs must be disjoint from this set.
    reserved: IntervalSet,
    /// The IDs emitted so far, minus the unflushed prefix of the open run.
    emitted: IntervalSet,
    /// The run currently being emitted: `(run, ids out, ids flushed into
    /// emitted)` with `flushed <= used`.
    current: Option<(Arc, u128, u128)>,
    /// Length of the *next* run to open: 1, g, g², … for growth factor g.
    next_len: u128,
    /// Run growth factor (2 in the paper).
    growth: u32,
    /// Starts of the opened runs, in order (diagnostics / adversaries).
    runs: Vec<Arc>,
    generated: u128,
}

impl ClusterStarGenerator {
    /// A fresh instance seeded with `seed` (paper doubling).
    pub fn new(space: IdSpace, seed: u64) -> Self {
        Self::with_growth(space, 2, seed)
    }

    /// A fresh instance with a custom run growth factor.
    pub fn with_growth(space: IdSpace, growth: u32, seed: u64) -> Self {
        assert!(growth >= 2, "run growth factor must be at least 2");
        ClusterStarGenerator {
            space,
            rng: Xoshiro256pp::new(seed),
            reserved: IntervalSet::new(space),
            emitted: IntervalSet::new(space),
            current: None,
            next_len: 1,
            growth,
            runs: Vec::new(),
            generated: 0,
        }
    }

    /// Rebuilds an instance from a [`GeneratorState::ClusterStar`]
    /// snapshot. The reserved and emitted sets are reconstructed from the
    /// run list (runs are emitted fully, in order, except the last).
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::ClusterStar {
            rng,
            growth,
            next_len,
            runs,
            current_used,
            generated,
        } = state
        else {
            return Err(StateError("not a ClusterStar state".into()));
        };
        check(*growth >= 2, "growth factor below 2")?;
        check(*next_len >= 1, "next run length must be positive")?;
        let m = space.size();
        let mut reserved = IntervalSet::new(space);
        let mut arcs = Vec::with_capacity(runs.len());
        for &(start, len) in runs {
            check(start < m && len >= 1 && len <= m, "run out of universe")?;
            let run = Arc::new(space, Id(start), len);
            check(!reserved.intersects_arc(run), "overlapping runs")?;
            reserved.insert(run);
            arcs.push(run);
        }
        let mut emitted = IntervalSet::new(space);
        for run in arcs.iter().take(arcs.len().saturating_sub(1)) {
            emitted.insert(*run);
        }
        let current = match (arcs.last(), current_used) {
            (Some(last), Some(used)) => {
                check(*used <= last.len, "current run overdrawn")?;
                if *used > 0 {
                    emitted.insert(Arc::new(space, last.start, *used));
                }
                Some((*last, *used, *used))
            }
            (None, None) => None,
            _ => return Err(StateError("current_used inconsistent with runs".into())),
        };
        check(
            emitted.measure() == *generated,
            "emitted measure != generated",
        )?;
        Ok(ClusterStarGenerator {
            space,
            rng: rng_from(*rng)?,
            reserved,
            emitted,
            current,
            next_len: *next_len,
            growth: *growth,
            runs: arcs,
            generated: *generated,
        })
    }

    /// The runs opened so far, in opening order.
    pub fn runs(&self) -> &[Arc] {
        &self.runs
    }

    /// The set of IDs reserved by opened runs (a superset of the emitted
    /// set; the gap is the tail of the current run).
    pub fn reserved(&self) -> &IntervalSet {
        &self.reserved
    }

    /// Folds the open run's unflushed emitted prefix into `emitted`.
    fn flush(&mut self) {
        if let Some((run, used, flushed)) = &mut self.current {
            if *used > *flushed {
                let first = self.space.add(run.start, *flushed);
                self.emitted
                    .insert(Arc::new(self.space, first, *used - *flushed));
                *flushed = *used;
            }
        }
    }

    /// Opens the next run (of length `next_len`), returning it.
    fn open_run(&mut self) -> Result<Arc, GeneratorError> {
        let len = self.next_len;
        if len > self.space.size() {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        let start = self
            .reserved
            .sample_fitting_start(&mut self.rng, len)
            .ok_or(GeneratorError::Exhausted {
                generated: self.generated,
            })?;
        self.flush(); // retire the finished run before replacing it
        let run = Arc::new(self.space, start, len);
        self.reserved.insert(run);
        self.runs.push(run);
        self.current = Some((run, 0, 0));
        self.next_len = len.saturating_mul(self.growth as u128);
        Ok(run)
    }
}

impl IdGenerator for ClusterStarGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        let (run, used) = match self.current {
            Some((run, used, _)) if used < run.len => (run, used),
            _ => (self.open_run()?, 0),
        };
        let id = run.nth(self.space, used);
        if let Some((_, u, _)) = &mut self.current {
            *u = used + 1;
        }
        self.generated += 1;
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        self.flush();
        Footprint::Arcs(&self.emitted)
    }

    fn next_ids(
        &mut self,
        mut count: u128,
        sink: &mut dyn FnMut(Arc),
    ) -> Result<(), GeneratorError> {
        while count > 0 {
            let (run, used) = match self.current {
                Some((run, used, _)) if used < run.len => (run, used),
                _ => (self.open_run()?, 0),
            };
            let take = count.min(run.len - used);
            sink(Arc::new(self.space, self.space.add(run.start, used), take));
            if let Some((_, u, _)) = &mut self.current {
                *u = used + take;
            }
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_bulk_lease(&self) -> bool {
        // One arc per touched run: O(log(d + count) − log d) per lease.
        true
    }

    fn skip(&mut self, mut count: u128) -> Result<(), GeneratorError> {
        while count > 0 {
            let (run, used) = match self.current {
                Some((run, used, _)) if used < run.len => (run, used),
                _ => (self.open_run()?, 0),
            };
            let take = count.min(run.len - used);
            if let Some((_, u, _)) = &mut self.current {
                *u = used + take;
            }
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_fast_skip(&self) -> bool {
        // O(log d) runs opened for d requests, so skip is O(log d · log log d).
        true
    }

    fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::new(seed);
        self.reserved.clear();
        self.emitted.clear();
        self.current = None;
        self.next_len = 1;
        self.runs.clear();
        self.generated = 0;
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        Some(GeneratorState::ClusterStar {
            rng: self.rng.state(),
            growth: self.growth,
            next_len: self.next_len,
            runs: self.runs.iter().map(|r| (r.start.value(), r.len)).collect(),
            current_used: self.current.map(|(_, used, _)| used),
            generated: self.generated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn run_lengths_double() {
        let space = IdSpace::new(1 << 16).unwrap();
        let mut g = ClusterStarGenerator::new(space, 1);
        for _ in 0..(1 + 2 + 4 + 8 + 16) {
            g.next_id().unwrap();
        }
        let lens: Vec<u128> = g.runs().iter().map(|r| r.len).collect();
        assert_eq!(lens, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn runs_are_pairwise_disjoint() {
        let space = IdSpace::new(1 << 12).unwrap();
        let mut g = ClusterStarGenerator::new(space, 2);
        for _ in 0..500 {
            g.next_id().unwrap();
        }
        let mut seen = HashSet::new();
        for run in g.runs() {
            for i in 0..run.len {
                assert!(
                    seen.insert(run.nth(space, i)),
                    "runs overlap at {:?}",
                    run.nth(space, i)
                );
            }
        }
    }

    #[test]
    fn no_duplicate_ids_emitted() {
        // 300 requests is within the m/(2 log m) = 2048 guarantee for 2^16.
        let space = IdSpace::new(1 << 16).unwrap();
        let mut g = ClusterStarGenerator::new(space, 3);
        let mut seen = HashSet::new();
        for _ in 0..300 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
    }

    #[test]
    fn ids_within_a_run_are_consecutive() {
        let space = IdSpace::new(1 << 10).unwrap();
        let mut g = ClusterStarGenerator::new(space, 4);
        let ids: Vec<Id> = (0..31).map(|_| g.next_id().unwrap()).collect();
        // Requests 3..7 (0-based) are the run of length 4.
        let run3 = &ids[3..7];
        for w in run3.windows(2) {
            assert_eq!(w[1], space.next(w[0]));
        }
        // Requests 15..31 are the run of length 16.
        let run5 = &ids[15..31];
        for w in run5.windows(2) {
            assert_eq!(w[1], space.next(w[0]));
        }
    }

    #[test]
    fn guaranteed_capacity_always_fits() {
        // The paper's demand cap m/(2 log m) must never trigger exhaustion.
        for seed in 0..50 {
            let space = IdSpace::new(1 << 12).unwrap();
            let cap = ClusterStar::guaranteed_capacity(space);
            assert!(cap >= 1);
            let mut g = ClusterStarGenerator::new(space, seed);
            for i in 0..cap {
                g.next_id()
                    .unwrap_or_else(|e| panic!("seed {seed}: failed at request {i}: {e}"));
            }
        }
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let space = IdSpace::new(8).unwrap();
        let mut g = ClusterStarGenerator::new(space, 5);
        let mut produced = 0u128;
        loop {
            match g.next_id() {
                Ok(_) => produced += 1,
                Err(GeneratorError::Exhausted { generated }) => {
                    assert_eq!(generated, produced);
                    break;
                }
            }
            assert!(produced <= 8);
        }
        // Tiny space: at least the runs of lengths 1 and 2 must have fit.
        assert!(produced >= 3, "produced only {produced}");
    }

    #[test]
    fn skip_matches_materialized_emission() {
        let space = IdSpace::new(1 << 14).unwrap();
        let mut a = ClusterStarGenerator::new(space, 6);
        let mut b = ClusterStarGenerator::new(space, 6);
        a.skip(777).unwrap();
        for _ in 0..777 {
            b.next_id().unwrap();
        }
        assert_eq!(a.generated(), b.generated());
        assert_eq!(a.runs(), b.runs());
        match (a.footprint(), b.footprint()) {
            (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
                assert_eq!(sa.measure(), 777);
                assert_eq!(sa.intersection_measure_set(sb), 777);
            }
            _ => panic!(),
        }
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn emitted_is_subset_of_reserved() {
        let space = IdSpace::new(1 << 10).unwrap();
        let mut g = ClusterStarGenerator::new(space, 7);
        for _ in 0..100 {
            g.next_id().unwrap();
        }
        let emitted = match g.footprint() {
            Footprint::Arcs(s) => s.clone(),
            _ => panic!(),
        };
        assert_eq!(
            emitted.intersection_measure_set(g.reserved()),
            emitted.measure(),
            "every emitted ID must lie in a reserved run"
        );
        // Reserved = all opened runs; emitted = 100 of them.
        assert_eq!(emitted.measure(), 100);
        assert_eq!(
            g.reserved().measure(),
            g.runs().iter().map(|r| r.len).sum::<u128>()
        );
    }

    #[test]
    fn number_of_runs_is_logarithmic() {
        let space = IdSpace::new(1 << 20).unwrap();
        let mut g = ClusterStarGenerator::new(space, 8);
        let d = 10_000u128;
        g.skip(d).unwrap();
        // ⌈log₂(1 + d)⌉ runs suffice for d requests.
        let expected = 128 - d.leading_zeros() as usize + 1;
        assert!(
            g.runs().len() <= expected,
            "{} runs for d = {d}",
            g.runs().len()
        );
    }
}
