//! **Snowflake** — the metadata-based practical baseline the paper's
//! introduction argues *against*.
//!
//! GUID-style generators combine a timestamp, a node identifier, and a
//! sequence counter (Twitter's Snowflake, UUIDv1, MongoDB ObjectId, …).
//! The paper's point is that such schemes presume *reliable metadata*:
//! MAC addresses can be spoofed and clocks skew, so the UUIDP model keeps
//! only the random part. We implement Snowflake with an explicit fault
//! model — a uniformly random worker ID (the honest-but-uncoordinated
//! case: with no registry, the best a node can do is pick its worker ID at
//! random) and a per-instance clock skew — so experiments can quantify
//! exactly how the brittleness manifests: two instances collide as soon as
//! their worker IDs coincide *and* their (tick, sequence) windows overlap,
//! which at `w` worker bits happens with constant probability once
//! `n ≈ 2^(w/2)` instances exist, regardless of how sparse the rest of the
//! ID space is.
//!
//! Snowflake is **not** an algorithm for the UUIDP in the paper's sense —
//! its output distribution is not a uniform choice structure over `[m]`
//! and repeated ticks can even repeat IDs after timestamp wrap-around. It
//! exists here as the practical comparator for experiment E13.

use crate::id::{Id, IdSpace};
use crate::rng::{uniform_below, Xoshiro256pp};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Bit layout and fault model for [`Snowflake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnowflakeConfig {
    /// Bits for the timestamp field (most significant).
    pub timestamp_bits: u32,
    /// Bits for the worker ID field.
    pub worker_bits: u32,
    /// Bits for the per-tick sequence field (least significant).
    pub sequence_bits: u32,
    /// Requests served per logical clock tick (request-driven clock model;
    /// the real scheme is wall-clock driven, but for collision structure
    /// only the *rate* of tick advancement relative to requests matters).
    pub requests_per_tick: u64,
    /// Each instance's clock starts with a skew drawn uniformly from
    /// `[0, max_skew_ticks]`. Zero models perfectly synchronized clocks.
    pub max_skew_ticks: u64,
}

impl SnowflakeConfig {
    /// The classic 64-bit layout: 41 timestamp bits, 10 worker bits,
    /// 12 sequence bits (here 42 timestamp bits to fill 64).
    pub fn classic64() -> Self {
        SnowflakeConfig {
            timestamp_bits: 42,
            worker_bits: 10,
            sequence_bits: 12,
            requests_per_tick: 64,
            max_skew_ticks: 0,
        }
    }

    /// Total ID width in bits.
    pub fn total_bits(&self) -> u32 {
        self.timestamp_bits + self.worker_bits + self.sequence_bits
    }

    /// The universe implied by the layout: `m = 2^total_bits`.
    pub fn space(&self) -> IdSpace {
        IdSpace::with_bits(self.total_bits()).expect("layout exceeds 127 bits")
    }
}

/// Factory for [`SnowflakeGenerator`] instances.
#[derive(Debug, Clone)]
pub struct Snowflake {
    config: SnowflakeConfig,
}

impl Snowflake {
    /// Snowflake with the given layout and fault model.
    ///
    /// # Panics
    ///
    /// Panics if the layout exceeds 127 bits or any field is zero-width,
    /// or if `requests_per_tick` is zero.
    pub fn new(config: SnowflakeConfig) -> Self {
        assert!(config.timestamp_bits > 0, "timestamp field required");
        assert!(config.worker_bits > 0, "worker field required");
        assert!(config.sequence_bits > 0, "sequence field required");
        assert!(config.total_bits() <= 127, "layout exceeds 127 bits");
        assert!(
            config.requests_per_tick > 0,
            "requests_per_tick must be > 0"
        );
        Snowflake { config }
    }

    /// The layout in use.
    pub fn config(&self) -> SnowflakeConfig {
        self.config
    }
}

impl Algorithm for Snowflake {
    fn name(&self) -> String {
        format!(
            "snowflake({}+{}+{})",
            self.config.timestamp_bits, self.config.worker_bits, self.config.sequence_bits
        )
    }

    fn space(&self) -> IdSpace {
        self.config.space()
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(SnowflakeGenerator::new(self.config, seed))
    }
}

/// One Snowflake instance: a fixed random worker ID and a skewed clock.
#[derive(Debug)]
pub struct SnowflakeGenerator {
    config: SnowflakeConfig,
    space: IdSpace,
    worker: u128,
    skew: u64,
    served: u64,
    /// Current tick; advances with served requests and on sequence
    /// overflow (the real implementation stalls until the next
    /// millisecond — the logical equivalent is a forced tick bump).
    tick: u64,
    seq: u128,
    emitted: Vec<Id>,
}

impl SnowflakeGenerator {
    /// A fresh instance seeded with `seed`.
    pub fn new(config: SnowflakeConfig, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        let worker = uniform_below(&mut rng, 1u128 << config.worker_bits);
        let skew = if config.max_skew_ticks == 0 {
            0
        } else {
            uniform_below(&mut rng, config.max_skew_ticks as u128 + 1) as u64
        };
        SnowflakeGenerator {
            config,
            space: config.space(),
            worker,
            skew,
            served: 0,
            tick: skew,
            seq: 0,
            emitted: Vec::new(),
        }
    }

    /// The worker ID this instance drew.
    pub fn worker(&self) -> u128 {
        self.worker
    }

    /// This instance's clock skew, in ticks.
    pub fn skew(&self) -> u64 {
        self.skew
    }
}

impl IdGenerator for SnowflakeGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        let logical = self.skew + self.served / self.config.requests_per_tick;
        if logical > self.tick {
            self.tick = logical;
            self.seq = 0;
        }
        if self.seq >= 1u128 << self.config.sequence_bits {
            // Sequence exhausted within this tick: bump the tick.
            self.tick += 1;
            self.seq = 0;
        }
        let ts_mask = (1u128 << self.config.timestamp_bits) - 1;
        let id = ((self.tick as u128 & ts_mask)
            << (self.config.worker_bits + self.config.sequence_bits))
            | (self.worker << self.config.sequence_bits)
            | self.seq;
        self.seq += 1;
        self.served += 1;
        let id = Id(id);
        self.emitted.push(id);
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.served as u128
    }

    fn footprint(&mut self) -> Footprint<'_> {
        Footprint::Points(&self.emitted)
    }

    fn reset(&mut self, seed: u64) {
        let mut rng = Xoshiro256pp::new(seed);
        self.worker = uniform_below(&mut rng, 1u128 << self.config.worker_bits);
        self.skew = if self.config.max_skew_ticks == 0 {
            0
        } else {
            uniform_below(&mut rng, self.config.max_skew_ticks as u128 + 1) as u64
        };
        self.served = 0;
        self.tick = self.skew;
        self.seq = 0;
        self.emitted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny() -> SnowflakeConfig {
        SnowflakeConfig {
            timestamp_bits: 16,
            worker_bits: 4,
            sequence_bits: 4,
            requests_per_tick: 8,
            max_skew_ticks: 0,
        }
    }

    #[test]
    fn ids_encode_worker_and_sequence() {
        let cfg = tiny();
        let mut g = SnowflakeGenerator::new(cfg, 1);
        let w = g.worker();
        for i in 0..8u128 {
            let id = g.next_id().unwrap().value();
            assert_eq!((id >> 4) & 0xF, w, "worker field");
            assert_eq!(id & 0xF, i % 16, "sequence field");
        }
    }

    #[test]
    fn no_duplicates_within_instance_before_wraparound() {
        let cfg = tiny();
        let mut g = SnowflakeGenerator::new(cfg, 2);
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
    }

    #[test]
    fn same_worker_and_no_skew_collides_quickly() {
        // Two synchronized instances with forced-equal worker IDs produce
        // identical streams — the degenerate case the paper warns about.
        let cfg = tiny();
        // Find two seeds with the same worker.
        let g1 = SnowflakeGenerator::new(cfg, 1);
        let mut other = None;
        for seed in 2..200 {
            let g = SnowflakeGenerator::new(cfg, seed);
            if g.worker() == g1.worker() {
                other = Some(seed);
                break;
            }
        }
        let seed2 = other.expect("no matching worker in 200 seeds");
        let mut a = SnowflakeGenerator::new(cfg, 1);
        let mut b = SnowflakeGenerator::new(cfg, seed2);
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn skew_shifts_the_timestamp_field() {
        let cfg = SnowflakeConfig {
            max_skew_ticks: 1000,
            ..tiny()
        };
        // Skew is sampled; with 1000 ticks of range two instances almost
        // surely start at different ticks.
        let a = SnowflakeGenerator::new(cfg, 1);
        let b = SnowflakeGenerator::new(cfg, 2);
        assert_ne!(
            (a.skew(), a.worker()),
            (b.skew(), b.worker()),
            "distinct seeds should differ in skew or worker"
        );
    }

    #[test]
    fn sequence_overflow_bumps_tick() {
        let cfg = SnowflakeConfig {
            timestamp_bits: 16,
            worker_bits: 4,
            sequence_bits: 2,       // 4 IDs per tick
            requests_per_tick: 100, // logical clock slower than demand
            max_skew_ticks: 0,
        };
        let mut g = SnowflakeGenerator::new(cfg, 3);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            assert!(
                seen.insert(g.next_id().unwrap()),
                "tick bump must avoid reuse"
            );
        }
    }

    #[test]
    fn worker_is_uniform() {
        let cfg = tiny();
        let mut counts = [0u32; 16];
        let trials = 160_000;
        for seed in 0..trials {
            counts[SnowflakeGenerator::new(cfg, seed).worker() as usize] += 1;
        }
        let expected = trials as f64 / 16.0;
        for (w, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "worker {w}: dev {dev:.3}");
        }
    }
}
