//! **Cluster** — RocksDB's scheme, optimal in the worst case against
//! oblivious adversaries.
//!
//! > *Algorithm Cluster: pick `x ∈ [m]` uniformly at random and return IDs
//! > in the order `x, x+1, x+2, …`, all modulo `m`.*
//!
//! Theorem 1: `p_Cluster(D) = Θ(min(1, n‖D‖₁/m))` for any demand profile —
//! a factor-`d/n` improvement over Random's birthday bound, and optimal by
//! Theorem 6. Lemma 7 shows its weakness: an *adaptive* adversary who sees
//! the starting IDs can force `Ω(min(1, n²d/m))`.
//!
//! The emitted set is a single arc, so [`skip`](IdGenerator::skip) is O(1):
//! worst-case experiments can push `d` to 2⁴⁰ and beyond.

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::rng::{uniform_below, Xoshiro256pp};
use crate::state::{check, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`ClusterGenerator`] instances.
#[derive(Debug, Clone)]
pub struct Cluster {
    space: IdSpace,
}

impl Cluster {
    /// Cluster over the universe `space`.
    pub fn new(space: IdSpace) -> Self {
        Cluster { space }
    }
}

impl Algorithm for Cluster {
    fn name(&self) -> String {
        "cluster".to_owned()
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(ClusterGenerator::new(self.space, seed))
    }
}

/// One instance of Cluster: a random start, then sequential IDs mod `m`.
///
/// The footprint is lazy: `next_id`/`skip` only move the `generated`
/// counter, and the emitted arc is folded into the interval set when
/// [`IdGenerator::footprint`] is called.
#[derive(Debug)]
pub struct ClusterGenerator {
    space: IdSpace,
    start: Id,
    generated: u128,
    emitted: IntervalSet,
    /// How many of the `generated` IDs are already in `emitted`.
    flushed: u128,
}

impl ClusterGenerator {
    /// A fresh instance seeded with `seed`.
    pub fn new(space: IdSpace, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        let start = Id(uniform_below(&mut rng, space.size()));
        ClusterGenerator {
            space,
            start,
            generated: 0,
            emitted: IntervalSet::new(space),
            flushed: 0,
        }
    }

    /// Folds the unflushed emitted prefix into the interval set.
    fn flush(&mut self) {
        if self.generated > self.flushed {
            let first = self.space.add(self.start, self.flushed);
            self.emitted
                .insert(Arc::new(self.space, first, self.generated - self.flushed));
            self.flushed = self.generated;
        }
    }

    /// The randomly chosen starting ID `x`.
    pub fn start(&self) -> Id {
        self.start
    }

    /// Rebuilds an instance from a [`GeneratorState::Cluster`] snapshot.
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::Cluster { start, generated } = state else {
            return Err(StateError("not a Cluster state".into()));
        };
        check(*start < space.size(), "start outside the universe")?;
        check(*generated <= space.size(), "generated exceeds universe")?;
        let mut emitted = IntervalSet::new(space);
        if *generated > 0 {
            emitted.insert(Arc::new(space, Id(*start), *generated));
        }
        Ok(ClusterGenerator {
            space,
            start: Id(*start),
            generated: *generated,
            emitted,
            flushed: *generated,
        })
    }
}

impl IdGenerator for ClusterGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        if self.generated >= self.space.size() {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        let id = self.space.add(self.start, self.generated);
        self.generated += 1;
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        self.flush();
        Footprint::Arcs(&self.emitted)
    }

    fn next_ids(&mut self, count: u128, sink: &mut dyn FnMut(Arc)) -> Result<(), GeneratorError> {
        let available = self.space.size() - self.generated;
        let take = count.min(available);
        if take > 0 {
            let first = self.space.add(self.start, self.generated);
            self.generated += take;
            sink(Arc::new(self.space, first, take));
        }
        if take < count {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        Ok(())
    }

    fn supports_bulk_lease(&self) -> bool {
        // The whole lease is one arc of the instance's single cluster.
        true
    }

    fn skip(&mut self, count: u128) -> Result<(), GeneratorError> {
        let available = self.space.size() - self.generated;
        if count > available {
            // Advance past what fits so the footprint reflects a maximal
            // attempt, mirroring what repeated next_id calls would do.
            self.generated += available;
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        self.generated += count;
        Ok(())
    }

    fn supports_fast_skip(&self) -> bool {
        true
    }

    fn reset(&mut self, seed: u64) {
        let mut rng = Xoshiro256pp::new(seed);
        self.start = Id(uniform_below(&mut rng, self.space.size()));
        self.generated = 0;
        self.flushed = 0;
        self.emitted.clear();
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        Some(GeneratorState::Cluster {
            start: self.start.value(),
            generated: self.generated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_consecutive_mod_m() {
        let space = IdSpace::new(20).unwrap();
        let mut g = ClusterGenerator::new(space, 1);
        let first = g.next_id().unwrap();
        let mut prev = first;
        for _ in 1..20 {
            let id = g.next_id().unwrap();
            assert_eq!(id, space.next(prev), "IDs must be sequential mod m");
            prev = id;
        }
        assert!(matches!(g.next_id(), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn start_is_uniform() {
        let space = IdSpace::new(10).unwrap();
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for seed in 0..trials {
            let g = ClusterGenerator::new(space, seed);
            counts[g.start().value() as usize] += 1;
        }
        let expected = trials as f64 / 10.0;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "start {v}: dev {dev:.3}");
        }
    }

    #[test]
    fn footprint_is_one_arc_until_wrap() {
        let space = IdSpace::new(100).unwrap();
        let mut g = ClusterGenerator::new(space, 2);
        for _ in 0..30 {
            g.next_id().unwrap();
        }
        match g.footprint() {
            Footprint::Arcs(set) => {
                assert_eq!(set.measure(), 30);
                assert!(set.segment_count() <= 2, "one arc, possibly split by wrap");
            }
            _ => panic!("Cluster must report an arc footprint"),
        }
    }

    #[test]
    fn skip_matches_materialized_emission() {
        let space = IdSpace::new(1 << 20).unwrap();
        let mut a = ClusterGenerator::new(space, 3);
        let mut b = ClusterGenerator::new(space, 3);
        a.skip(1000).unwrap();
        for _ in 0..1000 {
            b.next_id().unwrap();
        }
        assert_eq!(a.generated(), b.generated());
        let (fa, fb) = (a.footprint(), b.footprint());
        match (fa, fb) {
            (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
                assert_eq!(sa.measure(), sb.measure());
                assert_eq!(sa.intersection_measure_set(sb), 1000);
            }
            _ => panic!("arc footprints expected"),
        }
        // Continuing after a skip yields the right next ID.
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn skip_beyond_capacity_is_exhaustion() {
        let space = IdSpace::new(50).unwrap();
        let mut g = ClusterGenerator::new(space, 4);
        g.skip(40).unwrap();
        let err = g.skip(20).unwrap_err();
        assert_eq!(err, GeneratorError::Exhausted { generated: 50 });
        assert_eq!(g.footprint().measure(), 50);
    }

    #[test]
    fn huge_demand_fast_skip() {
        let space = IdSpace::with_bits(90).unwrap();
        let mut g = ClusterGenerator::new(space, 5);
        g.skip(1 << 60).unwrap();
        assert_eq!(g.generated(), 1 << 60);
        assert_eq!(g.footprint().measure(), 1 << 60);
        assert!(g.supports_fast_skip());
    }

    #[test]
    fn wrap_around_is_seamless() {
        let space = IdSpace::new(10).unwrap();
        // Find a seed whose start is late enough to force a wrap.
        for seed in 0..100 {
            let mut g = ClusterGenerator::new(space, seed);
            if g.start().value() >= 7 {
                let ids: Vec<_> = (0..10).map(|_| g.next_id().unwrap()).collect();
                let mut sorted: Vec<_> = ids.iter().map(|i| i.value()).collect();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..10).collect::<Vec<_>>());
                return;
            }
        }
        panic!("no wrapping seed found in 100 tries");
    }
}
