//! **Bins★** — optimal competitive ratio, `O(log m)`, in both the oblivious
//! and adaptive settings (Theorems 9–11).
//!
//! > *Algorithm Bins★: partition the ID space into `O(log m)` chunks and
//! > partition the `i`-th chunk into bins of `2^(i−1)` IDs each. Pick a
//! > uniformly random bin of size 1, then of size 2, then of size 4, and so
//! > on, always returning all IDs of a bin in increasing order before
//! > moving on to a bin of twice the size.*
//!
//! Section 7.1 fixes the geometry: the number of chunks is
//! `C = ⌈log m − log log m⌉`, each chunk has `2^(C−1)` IDs, and chunk `i`
//! is split into `2^(C−i)` bins of size `2^(i−1)`. This fits because
//! `C · 2^(C−1) ≤ m`.
//!
//! The point of the layout is that instances with similar loads draw most
//! of their IDs from the same *region* of `[m]`: a low-demand instance only
//! ever occupies small-bin chunks, so it can only collide with a few IDs of
//! a high-demand instance — which is what drives the `O(log m)` competitive
//! ratio on skewed profiles where Cluster loses a `Θ(d)` factor.
//!
//! Bins★ does not specify what happens after the last chunk's bin is
//! exhausted (the analysis only covers demand below `m / log m`); we report
//! [`GeneratorError::Exhausted`].

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::rng::{uniform_below, Xoshiro256pp};
use crate::state::{check, rng_from, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// How the number of chunks `C` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkRule {
    /// The paper's Section 7.1 formula `C = ⌈log m − log log m⌉`.
    #[default]
    PaperFormula,
    /// The largest `C` with `C · 2^(C−1) ≤ m`. Uses more of the universe
    /// and serves about twice the demand per instance; the paper's own
    /// `m = 32` illustration implicitly uses this variant (8 requests need
    /// `C = 4`, the formula gives `C = 3`). The competitive-ratio analysis
    /// holds for either choice, since `2^C = Ω(m / log m)` in both.
    MaxFit,
}

/// The chunk/bin layout of Bins★ over a universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinsStarGeometry {
    /// Number of chunks `C`.
    pub chunks: u32,
    /// IDs per chunk, `2^(C−1)`.
    pub chunk_size: u128,
}

impl BinsStarGeometry {
    /// Computes the layout for `space` under `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` (a one-ID universe has no meaningful layout).
    pub fn compute(space: IdSpace, rule: ChunkRule) -> Self {
        let m = space.size();
        assert!(m >= 2, "Bins* requires a universe of at least 2 IDs");
        let chunks = match rule {
            ChunkRule::PaperFormula => {
                let l = (m as f64).log2();
                let c = (l - l.log2()).ceil();
                let mut c = if c < 1.0 { 1 } else { c as u32 };
                // Guard against f64 edge cases: shrink until the layout fits.
                while c > 1 && !fits(c, m) {
                    c -= 1;
                }
                c
            }
            ChunkRule::MaxFit => {
                let mut c = 1u32;
                while c < 127 && fits(c + 1, m) {
                    c += 1;
                }
                c
            }
        };
        debug_assert!(fits(chunks, m), "chunk layout must fit in the universe");
        BinsStarGeometry {
            chunks,
            chunk_size: 1u128 << (chunks - 1),
        }
    }

    /// First ID of chunk `i` (1-based).
    pub fn chunk_start(&self, i: u32) -> u128 {
        debug_assert!(i >= 1 && i <= self.chunks);
        (i as u128 - 1) * self.chunk_size
    }

    /// Bin size within chunk `i` (1-based): `2^(i−1)`.
    pub fn bin_size(&self, i: u32) -> u128 {
        debug_assert!(i >= 1 && i <= self.chunks);
        1u128 << (i - 1)
    }

    /// Number of bins in chunk `i` (1-based): `2^(C−i)`.
    pub fn bins_in_chunk(&self, i: u32) -> u128 {
        debug_assert!(i >= 1 && i <= self.chunks);
        1u128 << (self.chunks - i)
    }

    /// Total IDs one instance can serve: `2^C − 1`.
    pub fn capacity(&self) -> u128 {
        (1u128 << self.chunks) - 1
    }
}

fn fits(c: u32, m: u128) -> bool {
    c < 127 && (c as u128).saturating_mul(1u128 << (c - 1)) <= m
}

/// Factory for [`BinsStarGenerator`] instances.
#[derive(Debug, Clone)]
pub struct BinsStar {
    space: IdSpace,
    geometry: BinsStarGeometry,
}

impl BinsStar {
    /// Bins★ over `space` with the paper's chunk formula.
    pub fn new(space: IdSpace) -> Self {
        Self::with_rule(space, ChunkRule::PaperFormula)
    }

    /// Bins★ over `space` with an explicit chunk rule.
    pub fn with_rule(space: IdSpace, rule: ChunkRule) -> Self {
        BinsStar {
            space,
            geometry: BinsStarGeometry::compute(space, rule),
        }
    }

    /// The layout in use.
    pub fn geometry(&self) -> BinsStarGeometry {
        self.geometry
    }
}

impl Algorithm for BinsStar {
    fn name(&self) -> String {
        "bins*".to_owned()
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(BinsStarGenerator::with_geometry(
            self.space,
            self.geometry,
            seed,
        ))
    }
}

/// One instance of Bins★.
///
/// The emitted footprint is lazy, like Cluster★'s: `next_id` only
/// advances the open bin's counter; the emitted prefix is folded into
/// the interval set when the bin closes or on
/// [`IdGenerator::footprint`].
#[derive(Debug)]
pub struct BinsStarGenerator {
    space: IdSpace,
    geometry: BinsStarGeometry,
    rng: Xoshiro256pp,
    /// 1-based index of the *next* chunk to open a bin in.
    next_chunk: u32,
    /// The bin currently being emitted: `(bin, ids out, ids flushed)`.
    current: Option<(Arc, u128, u128)>,
    /// Chosen bins in order (diagnostics / adversaries).
    bins: Vec<Arc>,
    emitted: IntervalSet,
    generated: u128,
}

impl BinsStarGenerator {
    /// A fresh instance over `space` (paper chunk formula), seeded.
    pub fn new(space: IdSpace, seed: u64) -> Self {
        Self::with_geometry(
            space,
            BinsStarGeometry::compute(space, ChunkRule::PaperFormula),
            seed,
        )
    }

    /// A fresh instance with an explicit layout.
    pub fn with_geometry(space: IdSpace, geometry: BinsStarGeometry, seed: u64) -> Self {
        BinsStarGenerator {
            space,
            geometry,
            rng: Xoshiro256pp::new(seed),
            next_chunk: 1,
            current: None,
            bins: Vec::new(),
            emitted: IntervalSet::new(space),
            generated: 0,
        }
    }

    /// Rebuilds an instance from a [`GeneratorState::BinsStar`] snapshot.
    /// The emitted set is reconstructed from the bin list (bins are
    /// emitted fully, in order, except the last).
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::BinsStar {
            rng,
            chunks,
            chunk_size,
            next_chunk,
            bins,
            current_used,
            generated,
        } = state
        else {
            return Err(StateError("not a BinsStar state".into()));
        };
        check(*chunks >= 1 && *chunks < 127, "chunk count out of range")?;
        check(
            *chunk_size == 1u128 << (chunks - 1),
            "chunk size inconsistent with chunk count",
        )?;
        check(
            (*chunks as u128) * chunk_size <= space.size(),
            "layout exceeds universe",
        )?;
        let geometry = BinsStarGeometry {
            chunks: *chunks,
            chunk_size: *chunk_size,
        };
        check(
            *next_chunk >= 1 && *next_chunk <= chunks + 1,
            "next chunk out of range",
        )?;
        check(
            bins.len() as u32 == next_chunk - 1,
            "bin count inconsistent with next chunk",
        )?;
        let mut arcs = Vec::with_capacity(bins.len());
        for (idx, &(start, len)) in bins.iter().enumerate() {
            let chunk = idx as u32 + 1;
            let lo = geometry.chunk_start(chunk);
            let hi = lo + geometry.chunk_size;
            check(len == geometry.bin_size(chunk), "bin size mismatch")?;
            check(
                start >= lo && start + len <= hi && (start - lo).is_multiple_of(len),
                "bin not aligned within its chunk",
            )?;
            arcs.push(Arc::new(space, Id(start), len));
        }
        let mut emitted = IntervalSet::new(space);
        for bin in arcs.iter().take(arcs.len().saturating_sub(1)) {
            emitted.insert(*bin);
        }
        let current = match (arcs.last(), current_used) {
            (Some(last), Some(used)) => {
                check(*used <= last.len, "current bin overdrawn")?;
                if *used > 0 {
                    emitted.insert(Arc::new(space, last.start, *used));
                }
                Some((*last, *used, *used))
            }
            (None, None) => None,
            _ => return Err(StateError("current_used inconsistent with bins".into())),
        };
        check(
            emitted.measure() == *generated,
            "emitted measure != generated",
        )?;
        Ok(BinsStarGenerator {
            space,
            geometry,
            rng: rng_from(*rng)?,
            next_chunk: *next_chunk,
            current,
            bins: arcs,
            emitted,
            generated: *generated,
        })
    }

    /// The bins chosen so far, in choice order.
    pub fn bins(&self) -> &[Arc] {
        &self.bins
    }

    /// Folds the open bin's unflushed emitted prefix into `emitted`.
    fn flush(&mut self) {
        if let Some((bin, used, flushed)) = &mut self.current {
            if *used > *flushed {
                let first = self.space.add(bin.start, *flushed);
                self.emitted
                    .insert(Arc::new(self.space, first, *used - *flushed));
                *flushed = *used;
            }
        }
    }

    /// Opens the uniform random bin of the next chunk.
    fn open_next_bin(&mut self) -> Result<Arc, GeneratorError> {
        if self.next_chunk > self.geometry.chunks {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        self.flush(); // retire the finished bin before replacing it
        let i = self.next_chunk;
        let b = uniform_below(&mut self.rng, self.geometry.bins_in_chunk(i));
        let start = self.geometry.chunk_start(i) + b * self.geometry.bin_size(i);
        let bin = Arc::new(self.space, Id(start), self.geometry.bin_size(i));
        self.bins.push(bin);
        self.current = Some((bin, 0, 0));
        self.next_chunk += 1;
        Ok(bin)
    }
}

impl IdGenerator for BinsStarGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        let (bin, used) = match self.current {
            Some((bin, used, _)) if used < bin.len => (bin, used),
            _ => (self.open_next_bin()?, 0),
        };
        let id = bin.nth(self.space, used);
        if let Some((_, u, _)) = &mut self.current {
            *u = used + 1;
        }
        self.generated += 1;
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        self.flush();
        Footprint::Arcs(&self.emitted)
    }

    fn next_ids(
        &mut self,
        mut count: u128,
        sink: &mut dyn FnMut(Arc),
    ) -> Result<(), GeneratorError> {
        while count > 0 {
            let (bin, used) = match self.current {
                Some((bin, used, _)) if used < bin.len => (bin, used),
                _ => (self.open_next_bin()?, 0),
            };
            let take = count.min(bin.len - used);
            sink(Arc::new(self.space, self.space.add(bin.start, used), take));
            if let Some((_, u, _)) = &mut self.current {
                *u = used + take;
            }
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_bulk_lease(&self) -> bool {
        // One arc per touched chunk bin: O(log count) arcs per lease.
        true
    }

    fn skip(&mut self, mut count: u128) -> Result<(), GeneratorError> {
        while count > 0 {
            let (bin, used) = match self.current {
                Some((bin, used, _)) if used < bin.len => (bin, used),
                _ => (self.open_next_bin()?, 0),
            };
            let take = count.min(bin.len - used);
            if let Some((_, u, _)) = &mut self.current {
                *u = used + take;
            }
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_fast_skip(&self) -> bool {
        true
    }

    fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::new(seed);
        self.next_chunk = 1;
        self.current = None;
        self.bins.clear();
        self.emitted.clear();
        self.generated = 0;
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        Some(GeneratorState::BinsStar {
            rng: self.rng.state(),
            chunks: self.geometry.chunks,
            chunk_size: self.geometry.chunk_size,
            next_chunk: self.next_chunk,
            bins: self.bins.iter().map(|b| (b.start.value(), b.len)).collect(),
            current_used: self.current.map(|(_, used, _)| used),
            generated: self.generated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_formula_geometry_examples() {
        // m = 32: C = ⌈5 − log₂5⌉ = ⌈2.678⌉ = 3, chunk size 4.
        let g = BinsStarGeometry::compute(IdSpace::new(32).unwrap(), ChunkRule::PaperFormula);
        assert_eq!(g.chunks, 3);
        assert_eq!(g.chunk_size, 4);
        assert_eq!(g.capacity(), 7);
        // m = 2^20: C = ⌈20 − log₂20⌉ = ⌈15.678⌉ = 16.
        let g = BinsStarGeometry::compute(IdSpace::with_bits(20).unwrap(), ChunkRule::PaperFormula);
        assert_eq!(g.chunks, 16);
        assert!((g.chunks as u128) * g.chunk_size <= 1 << 20);
    }

    #[test]
    fn max_fit_geometry_examples() {
        // m = 32: 4·2³ = 32 fits, 5·2⁴ = 80 does not.
        let g = BinsStarGeometry::compute(IdSpace::new(32).unwrap(), ChunkRule::MaxFit);
        assert_eq!(g.chunks, 4);
        assert_eq!(g.capacity(), 15);
    }

    #[test]
    fn layout_always_fits_universe() {
        for bits in [1u32, 2, 3, 5, 10, 20, 40, 64, 100, 126] {
            let space = IdSpace::with_bits(bits).unwrap();
            for rule in [ChunkRule::PaperFormula, ChunkRule::MaxFit] {
                let g = BinsStarGeometry::compute(space, rule);
                assert!(
                    (g.chunks as u128) * g.chunk_size <= space.size(),
                    "bits={bits} rule={rule:?}"
                );
            }
        }
        // Non-powers of two as well.
        for m in [2u128, 3, 5, 20, 100, 12345, (1 << 30) + 7] {
            let space = IdSpace::new(m).unwrap();
            let g = BinsStarGeometry::compute(space, ChunkRule::PaperFormula);
            assert!((g.chunks as u128) * g.chunk_size <= m, "m={m}");
        }
    }

    #[test]
    fn chunk_layout_indices() {
        let g = BinsStarGeometry {
            chunks: 3,
            chunk_size: 4,
        };
        assert_eq!(g.chunk_start(1), 0);
        assert_eq!(g.chunk_start(2), 4);
        assert_eq!(g.chunk_start(3), 8);
        assert_eq!(g.bin_size(1), 1);
        assert_eq!(g.bin_size(2), 2);
        assert_eq!(g.bin_size(3), 4);
        assert_eq!(g.bins_in_chunk(1), 4);
        assert_eq!(g.bins_in_chunk(2), 2);
        assert_eq!(g.bins_in_chunk(3), 1);
    }

    #[test]
    fn bin_sizes_double_and_live_in_their_chunks() {
        let space = IdSpace::with_bits(16).unwrap();
        let mut g = BinsStarGenerator::new(space, 1);
        let geo = g.geometry;
        let total = 1 + 2 + 4 + 8;
        for _ in 0..total {
            g.next_id().unwrap();
        }
        assert_eq!(g.bins().len(), 4);
        for (idx, bin) in g.bins().iter().enumerate() {
            let chunk = idx as u32 + 1;
            assert_eq!(bin.len, geo.bin_size(chunk));
            let lo = geo.chunk_start(chunk);
            let hi = lo + geo.chunk_size;
            assert!(bin.start.value() >= lo && bin.start.value() + bin.len <= hi);
            // Bins are aligned within their chunk.
            assert_eq!((bin.start.value() - lo) % bin.len, 0);
        }
    }

    #[test]
    fn no_duplicates_up_to_capacity() {
        let space = IdSpace::new(20).unwrap();
        let geo = BinsStarGeometry::compute(space, ChunkRule::PaperFormula);
        let mut g = BinsStarGenerator::new(space, 2);
        let mut seen = HashSet::new();
        for _ in 0..geo.capacity() {
            assert!(seen.insert(g.next_id().unwrap()));
        }
        assert!(matches!(g.next_id(), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn first_bin_choice_is_uniform() {
        let space = IdSpace::new(32).unwrap();
        // Chunk 1 has 4 bins of size 1 at positions 0..4.
        let mut counts = [0u32; 4];
        let trials = 80_000;
        for seed in 0..trials {
            let mut g = BinsStarGenerator::new(space, seed);
            counts[g.next_id().unwrap().value() as usize] += 1;
        }
        let expected = trials as f64 / 4.0;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bin {b}: dev {dev:.3}");
        }
    }

    #[test]
    fn skip_matches_materialized_emission() {
        let space = IdSpace::with_bits(20).unwrap();
        let mut a = BinsStarGenerator::new(space, 9);
        let mut b = BinsStarGenerator::new(space, 9);
        a.skip(500).unwrap();
        for _ in 0..500 {
            b.next_id().unwrap();
        }
        assert_eq!(a.bins(), b.bins());
        match (a.footprint(), b.footprint()) {
            (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
                assert_eq!(sa.measure(), 500);
                assert_eq!(sa.intersection_measure_set(sb), 500);
            }
            _ => panic!(),
        }
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn max_fit_serves_the_paper_illustration() {
        // The paper's Bins* illustration: m = 32, 8 requests.
        let space = IdSpace::new(32).unwrap();
        let alg = BinsStar::with_rule(space, ChunkRule::MaxFit);
        let mut g = alg.spawn(3);
        for _ in 0..8 {
            g.next_id().unwrap();
        }
        assert_eq!(g.generated(), 8);
    }
}
