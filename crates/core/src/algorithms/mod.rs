//! The ID-generation algorithms.
//!
//! Five algorithms from the paper — [`Random`], [`Cluster`], [`Bins`],
//! [`ClusterStar`], [`BinsStar`] — plus the Lemma 24 witness
//! [`SetAside`] and two practical comparators, [`Snowflake`] and
//! [`SessionCounter`]. [`AlgorithmKind`] is the data-driven registry that
//! experiments, benches, and CLIs use to name and instantiate them.

pub mod bins;
pub mod bins_star;
pub mod cluster;
pub mod cluster_star;
pub mod random;
pub mod rocksdb_session;
pub mod set_aside;
pub mod snowflake;

pub use bins::{Bins, BinsGenerator};
pub use bins_star::{BinsStar, BinsStarGenerator, BinsStarGeometry, ChunkRule};
pub use cluster::{Cluster, ClusterGenerator};
pub use cluster_star::{ClusterStar, ClusterStarGenerator};
pub use random::{Random, RandomGenerator};
pub use rocksdb_session::{SessionCounter, SessionCounterGenerator};
pub use set_aside::{SetAside, SetAsideGenerator};
pub use snowflake::{Snowflake, SnowflakeConfig, SnowflakeGenerator};

use crate::id::IdSpace;
use crate::traits::Algorithm;

/// A serializable description of an algorithm, decoupled from a universe.
///
/// Experiments are parameterized by `(AlgorithmKind, IdSpace)` pairs;
/// [`AlgorithmKind::build`] turns the pair into a live factory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Uniform permutation of `[m]` (the GUID random part).
    Random,
    /// Random start, sequential IDs (RocksDB; Theorem 1).
    Cluster,
    /// Random permutation of aligned bins of size `k` (Theorem 2).
    Bins {
        /// Bin size, `1 ≤ k ≤ m`.
        k: u128,
    },
    /// Doubling runs placed uniformly among own runs (Theorem 8).
    ClusterStar,
    /// Cluster★ with run growth ×`growth` instead of doubling (the
    /// growth-factor ablation).
    ClusterStarGrowth {
        /// Run-length growth factor, `≥ 2`.
        growth: u32,
    },
    /// One bin per doubling-size chunk (Theorems 9 and 11).
    BinsStar,
    /// Bins★ with the max-fit chunk count instead of the paper formula.
    BinsStarMaxFit,
    /// Lemma 24 construction for the two-instance profile `(i, j)`.
    SetAside {
        /// Head demand `i`.
        i: u128,
        /// Total demand `j` of the heavy instance.
        j: u128,
    },
    /// Timestamp ‖ worker ‖ sequence with a skewed-clock fault model.
    Snowflake(SnowflakeConfig),
    /// Random session prefix + counter (RocksDB PR #8990 / #9126 shape).
    SessionCounter {
        /// Bits of random session prefix.
        session_bits: u32,
        /// Bits of sequential counter.
        counter_bits: u32,
    },
}

impl AlgorithmKind {
    /// Instantiates the algorithm over `space`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid for `space` (e.g. `k > m`), or
    /// if a bit-layout algorithm is paired with a mismatched universe.
    pub fn build(&self, space: IdSpace) -> Box<dyn Algorithm> {
        match self {
            AlgorithmKind::Random => Box::new(Random::new(space)),
            AlgorithmKind::Cluster => Box::new(Cluster::new(space)),
            AlgorithmKind::Bins { k } => Box::new(Bins::new(space, *k)),
            AlgorithmKind::ClusterStar => Box::new(ClusterStar::new(space)),
            AlgorithmKind::ClusterStarGrowth { growth } => {
                Box::new(ClusterStar::with_growth(space, *growth))
            }
            AlgorithmKind::BinsStar => Box::new(BinsStar::new(space)),
            AlgorithmKind::BinsStarMaxFit => {
                Box::new(BinsStar::with_rule(space, ChunkRule::MaxFit))
            }
            AlgorithmKind::SetAside { i, j } => Box::new(SetAside::new(space, *i, *j)),
            AlgorithmKind::Snowflake(cfg) => {
                let alg = Snowflake::new(*cfg);
                assert_eq!(
                    alg.space(),
                    space,
                    "Snowflake layout implies m = 2^{}, got {space}",
                    cfg.total_bits()
                );
                Box::new(alg)
            }
            AlgorithmKind::SessionCounter {
                session_bits,
                counter_bits,
            } => {
                let alg = SessionCounter::new(*session_bits, *counter_bits);
                assert_eq!(
                    alg.space(),
                    space,
                    "SessionCounter layout implies m = 2^{}, got {space}",
                    session_bits + counter_bits
                );
                Box::new(alg)
            }
        }
    }

    /// The algorithms analyzed by the paper, suitable for comparison grids
    /// over an arbitrary universe. `bins_k` selects the Bins parameter.
    pub fn paper_suite(bins_k: u128) -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::Random,
            AlgorithmKind::Cluster,
            AlgorithmKind::Bins { k: bins_k },
            AlgorithmKind::ClusterStar,
            AlgorithmKind::BinsStar,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_working_factories() {
        let space = IdSpace::new(1 << 16).unwrap();
        let kinds = [
            AlgorithmKind::Random,
            AlgorithmKind::Cluster,
            AlgorithmKind::Bins { k: 16 },
            AlgorithmKind::ClusterStar,
            AlgorithmKind::ClusterStarGrowth { growth: 4 },
            AlgorithmKind::BinsStar,
            AlgorithmKind::BinsStarMaxFit,
            AlgorithmKind::SetAside { i: 4, j: 20 },
        ];
        for kind in kinds {
            let alg = kind.build(space);
            let mut g = alg.spawn(1);
            let id = g.next_id().unwrap();
            assert!(space.contains(id), "{}: ID out of space", alg.name());
        }
    }

    #[test]
    fn bit_layout_algorithms_check_space() {
        let cfg = SnowflakeConfig {
            timestamp_bits: 10,
            worker_bits: 5,
            sequence_bits: 5,
            requests_per_tick: 4,
            max_skew_ticks: 0,
        };
        let space = IdSpace::with_bits(20).unwrap();
        let alg = AlgorithmKind::Snowflake(cfg).build(space);
        assert_eq!(alg.space(), space);

        let alg = AlgorithmKind::SessionCounter {
            session_bits: 12,
            counter_bits: 8,
        }
        .build(space);
        assert_eq!(alg.space(), space);
    }

    #[test]
    #[should_panic(expected = "Snowflake layout")]
    fn mismatched_snowflake_space_panics() {
        let cfg = SnowflakeConfig {
            timestamp_bits: 10,
            worker_bits: 5,
            sequence_bits: 5,
            requests_per_tick: 4,
            max_skew_ticks: 0,
        };
        AlgorithmKind::Snowflake(cfg).build(IdSpace::with_bits(21).unwrap());
    }

    #[test]
    fn paper_suite_contains_all_five() {
        let suite = AlgorithmKind::paper_suite(8);
        assert_eq!(suite.len(), 5);
        let space = IdSpace::new(1 << 12).unwrap();
        let names: Vec<String> = suite.iter().map(|k| k.build(space).name()).collect();
        assert_eq!(names, ["random", "cluster", "bins(8)", "cluster*", "bins*"]);
    }

    #[test]
    fn names_are_stable() {
        let space = IdSpace::new(1 << 10).unwrap();
        assert_eq!(AlgorithmKind::Cluster.build(space).name(), "cluster");
        assert_eq!(
            AlgorithmKind::SetAside { i: 1, j: 9 }.build(space).name(),
            "set-aside(1, 9)"
        );
        assert_eq!(
            AlgorithmKind::ClusterStarGrowth { growth: 3 }
                .build(space)
                .name(),
            "cluster*(x3)"
        );
    }

    #[test]
    fn growth_registry_entry_matches_the_direct_constructor() {
        // The ablation entry must spawn generators bit-identical to
        // ClusterStar::with_growth — same stream, same exhaustion.
        let space = IdSpace::new(1 << 12).unwrap();
        let registry = AlgorithmKind::ClusterStarGrowth { growth: 4 }.build(space);
        let direct = ClusterStar::with_growth(space, 4);
        let mut a = registry.spawn(77);
        let mut b = direct.spawn(77);
        for i in 0..2000 {
            match (a.next_id(), b.next_id()) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "diverged at ID {i}"),
                (Err(_), Err(_)) => break,
                (x, y) => panic!("exhaustion diverged at {i}: {x:?} vs {y:?}"),
            }
        }
    }
}
