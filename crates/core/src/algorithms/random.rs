//! **Random** — the paper's model of the random part of GUIDs.
//!
//! > *Algorithm Random: return the IDs from `[m]` in a uniformly random
//! > order.*
//!
//! Every request reveals the next element of a uniform random permutation
//! of `[m]`, i.e. sampling without replacement. Corollary 3 gives its
//! collision probability as `Θ(min(1, (‖D‖₁² − ‖D‖₂²)/m))` — the birthday
//! bound — which is why Random is only safe while the total demand stays
//! far below `√m`.
//!
//! Implemented with a lazy Fisher–Yates shuffle ([`crate::shuffle`]), so a
//! draw is O(1) for any `m` up to 2¹²⁷.

use crate::id::{Id, IdSpace};
use crate::rng::Xoshiro256pp;
use crate::shuffle::LazyShuffle;
use crate::state::{check, rng_from, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`RandomGenerator`] instances.
#[derive(Debug, Clone)]
pub struct Random {
    space: IdSpace,
}

impl Random {
    /// Random over the universe `space`.
    pub fn new(space: IdSpace) -> Self {
        Random { space }
    }
}

impl Algorithm for Random {
    fn name(&self) -> String {
        "random".to_owned()
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(RandomGenerator::new(self.space, seed))
    }
}

/// One instance of Random: a uniform permutation of `[m]`, revealed lazily.
#[derive(Debug)]
pub struct RandomGenerator {
    space: IdSpace,
    rng: Xoshiro256pp,
    shuffle: LazyShuffle,
    emitted: Vec<Id>,
}

impl RandomGenerator {
    /// A fresh instance seeded with `seed`.
    pub fn new(space: IdSpace, seed: u64) -> Self {
        RandomGenerator {
            space,
            rng: Xoshiro256pp::new(seed),
            shuffle: LazyShuffle::new(space.size()),
            emitted: Vec::new(),
        }
    }

    /// Rebuilds an instance from a [`GeneratorState::Random`] snapshot.
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::Random {
            rng,
            drawn,
            displacements,
            emitted,
        } = state
        else {
            return Err(StateError("not a Random state".into()));
        };
        let m = space.size();
        check(*drawn <= m, "drawn exceeds universe")?;
        check(emitted.len() as u128 == *drawn, "emitted count != drawn")?;
        check(emitted.iter().all(|&v| v < m), "emitted ID out of universe")?;
        check(
            displacements
                .iter()
                .all(|&(k, x)| k >= *drawn && k < m && x < m),
            "displacement out of range",
        )?;
        Ok(RandomGenerator {
            space,
            rng: rng_from(*rng)?,
            shuffle: LazyShuffle::from_parts(m, *drawn, displacements.clone()),
            emitted: emitted.iter().map(|&v| Id(v)).collect(),
        })
    }
}

impl IdGenerator for RandomGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        match self.shuffle.draw(&mut self.rng) {
            Some(v) => {
                let id = Id(v);
                self.emitted.push(id);
                Ok(id)
            }
            None => Err(GeneratorError::Exhausted {
                generated: self.shuffle.drawn(),
            }),
        }
    }

    fn generated(&self) -> u128 {
        self.shuffle.drawn()
    }

    fn footprint(&mut self) -> Footprint<'_> {
        Footprint::Points(&self.emitted)
    }

    fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::new(seed);
        self.shuffle.reset(self.space.size());
        self.emitted.clear();
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        Some(GeneratorState::Random {
            rng: self.rng.state(),
            drawn: self.shuffle.drawn(),
            displacements: self.shuffle.displacements(),
            emitted: self.emitted.iter().map(|id| id.value()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn emits_a_permutation_of_the_universe() {
        let space = IdSpace::new(64).unwrap();
        let mut g = RandomGenerator::new(space, 1);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            let id = g.next_id().unwrap();
            assert!(space.contains(id));
            assert!(seen.insert(id), "duplicate ID within one instance");
        }
        assert!(matches!(
            g.next_id(),
            Err(GeneratorError::Exhausted { generated: 64 })
        ));
    }

    #[test]
    fn instances_with_different_seeds_differ() {
        let space = IdSpace::new(1 << 30).unwrap();
        let alg = Random::new(space);
        let mut a = alg.spawn(1);
        let mut b = alg.spawn(2);
        let xs: Vec<_> = (0..32).map(|_| a.next_id().unwrap()).collect();
        let ys: Vec<_> = (0..32).map(|_| b.next_id().unwrap()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let space = IdSpace::new(1000).unwrap();
        let alg = Random::new(space);
        let mut a = alg.spawn(7);
        let mut b = alg.spawn(7);
        for _ in 0..100 {
            assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
        }
    }

    #[test]
    fn footprint_matches_emitted_ids() {
        let space = IdSpace::new(128).unwrap();
        let mut g = RandomGenerator::new(space, 3);
        let ids: Vec<_> = (0..10).map(|_| g.next_id().unwrap()).collect();
        match g.footprint() {
            Footprint::Points(p) => assert_eq!(p, ids.as_slice()),
            _ => panic!("Random must report a point footprint"),
        }
        assert_eq!(g.footprint().measure(), 10);
    }

    #[test]
    fn first_id_is_uniform() {
        let space = IdSpace::new(8).unwrap();
        let mut counts = [0u32; 8];
        let trials = 80_000;
        for seed in 0..trials {
            let mut g = RandomGenerator::new(space, seed);
            counts[g.next_id().unwrap().value() as usize] += 1;
        }
        let expected = trials as f64 / 8.0;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "id {v}: dev {dev:.3}");
        }
    }

    #[test]
    fn works_at_guid_scale() {
        let space = IdSpace::with_bits(127).unwrap();
        let mut g = RandomGenerator::new(space, 9);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
    }
}
