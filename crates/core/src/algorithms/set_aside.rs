//! **SetAside(i, j)** — the profile-tailored construction from Lemma 24,
//! used as the `p*` upper-bound witness for two-instance profiles.
//!
//! > *The algorithm sets aside `j − i` hard-wired IDs. The first `i`
//! > requests are handled using Bins(i) on the rest of the IDs. All other
//! > requests (which are at most `j − i`) are served from the hard-wired
//! > IDs.*
//!
//! On the demand profile `(i, j)` (with `i ≤ j ≤ m/2`), a collision can
//! only happen between the two Bins(i) heads — the hard-wired tail is only
//! reached by the single high-demand instance — so
//! `p = p_Bins(i)((i,i))` on `m − j + i` IDs `= Θ(i/m)`, matching the
//! Lemma 24 lower bound. This is the algorithm exhibiting that Cluster's
//! competitive ratio is `Θ(d)` away from optimal on skewed profiles
//! (Section 3.4's example is SetAside(1, d−1)).
//!
//! SetAside is *not* a general-purpose algorithm: if two instances both
//! exceed `i` requests they collide with certainty in the tail. It exists
//! to make `p*(D)` concrete in experiments E9/E10.

use crate::algorithms::bins::BinsGenerator;
use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`SetAsideGenerator`] instances, tailored to the demand
/// profile `(i, j)`.
#[derive(Debug, Clone)]
pub struct SetAside {
    space: IdSpace,
    head_demand: u128,
    tail_len: u128,
}

impl SetAside {
    /// The Lemma 24 construction for the profile `(i, j)`, `i ≤ j`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ j` and the head space `m − (j − i)` can hold
    /// at least one bin of size `i`.
    pub fn new(space: IdSpace, i: u128, j: u128) -> Self {
        assert!(i >= 1, "head demand must be at least 1");
        assert!(i <= j, "SetAside(i, j) requires i <= j");
        let tail_len = j - i;
        assert!(
            tail_len < space.size() && space.size() - tail_len >= i,
            "universe too small for SetAside({i}, {j})"
        );
        SetAside {
            space,
            head_demand: i,
            tail_len,
        }
    }

    /// The head universe `[m − (j − i)]` on which Bins(i) runs.
    pub fn head_space(&self) -> IdSpace {
        IdSpace::new(self.space.size() - self.tail_len).expect("validated at construction")
    }
}

impl Algorithm for SetAside {
    fn name(&self) -> String {
        format!(
            "set-aside({}, {})",
            self.head_demand,
            self.head_demand + self.tail_len
        )
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(SetAsideGenerator {
            space: self.space,
            head: BinsGenerator::new(self.head_space(), self.head_demand, seed),
            head_demand: self.head_demand,
            tail_len: self.tail_len,
            tail_emitted: 0,
            generated: 0,
            emitted: IntervalSet::new(self.space),
        })
    }
}

/// One instance of SetAside(i, j).
#[derive(Debug)]
pub struct SetAsideGenerator {
    space: IdSpace,
    head: BinsGenerator,
    head_demand: u128,
    tail_len: u128,
    tail_emitted: u128,
    generated: u128,
    emitted: IntervalSet,
}

impl IdGenerator for SetAsideGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        let id = if self.generated < self.head_demand {
            // Head: Bins(i) on the reduced space; IDs carry over unchanged.
            self.head.next_id().map_err(|_| GeneratorError::Exhausted {
                generated: self.generated,
            })?
        } else if self.tail_emitted < self.tail_len {
            // Tail: hard-wired IDs {m − (j−i), …, m − 1} in increasing order.
            let id = Id(self.space.size() - self.tail_len + self.tail_emitted);
            self.tail_emitted += 1;
            id
        } else {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        };
        self.emitted.insert(Arc::point(self.space, id));
        self.generated += 1;
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        Footprint::Arcs(&self.emitted)
    }

    fn reset(&mut self, seed: u64) {
        self.head.reset(seed);
        self.tail_emitted = 0;
        self.generated = 0;
        self.emitted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn head_then_hardwired_tail() {
        let space = IdSpace::new(100).unwrap();
        let (i, j) = (4u128, 10u128);
        let alg = SetAside::new(space, i, j);
        let mut g = alg.spawn(1);
        let mut ids = Vec::new();
        for _ in 0..j {
            ids.push(g.next_id().unwrap().value());
        }
        // Head IDs live in [0, m − (j−i)) = [0, 94).
        for &v in &ids[..i as usize] {
            assert!(v < 94, "head ID {v} outside head space");
        }
        // Tail IDs are exactly 94..100 in order.
        assert_eq!(&ids[i as usize..], &[94, 95, 96, 97, 98, 99]);
        assert!(matches!(g.next_id(), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn tail_is_deterministic_across_instances() {
        let space = IdSpace::new(64).unwrap();
        let alg = SetAside::new(space, 2, 6);
        let mut a = alg.spawn(1);
        let mut b = alg.spawn(2);
        for _ in 0..2 {
            a.next_id().unwrap();
            b.next_id().unwrap();
        }
        // Both instances now serve the identical hard-wired tail.
        for _ in 0..4 {
            assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
        }
    }

    #[test]
    fn no_duplicates_within_one_instance() {
        let space = IdSpace::new(256).unwrap();
        let alg = SetAside::new(space, 8, 40);
        let mut g = alg.spawn(3);
        let mut seen = HashSet::new();
        for _ in 0..40 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
    }

    #[test]
    fn i_equals_j_is_pure_bins() {
        let space = IdSpace::new(30).unwrap();
        let alg = SetAside::new(space, 5, 5);
        let mut g = alg.spawn(4);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            let id = g.next_id().unwrap();
            assert!(id.value() < 30);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn section_3_4_example_collision_probability() {
        // D = (d−1, 1) with SetAside(1, d−1): collision iff the two random
        // head IDs coincide, which has probability 1/(m − (d − 2)).
        let m = 50u128;
        let d = 12u128;
        let space = IdSpace::new(m).unwrap();
        let alg = SetAside::new(space, 1, d - 1);
        let trials = 200_000u64;
        let mut collisions = 0u64;
        for t in 0..trials {
            let mut a = alg.spawn(2 * t);
            let mut b = alg.spawn(2 * t + 1);
            // Instance a: d − 1 requests; instance b: 1 request.
            let mut ids_a = HashSet::new();
            for _ in 0..(d - 1) {
                ids_a.insert(a.next_id().unwrap());
            }
            if ids_a.contains(&b.next_id().unwrap()) {
                collisions += 1;
            }
        }
        let measured = collisions as f64 / trials as f64;
        let predicted = 1.0 / (m - (d - 2)) as f64;
        let ratio = measured / predicted;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured {measured:.5} vs predicted {predicted:.5}"
        );
    }
}
