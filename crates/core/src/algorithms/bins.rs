//! **Bins(k)** — a random permutation of aligned bins of `k` IDs.
//!
//! > *Algorithm Bins(k): partition `[m]` into `⌊m/k⌋` bins of `k` IDs and
//! > `m mod k` leftover IDs. Pick a random permutation of the bins. Iterate
//! > over the shuffled bins, returning all IDs of a bin in increasing order
//! > before moving on to the next bin. Finally, return the leftover IDs in
//! > increasing order.*
//!
//! Bins(1) is exactly Random. Theorem 2 gives the collision probability
//! `Θ(min(1, (‖D‖₁²−‖D‖₂²)/(km) + n‖D‖₁/m + n²k/m))`, and Lemma 16 shows
//! Bins(h) is the *optimal* algorithm for the uniform demand profile
//! `(h, …, h)` — which makes it the reference point (`p*`) for the paper's
//! lower bounds.

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::rng::Xoshiro256pp;
use crate::shuffle::LazyShuffle;
use crate::state::{check, rng_from, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`BinsGenerator`] instances.
#[derive(Debug, Clone)]
pub struct Bins {
    space: IdSpace,
    k: u128,
}

impl Bins {
    /// Bins(k) over the universe `space`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= m`, matching the paper's `k ∈ [m]`.
    pub fn new(space: IdSpace, k: u128) -> Self {
        assert!(k >= 1 && k <= space.size(), "Bins(k) requires k in [m]");
        Bins { space, k }
    }

    /// The bin size `k`.
    pub fn k(&self) -> u128 {
        self.k
    }
}

impl Algorithm for Bins {
    fn name(&self) -> String {
        format!("bins({})", self.k)
    }

    fn space(&self) -> IdSpace {
        self.space
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(BinsGenerator::new(self.space, self.k, seed))
    }
}

/// One instance of Bins(k).
///
/// The emitted footprint is lazy: `next_id` only advances counters; the
/// open bin's (and leftover tail's) emitted prefix is folded into the
/// interval set when the bin closes or on [`IdGenerator::footprint`].
#[derive(Debug)]
pub struct BinsGenerator {
    space: IdSpace,
    k: u128,
    num_bins: u128,
    rng: Xoshiro256pp,
    bin_order: LazyShuffle,
    /// Start of the bin currently being emitted, and how many of its IDs
    /// have been emitted.
    current: Option<(u128, u128)>,
    /// How many of the current bin's emitted IDs are in `emitted`.
    current_flushed: u128,
    /// IDs of the leftover tail emitted so far.
    leftover_emitted: u128,
    /// How many leftover IDs are in `emitted`.
    leftover_flushed: u128,
    generated: u128,
    emitted: IntervalSet,
}

impl BinsGenerator {
    /// A fresh instance seeded with `seed`.
    pub fn new(space: IdSpace, k: u128, seed: u64) -> Self {
        assert!(k >= 1 && k <= space.size(), "Bins(k) requires k in [m]");
        let num_bins = space.size() / k;
        BinsGenerator {
            space,
            k,
            num_bins,
            rng: Xoshiro256pp::new(seed),
            bin_order: LazyShuffle::new(num_bins),
            current: None,
            current_flushed: 0,
            leftover_emitted: 0,
            leftover_flushed: 0,
            generated: 0,
            emitted: IntervalSet::new(space),
        }
    }

    /// Folds unflushed emitted IDs (open-bin prefix, leftover prefix)
    /// into the interval set.
    fn flush(&mut self) {
        if let Some((start, used)) = self.current {
            if used > self.current_flushed {
                self.emitted.insert(Arc::new(
                    self.space,
                    Id(start + self.current_flushed),
                    used - self.current_flushed,
                ));
                self.current_flushed = used;
            }
        }
        if self.leftover_emitted > self.leftover_flushed {
            self.emitted.insert(Arc::new(
                self.space,
                Id(self.leftover_start() + self.leftover_flushed),
                self.leftover_emitted - self.leftover_flushed,
            ));
            self.leftover_flushed = self.leftover_emitted;
        }
    }

    /// First ID of the leftover region `{⌊m/k⌋·k, …, m−1}`.
    fn leftover_start(&self) -> u128 {
        self.num_bins * self.k
    }

    /// Number of leftover IDs, `m mod k`.
    fn leftover_len(&self) -> u128 {
        self.space.size() - self.leftover_start()
    }

    /// Rebuilds an instance from a [`GeneratorState::Bins`] snapshot.
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::Bins {
            k,
            rng,
            order_drawn,
            order_displacements,
            current,
            leftover_emitted,
            generated,
            emitted,
        } = state
        else {
            return Err(StateError("not a Bins state".into()));
        };
        let m = space.size();
        check(*k >= 1 && *k <= m, "bin size out of range")?;
        let num_bins = m / k;
        check(*order_drawn <= num_bins, "drawn bins exceed bin count")?;
        check(
            order_displacements
                .iter()
                .all(|&(key, x)| key >= *order_drawn && key < num_bins && x < num_bins),
            "bin displacement out of range",
        )?;
        if let Some((start, used)) = current {
            check(
                start % k == 0 && *start < num_bins * k,
                "unaligned open bin",
            )?;
            check(*used <= *k, "open bin overfull")?;
        }
        check(*leftover_emitted <= m - num_bins * k, "leftover overdrawn")?;
        check(*generated <= m, "generated exceeds universe")?;
        check(
            emitted.iter().all(|&(lo, hi)| lo < hi && hi <= m),
            "bad emitted segment",
        )?;
        let emitted_set = IntervalSet::from_segments(space, emitted.iter().copied());
        check(
            emitted_set.measure() == *generated,
            "emitted measure != generated",
        )?;
        Ok(BinsGenerator {
            space,
            k: *k,
            num_bins,
            rng: rng_from(*rng)?,
            bin_order: LazyShuffle::from_parts(num_bins, *order_drawn, order_displacements.clone()),
            current: *current,
            current_flushed: current.map(|(_, used)| used).unwrap_or(0),
            leftover_emitted: *leftover_emitted,
            leftover_flushed: *leftover_emitted,
            generated: *generated,
            emitted: emitted_set,
        })
    }

    /// Opens the next bin, if any remain, retiring the finished one.
    fn open_next_bin(&mut self) -> Option<u128> {
        let next = self.bin_order.draw(&mut self.rng).map(|bin| bin * self.k)?;
        self.flush();
        self.current = Some((next, 0));
        self.current_flushed = 0;
        Some(next)
    }
}

impl IdGenerator for BinsGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        // Continue the open bin if it has IDs left.
        if let Some((start, used)) = self.current {
            if used < self.k {
                self.current = Some((start, used + 1));
                self.generated += 1;
                return Ok(Id(start + used));
            }
        }
        // Open a fresh bin.
        if let Some(start) = self.open_next_bin() {
            self.current = Some((start, 1));
            self.generated += 1;
            return Ok(Id(start));
        }
        // All bins exhausted: serve the leftover tail in increasing order.
        if self.leftover_emitted < self.leftover_len() {
            let id = Id(self.leftover_start() + self.leftover_emitted);
            self.leftover_emitted += 1;
            self.generated += 1;
            return Ok(id);
        }
        Err(GeneratorError::Exhausted {
            generated: self.generated,
        })
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        self.flush();
        Footprint::Arcs(&self.emitted)
    }

    fn next_ids(
        &mut self,
        mut count: u128,
        sink: &mut dyn FnMut(Arc),
    ) -> Result<(), GeneratorError> {
        // Finish the currently open bin.
        if let Some((start, used)) = self.current {
            if count > 0 && used < self.k {
                let take = count.min(self.k - used);
                sink(Arc::new(self.space, Id(start + used), take));
                self.current = Some((start, used + take));
                self.generated += take;
                count -= take;
            }
        }
        // Consume whole and partial fresh bins, one arc per bin.
        while count > 0 {
            match self.open_next_bin() {
                Some(start) => {
                    let take = count.min(self.k);
                    sink(Arc::new(self.space, Id(start), take));
                    self.current = Some((start, take));
                    self.generated += take;
                    count -= take;
                }
                None => break,
            }
        }
        // Spill into the leftover tail.
        if count > 0 {
            let available = self.leftover_len() - self.leftover_emitted;
            let take = count.min(available);
            if take > 0 {
                sink(Arc::new(
                    self.space,
                    Id(self.leftover_start() + self.leftover_emitted),
                    take,
                ));
                self.leftover_emitted += take;
                self.generated += take;
                count -= take;
            }
            if count > 0 {
                return Err(GeneratorError::Exhausted {
                    generated: self.generated,
                });
            }
        }
        Ok(())
    }

    fn supports_bulk_lease(&self) -> bool {
        // One arc per touched bin: O(count / k) arcs per lease.
        true
    }

    fn skip(&mut self, mut count: u128) -> Result<(), GeneratorError> {
        // Finish the currently open bin.
        if let Some((start, used)) = self.current {
            if used < self.k {
                let take = count.min(self.k - used);
                self.current = Some((start, used + take));
                self.generated += take;
                count -= take;
            }
        }
        // Consume whole and partial fresh bins.
        while count > 0 {
            match self.open_next_bin() {
                Some(start) => {
                    let take = count.min(self.k);
                    self.current = Some((start, take));
                    self.generated += take;
                    count -= take;
                }
                None => break,
            }
        }
        // Spill into the leftover tail.
        if count > 0 {
            let available = self.leftover_len() - self.leftover_emitted;
            let take = count.min(available);
            self.leftover_emitted += take;
            self.generated += take;
            count -= take;
            if count > 0 {
                return Err(GeneratorError::Exhausted {
                    generated: self.generated,
                });
            }
        }
        Ok(())
    }

    fn supports_fast_skip(&self) -> bool {
        // Fast in the number of bins touched: O(count / k) bin draws. True
        // speedups require k reasonably large, which is exactly when the
        // experiments need it.
        true
    }

    fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::new(seed);
        self.bin_order.reset(self.num_bins);
        self.current = None;
        self.current_flushed = 0;
        self.leftover_emitted = 0;
        self.leftover_flushed = 0;
        self.generated = 0;
        self.emitted.clear();
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        // The snapshot's emitted list is the flushed interval set plus the
        // still-pending prefixes; `from_state` re-normalizes the union.
        let mut emitted: Vec<(u128, u128)> = self.emitted.segments().collect();
        if let Some((start, used)) = self.current {
            if used > self.current_flushed {
                emitted.push((start + self.current_flushed, start + used));
            }
        }
        if self.leftover_emitted > self.leftover_flushed {
            emitted.push((
                self.leftover_start() + self.leftover_flushed,
                self.leftover_start() + self.leftover_emitted,
            ));
        }
        Some(GeneratorState::Bins {
            k: self.k,
            rng: self.rng.state(),
            order_drawn: self.bin_order.drawn(),
            order_displacements: self.bin_order.displacements(),
            current: self.current,
            leftover_emitted: self.leftover_emitted,
            generated: self.generated,
            emitted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn emits_whole_universe_exactly_once() {
        let space = IdSpace::new(23).unwrap(); // 7 bins of 3 + 2 leftovers
        let mut g = BinsGenerator::new(space, 3, 1);
        let mut seen = HashSet::new();
        for _ in 0..23 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
        assert!(matches!(g.next_id(), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn ids_within_a_bin_are_increasing_and_aligned() {
        let space = IdSpace::new(100).unwrap();
        let k = 10u128;
        let mut g = BinsGenerator::new(space, k, 2);
        for _ in 0..10 {
            // Each group of k consecutive outputs must be one aligned bin.
            let ids: Vec<u128> = (0..k).map(|_| g.next_id().unwrap().value()).collect();
            let base = ids[0];
            assert_eq!(base % k, 0, "bin must be aligned to k");
            for (i, &v) in ids.iter().enumerate() {
                assert_eq!(v, base + i as u128, "IDs within bin increase by 1");
            }
        }
    }

    #[test]
    fn leftovers_come_last_in_increasing_order() {
        let space = IdSpace::new(11).unwrap(); // 3 bins of 3 + leftovers {9, 10}
        let mut g = BinsGenerator::new(space, 3, 3);
        let mut ids = Vec::new();
        for _ in 0..11 {
            ids.push(g.next_id().unwrap().value());
        }
        assert_eq!(&ids[9..], &[9, 10], "leftover tail must be 9, 10");
    }

    #[test]
    fn bins_1_behaves_like_random_permutation() {
        let space = IdSpace::new(16).unwrap();
        let mut g = BinsGenerator::new(space, 1, 4);
        let mut seen = HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(g.next_id().unwrap().value()));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn k_equal_m_is_deterministic_after_single_bin_choice() {
        let space = IdSpace::new(12).unwrap();
        let mut g = BinsGenerator::new(space, 12, 5);
        let ids: Vec<u128> = (0..12).map(|_| g.next_id().unwrap().value()).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn bin_choice_is_uniform() {
        let space = IdSpace::new(40).unwrap(); // 4 bins of 10
        let mut counts = [0u32; 4];
        let trials = 80_000;
        for seed in 0..trials {
            let mut g = BinsGenerator::new(space, 10, seed);
            let first = g.next_id().unwrap().value();
            counts[(first / 10) as usize] += 1;
        }
        let expected = trials as f64 / 4.0;
        for (bin, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bin {bin}: dev {dev:.3}");
        }
    }

    #[test]
    fn skip_matches_materialized_emission() {
        let space = IdSpace::new(1 << 16).unwrap();
        let mut a = BinsGenerator::new(space, 64, 6);
        let mut b = BinsGenerator::new(space, 64, 6);
        a.skip(1000).unwrap();
        for _ in 0..1000 {
            b.next_id().unwrap();
        }
        assert_eq!(a.generated(), b.generated());
        match (a.footprint(), b.footprint()) {
            (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
                assert_eq!(sa.measure(), 1000);
                assert_eq!(sa.intersection_measure_set(sb), 1000);
            }
            _ => panic!("arc footprints expected"),
        }
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn skip_through_leftovers_then_exhausts() {
        let space = IdSpace::new(10).unwrap(); // 3 bins of 3 + leftover {9}
        let mut g = BinsGenerator::new(space, 3, 7);
        g.skip(10).unwrap();
        assert_eq!(g.generated(), 10);
        assert!(matches!(g.skip(1), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn footprint_segments_stay_compact() {
        let space = IdSpace::new(1 << 20).unwrap();
        let k = 1 << 10;
        let mut g = BinsGenerator::new(space, k, 8);
        g.skip(100 * k).unwrap();
        match g.footprint() {
            Footprint::Arcs(set) => {
                assert_eq!(set.measure(), 100 * k);
                assert!(
                    set.segment_count() <= 100,
                    "at most one segment per opened bin"
                );
            }
            _ => panic!(),
        }
    }
}
