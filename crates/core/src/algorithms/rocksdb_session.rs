//! **SessionCounter** — the RocksDB embodiment of Cluster/Bins.
//!
//! RocksDB's "experimental SST unique IDs" (PR #8990) and "new stable,
//! fixed-length cache keys" (PR #9126) — both cited by the paper as the
//! production motivation for Cluster — structure an ID as
//!
//! ```text
//!   [ random session prefix | in-session file counter ]
//! ```
//!
//! A store instance draws a random session prefix at startup and assigns
//! file IDs by incrementing the counter; if the counter field overflows it
//! starts a new session. Structurally this is Bins(2^counter_bits) with
//! one difference: sessions across (and within) restarts are drawn *with*
//! replacement, so the scheme is only "without replacement" per session.
//! We keep within-instance uniqueness by redrawing a session prefix that
//! the instance has already used (the probability is astronomically small
//! at production parameters; the redraw makes the invariant exact).
//!
//! Collision-wise the scheme inherits Cluster/Bins behaviour:
//! `Θ(min(1, n·d/m))` for `d` total files across `n` sessions — the
//! paper's Theorem 2 with `k = 2^counter_bits` and per-instance demand
//! below `k`.

use std::collections::HashSet;

use crate::id::{Id, IdSpace};
use crate::interval::{Arc, IntervalSet};
use crate::rng::{uniform_below, Xoshiro256pp};
use crate::state::{check, rng_from, GeneratorState, StateError};
use crate::traits::{Algorithm, Footprint, GeneratorError, IdGenerator};

/// Factory for [`SessionCounterGenerator`] instances.
#[derive(Debug, Clone)]
pub struct SessionCounter {
    session_bits: u32,
    counter_bits: u32,
}

impl SessionCounter {
    /// A layout with `session_bits` of random prefix and `counter_bits` of
    /// sequential counter; `m = 2^(session_bits + counter_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if the total width exceeds 127 bits or either field is zero.
    pub fn new(session_bits: u32, counter_bits: u32) -> Self {
        assert!(session_bits > 0 && counter_bits > 0, "both fields required");
        assert!(
            session_bits + counter_bits <= 127,
            "layout exceeds 127 bits"
        );
        SessionCounter {
            session_bits,
            counter_bits,
        }
    }

    /// RocksDB-flavored defaults scaled to a 64-bit ID: 40 session bits,
    /// 24 counter bits (the real scheme uses wider fields over 128 bits).
    pub fn rocksdb64() -> Self {
        SessionCounter::new(40, 24)
    }
}

impl Algorithm for SessionCounter {
    fn name(&self) -> String {
        format!("session({}+{})", self.session_bits, self.counter_bits)
    }

    fn space(&self) -> IdSpace {
        IdSpace::with_bits(self.session_bits + self.counter_bits).expect("checked width")
    }

    fn spawn(&self, seed: u64) -> Box<dyn IdGenerator> {
        Box::new(SessionCounterGenerator::new(
            self.session_bits,
            self.counter_bits,
            seed,
        ))
    }
}

/// One store instance assigning session-counter IDs.
#[derive(Debug)]
pub struct SessionCounterGenerator {
    space: IdSpace,
    counter_bits: u32,
    sessions_total: u128,
    rng: Xoshiro256pp,
    used_sessions: HashSet<u128>,
    current_session: Option<u128>,
    counter: u128,
    /// Counter position of the open session already folded into `emitted`.
    flushed: u128,
    generated: u128,
    emitted: IntervalSet,
}

impl SessionCounterGenerator {
    /// A fresh instance seeded with `seed`.
    pub fn new(session_bits: u32, counter_bits: u32, seed: u64) -> Self {
        SessionCounterGenerator {
            space: IdSpace::with_bits(session_bits + counter_bits).expect("checked width"),
            counter_bits,
            sessions_total: 1u128 << session_bits,
            rng: Xoshiro256pp::new(seed),
            used_sessions: HashSet::new(),
            current_session: None,
            counter: 0,
            flushed: 0,
            generated: 0,
            emitted: IntervalSet::new(self_space(session_bits, counter_bits)),
        }
    }

    /// Folds the open session's unflushed ID range into `emitted`.
    fn flush(&mut self) {
        if let Some(session) = self.current_session {
            if self.counter > self.flushed {
                let first = (session << self.counter_bits) | self.flushed;
                self.emitted
                    .insert(Arc::new(self.space, Id(first), self.counter - self.flushed));
                self.flushed = self.counter;
            }
        }
    }

    /// The session prefix currently in use, if any ID has been issued.
    pub fn current_session(&self) -> Option<u128> {
        self.current_session
    }

    /// Rebuilds an instance from a [`GeneratorState::SessionCounter`]
    /// snapshot. The emitted set is reconstructed: closed sessions are
    /// full, the open session holds a counter-length prefix.
    pub fn from_state(space: IdSpace, state: &GeneratorState) -> Result<Self, StateError> {
        let GeneratorState::SessionCounter {
            rng,
            session_bits,
            counter_bits,
            used_sessions,
            current_session,
            counter,
            generated,
        } = state
        else {
            return Err(StateError("not a SessionCounter state".into()));
        };
        check(
            *session_bits > 0 && *counter_bits > 0 && session_bits + counter_bits <= 127,
            "bad bit layout",
        )?;
        check(
            space.size() == 1u128 << (session_bits + counter_bits),
            "layout inconsistent with universe",
        )?;
        let sessions_total = 1u128 << session_bits;
        let cap = 1u128 << counter_bits;
        check(
            used_sessions.iter().all(|&s| s < sessions_total),
            "session out of range",
        )?;
        check(*counter <= cap, "counter exceeds capacity")?;
        let used: HashSet<u128> = used_sessions.iter().copied().collect();
        check(used.len() == used_sessions.len(), "duplicate used sessions")?;
        let mut emitted = IntervalSet::new(space);
        match current_session {
            Some(cur) => {
                check(used.contains(cur), "current session not in used set")?;
                for &s in &used {
                    if s == *cur {
                        if *counter > 0 {
                            emitted.insert(Arc::new(space, Id(s << counter_bits), *counter));
                        }
                    } else {
                        emitted.insert(Arc::new(space, Id(s << counter_bits), cap));
                    }
                }
            }
            None => {
                check(used.is_empty(), "used sessions without a current one")?;
            }
        }
        check(
            emitted.measure() == *generated,
            "emitted measure != generated",
        )?;
        Ok(SessionCounterGenerator {
            space,
            counter_bits: *counter_bits,
            sessions_total,
            rng: rng_from(*rng)?,
            used_sessions: used,
            current_session: *current_session,
            counter: *counter,
            flushed: *counter,
            generated: *generated,
            emitted,
        })
    }

    /// The session-prefix width in bits (for snapshots).
    fn session_bits(&self) -> u32 {
        128 - self.sessions_total.leading_zeros() - 1
    }

    fn counter_capacity(&self) -> u128 {
        1u128 << self.counter_bits
    }

    fn open_session(&mut self) -> Result<u128, GeneratorError> {
        if self.used_sessions.len() as u128 >= self.sessions_total {
            return Err(GeneratorError::Exhausted {
                generated: self.generated,
            });
        }
        // Redraw on reuse; terminates fast while sessions are sparse.
        loop {
            let s = uniform_below(&mut self.rng, self.sessions_total);
            if self.used_sessions.insert(s) {
                self.flush(); // retire the exhausted session's range
                self.current_session = Some(s);
                self.counter = 0;
                self.flushed = 0;
                return Ok(s);
            }
        }
    }
}

fn self_space(session_bits: u32, counter_bits: u32) -> IdSpace {
    IdSpace::with_bits(session_bits + counter_bits).expect("checked width")
}

impl IdGenerator for SessionCounterGenerator {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn next_id(&mut self) -> Result<Id, GeneratorError> {
        let session = match self.current_session {
            Some(s) if self.counter < self.counter_capacity() => s,
            _ => self.open_session()?,
        };
        let id = Id((session << self.counter_bits) | self.counter);
        self.counter += 1;
        self.generated += 1;
        Ok(id)
    }

    fn generated(&self) -> u128 {
        self.generated
    }

    fn footprint(&mut self) -> Footprint<'_> {
        self.flush();
        Footprint::Arcs(&self.emitted)
    }

    fn next_ids(
        &mut self,
        mut count: u128,
        sink: &mut dyn FnMut(Arc),
    ) -> Result<(), GeneratorError> {
        while count > 0 {
            let session = match self.current_session {
                Some(s) if self.counter < self.counter_capacity() => s,
                _ => self.open_session()?,
            };
            let take = count.min(self.counter_capacity() - self.counter);
            sink(Arc::new(
                self.space,
                Id((session << self.counter_bits) | self.counter),
                take,
            ));
            self.counter += take;
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_bulk_lease(&self) -> bool {
        // One arc per touched session range: O(count / 2^counter_bits).
        true
    }

    fn skip(&mut self, mut count: u128) -> Result<(), GeneratorError> {
        while count > 0 {
            match self.current_session {
                Some(_) if self.counter < self.counter_capacity() => {}
                _ => {
                    self.open_session()?;
                }
            };
            let take = count.min(self.counter_capacity() - self.counter);
            self.counter += take;
            self.generated += take;
            count -= take;
        }
        Ok(())
    }

    fn supports_fast_skip(&self) -> bool {
        true
    }

    fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::new(seed);
        self.used_sessions.clear();
        self.current_session = None;
        self.counter = 0;
        self.flushed = 0;
        self.generated = 0;
        self.emitted.clear();
    }

    fn snapshot(&self) -> Option<GeneratorState> {
        let mut used: Vec<u128> = self.used_sessions.iter().copied().collect();
        used.sort_unstable();
        Some(GeneratorState::SessionCounter {
            rng: self.rng.state(),
            session_bits: self.session_bits(),
            counter_bits: self.counter_bits,
            used_sessions: used,
            current_session: self.current_session,
            counter: self.counter,
            generated: self.generated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_within_a_session() {
        let mut g = SessionCounterGenerator::new(8, 4, 1);
        let ids: Vec<u128> = (0..16).map(|_| g.next_id().unwrap().value()).collect();
        let session = ids[0] >> 4;
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id >> 4, session, "same session for first 16");
            assert_eq!(id & 0xF, i as u128, "counter increments");
        }
        // 17th ID rolls into a fresh session with counter 0.
        let next = g.next_id().unwrap().value();
        assert_ne!(next >> 4, session);
        assert_eq!(next & 0xF, 0);
    }

    #[test]
    fn sessions_never_repeat_within_instance() {
        let mut g = SessionCounterGenerator::new(4, 2, 2); // 16 sessions of 4 IDs
        let mut sessions = HashSet::new();
        for _ in 0..64 {
            let id = g.next_id().unwrap().value();
            sessions.insert(id >> 2);
        }
        assert_eq!(sessions.len(), 16, "all sessions used exactly once");
        assert!(matches!(g.next_id(), Err(GeneratorError::Exhausted { .. })));
    }

    #[test]
    fn no_duplicate_ids() {
        let mut g = SessionCounterGenerator::new(10, 3, 3);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            assert!(seen.insert(g.next_id().unwrap()));
        }
    }

    #[test]
    fn skip_matches_materialized() {
        let mut a = SessionCounterGenerator::new(12, 6, 4);
        let mut b = SessionCounterGenerator::new(12, 6, 4);
        a.skip(300).unwrap();
        for _ in 0..300 {
            b.next_id().unwrap();
        }
        assert_eq!(a.generated(), b.generated());
        match (a.footprint(), b.footprint()) {
            (Footprint::Arcs(sa), Footprint::Arcs(sb)) => {
                assert_eq!(sa.intersection_measure_set(sb), 300);
            }
            _ => panic!(),
        }
        assert_eq!(a.next_id().unwrap(), b.next_id().unwrap());
    }

    #[test]
    fn factory_reports_consistent_space() {
        let alg = SessionCounter::new(20, 10);
        assert_eq!(alg.space().size(), 1 << 30);
        let g = alg.spawn(5);
        assert_eq!(g.space().size(), 1 << 30);
    }
}
