//! A debug-build runtime lock-order tracker: the dynamic twin of
//! `uuidp-lint`'s static `lock-cycle` rule.
//!
//! The static rule sees nested acquisitions the lexer can name; this
//! tracker sees the ones it cannot — guards passed through calls,
//! locks reached via trait objects, orderings that only materialize on
//! rare paths. Each lock site wraps its acquisition in [`track`]; the
//! tracker keeps a thread-local stack of live labels and a global
//! acquired-while-holding edge set, and the first acquisition that
//! closes a cycle in that graph panics naming both sides — in the test
//! run that first exhibits the ordering, not in the production
//! deadlock it would become.
//!
//! Everything compiles to nothing in release builds: [`track`] returns
//! a zero-sized token and touches no globals unless
//! `debug_assertions` are on.
//!
//! ```
//! use uuidp_core::lockorder;
//!
//! struct S { a: std::sync::Mutex<u32> }
//! impl S {
//!     fn bump(&self) {
//!         let _order = lockorder::track("S.a");
//!         let mut g = self.a.lock().expect("a");
//!         *g += 1;
//!     }
//! }
//! ```

use std::panic::Location;

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::Mutex;

    /// Global acquired-while-holding graph: `edges[from]` is the set of
    /// `(to, from_site, to_site)` orderings observed so far.
    #[allow(clippy::type_complexity)]
    static EDGES: Mutex<
        BTreeMap<&'static str, BTreeSet<(&'static str, &'static str, &'static str)>>,
    > = Mutex::new(BTreeMap::new());

    thread_local! {
        /// The labels (and sites) of locks this thread currently holds,
        /// outermost first.
        static HELD: RefCell<Vec<(&'static str, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records `label` acquired at `site` while everything on this
    /// thread's stack is held; panics if the new edges close a cycle.
    pub fn acquire(label: &'static str, site: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(outer, outer_site)) = held.last() {
                if outer != label {
                    // Poison recovery: the cycle panic below happens
                    // while this guard is held, and a poisoned graph
                    // must not cascade into every later acquisition.
                    let mut edges = EDGES.lock().unwrap_or_else(|e| e.into_inner());
                    edges
                        .entry(outer)
                        .or_default()
                        .insert((label, outer_site, site));
                    if let Some(path) = find_path(&edges, label, outer) {
                        // `outer -> label` just landed, and `label ->
                        // ... -> outer` already existed: name both ends.
                        panic!(
                            "lock-order cycle: `{outer}` (held, acquired at {outer_site}) \
                             then `{label}` (at {site}), but the reverse order \
                             {path} was already observed elsewhere"
                        );
                    }
                }
            }
            held.push((label, site));
        });
    }

    /// Pops `label` off this thread's stack (out-of-order drops are
    /// tolerated: the matching entry is removed wherever it sits).
    pub fn release(label: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|&(l, _)| l == label) {
                held.remove(at);
            }
        });
    }

    /// DFS: is `to` reachable from `from` in the edge graph? Returns a
    /// rendered `a -> b -> c` path for the panic message.
    fn find_path(
        edges: &BTreeMap<&'static str, BTreeSet<(&'static str, &'static str, &'static str)>>,
        from: &'static str,
        to: &'static str,
    ) -> Option<String> {
        let mut stack = vec![(from, vec![from])];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path.join(" -> "));
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = edges.get(node) {
                for &(next, _, _) in nexts {
                    if !seen.contains(next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        None
    }
}

/// A live lock-order entry. Create one with [`track`] immediately
/// before acquiring the lock it names, and keep it alive exactly as
/// long as the guard; dropping it pops the label off the thread's
/// held stack.
#[must_use = "the tracker entry must live as long as the lock guard"]
pub struct Tracked {
    #[cfg(debug_assertions)]
    label: &'static str,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::release(self.label);
    }
}

/// Declares that the calling thread is about to acquire the lock named
/// `label` (pick one stable label per lock, e.g. `"client.writer"`).
/// In debug builds this records the ordering against every lock the
/// thread already holds and panics — naming both acquisition sites —
/// if the ordering contradicts one observed anywhere else in the
/// process. In release builds it is free.
#[track_caller]
pub fn track(label: &'static str) -> Tracked {
    // Capture the call site in both build profiles so the signature
    // cannot drift; release builds discard it.
    let location = Location::caller();
    #[cfg(debug_assertions)]
    {
        // Leak one site string per call site: the set of call sites is
        // static, so this is bounded for the life of the process.
        let site: &'static str =
            Box::leak(format!("{}:{}", location.file(), location.line()).into_boxed_str());
        imp::acquire(label, site);
        Tracked { label }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = location;
        Tracked {}
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    // Labels are process-global, so every test uses its own.

    #[test]
    fn consistent_order_is_silent() {
        for _ in 0..3 {
            let a = track("t1.alpha");
            let b = track("t1.beta");
            drop(b);
            drop(a);
        }
    }

    #[test]
    fn reentrant_same_label_is_silent() {
        let a = track("t2.alpha");
        let a2 = track("t2.alpha");
        drop(a2);
        drop(a);
    }

    #[test]
    fn reversed_order_panics_naming_both_sites() {
        let a = track("t3.alpha");
        let b = track("t3.beta");
        drop(b);
        drop(a);
        let err = std::panic::catch_unwind(|| {
            let b = track("t3.beta");
            let a = track("t3.alpha");
            drop(a);
            drop(b);
        })
        .expect_err("reversed acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t3.alpha"), "panic names alpha: {msg}");
        assert!(msg.contains("t3.beta"), "panic names beta: {msg}");
        assert!(msg.contains("lockorder.rs:"), "panic carries sites: {msg}");
    }

    #[test]
    fn transitive_cycles_are_caught() {
        {
            let a = track("t4.a");
            let _b = track("t4.b");
            drop(a);
        }
        {
            let b = track("t4.b");
            let _c = track("t4.c");
            drop(b);
        }
        let err = std::panic::catch_unwind(|| {
            let c = track("t4.c");
            let a = track("t4.a");
            drop(a);
            drop(c);
        })
        .expect_err("transitive reversal must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("t4.a -> t4.b -> t4.c") || msg.contains("t4.a"),
            "{msg}"
        );
    }
}
