//! Generator state persistence: snapshot, serialize, resume.
//!
//! A database embedding these algorithms must survive process restarts
//! without ever reusing an ID. Two strategies exist:
//!
//! 1. **Fresh instance per process lifetime** — what RocksDB's session
//!    scheme does: a restart spawns a brand-new generator with fresh
//!    randomness. Safe (the restarted process is just "one more
//!    uncoordinated instance"), but each restart adds to the effective
//!    `n`, and with it the collision exposure.
//! 2. **Exact resume** — persist the generator state in the manifest and
//!    continue the *same* permutation after restart. The effective `n`
//!    never grows; this module provides it.
//!
//! [`GeneratorState`] is a plain serde-serializable value capturing
//! everything a generator needs to continue exactly where it stopped:
//! RNG state, structural position, and the emitted footprint. Every
//! algorithm whose state is bounded supports it (`Random`'s state grows
//! with the number of draws — inherent to sampling without replacement —
//! and is still supported, just not O(1)-sized).
//!
//! ```
//! use uuidp_core::prelude::*;
//! use uuidp_core::state::restore;
//!
//! let space = IdSpace::with_bits(64).unwrap();
//! let algorithm = Cluster::new(space);
//! let mut gen = algorithm.spawn(42);
//! let a = gen.next_id().unwrap();
//!
//! // ... process crashes; the snapshot was persisted earlier ...
//! let snapshot = gen.snapshot().expect("cluster supports snapshots");
//! let mut resumed = restore(space, &snapshot).unwrap();
//! assert_eq!(resumed.next_id().unwrap(), gen.next_id().unwrap());
//! # let _ = a;
//! ```

use serde::{Deserialize, Serialize};

use crate::algorithms::{
    BinsGenerator, BinsStarGenerator, ClusterGenerator, ClusterStarGenerator, RandomGenerator,
    SessionCounterGenerator,
};
use crate::id::IdSpace;
use crate::traits::IdGenerator;

/// A serializable snapshot of a running generator.
///
/// Produced by [`IdGenerator::snapshot`]; consumed by [`restore`]. The
/// variants mirror the algorithms; all interval data is stored as
/// normalized `[lo, hi)` segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorState {
    /// Random: virtual-shuffle position plus the emitted IDs in order.
    Random {
        /// xoshiro256++ state.
        rng: [u64; 4],
        /// Elements drawn from the virtual permutation.
        drawn: u128,
        /// Sparse Fisher–Yates displacements (sorted by key).
        displacements: Vec<(u128, u128)>,
        /// Emitted IDs, in emission order.
        emitted: Vec<u128>,
    },
    /// Cluster: fully determined by the start and the count.
    Cluster {
        /// The random starting ID `x`.
        start: u128,
        /// IDs emitted so far.
        generated: u128,
    },
    /// Bins(k).
    Bins {
        /// Bin size.
        k: u128,
        /// xoshiro256++ state.
        rng: [u64; 4],
        /// Bin-order shuffle position.
        order_drawn: u128,
        /// Bin-order shuffle displacements.
        order_displacements: Vec<(u128, u128)>,
        /// Open bin: (start, ids used).
        current: Option<(u128, u128)>,
        /// Leftover-tail IDs emitted.
        leftover_emitted: u128,
        /// Total IDs emitted.
        generated: u128,
        /// Emitted footprint as `[lo, hi)` segments (the shuffle does not
        /// remember which bins it handed out, so the footprint is stored).
        emitted: Vec<(u128, u128)>,
    },
    /// Cluster★.
    ClusterStar {
        /// xoshiro256++ state.
        rng: [u64; 4],
        /// Run growth factor.
        growth: u32,
        /// Length of the next run to open.
        next_len: u128,
        /// Opened runs as (start, len), in opening order.
        runs: Vec<(u128, u128)>,
        /// IDs used from the currently open (= last) run.
        current_used: Option<u128>,
        /// Total IDs emitted.
        generated: u128,
    },
    /// Bins★.
    BinsStar {
        /// xoshiro256++ state.
        rng: [u64; 4],
        /// Chunk count C.
        chunks: u32,
        /// IDs per chunk.
        chunk_size: u128,
        /// 1-based index of the next chunk to open.
        next_chunk: u32,
        /// Chosen bins as (start, len), in choice order.
        bins: Vec<(u128, u128)>,
        /// IDs used from the currently open (= last) bin.
        current_used: Option<u128>,
        /// Total IDs emitted.
        generated: u128,
    },
    /// SessionCounter.
    SessionCounter {
        /// xoshiro256++ state.
        rng: [u64; 4],
        /// Session-prefix width.
        session_bits: u32,
        /// Counter width.
        counter_bits: u32,
        /// Session prefixes already used (sorted).
        used_sessions: Vec<u128>,
        /// The open session prefix, if any.
        current_session: Option<u128>,
        /// Counter position within the open session.
        counter: u128,
        /// Total IDs emitted.
        generated: u128,
    },
}

/// Error restoring a [`GeneratorState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError(pub String);

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid generator state: {}", self.0)
    }
}

impl std::error::Error for StateError {}

/// Rebuilds a live generator from a snapshot over `space`.
///
/// Validation is defensive — snapshots typically come back from disk —
/// so structurally impossible states return [`StateError`] instead of
/// panicking.
pub fn restore(space: IdSpace, state: &GeneratorState) -> Result<Box<dyn IdGenerator>, StateError> {
    Ok(match state {
        GeneratorState::Random { .. } => Box::new(RandomGenerator::from_state(space, state)?),
        GeneratorState::Cluster { .. } => Box::new(ClusterGenerator::from_state(space, state)?),
        GeneratorState::Bins { .. } => Box::new(BinsGenerator::from_state(space, state)?),
        GeneratorState::ClusterStar { .. } => {
            Box::new(ClusterStarGenerator::from_state(space, state)?)
        }
        GeneratorState::BinsStar { .. } => Box::new(BinsStarGenerator::from_state(space, state)?),
        GeneratorState::SessionCounter { .. } => {
            Box::new(SessionCounterGenerator::from_state(space, state)?)
        }
    })
}

pub(crate) fn check(cond: bool, msg: &str) -> Result<(), StateError> {
    if cond {
        Ok(())
    } else {
        Err(StateError(msg.to_string()))
    }
}

pub(crate) fn rng_from(state: [u64; 4]) -> Result<crate::rng::Xoshiro256pp, StateError> {
    check(state.iter().any(|&w| w != 0), "all-zero RNG state")?;
    Ok(crate::rng::Xoshiro256pp::from_state(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::traits::Algorithm;

    fn suite(space: IdSpace) -> Vec<Box<dyn Algorithm>> {
        vec![
            AlgorithmKind::Random.build(space),
            AlgorithmKind::Cluster.build(space),
            AlgorithmKind::Bins { k: 16 }.build(space),
            AlgorithmKind::ClusterStar.build(space),
            AlgorithmKind::BinsStar.build(space),
        ]
    }

    #[test]
    fn snapshot_resume_continues_the_exact_stream() {
        let space = IdSpace::new(1 << 16).unwrap();
        for alg in suite(space) {
            let mut original = alg.spawn(42);
            for _ in 0..50 {
                original.next_id().unwrap();
            }
            let snap = original
                .snapshot()
                .unwrap_or_else(|| panic!("{} must support snapshots", alg.name()));
            let mut resumed = restore(space, &snap).unwrap();
            assert_eq!(resumed.generated(), original.generated(), "{}", alg.name());
            for step in 0..200 {
                assert_eq!(
                    resumed.next_id().unwrap(),
                    original.next_id().unwrap(),
                    "{} diverged at step {step}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn snapshot_preserves_footprints() {
        let space = IdSpace::new(1 << 14).unwrap();
        for alg in suite(space) {
            let mut original = alg.spawn(7);
            for _ in 0..60 {
                original.next_id().unwrap();
            }
            let snap = original.snapshot().unwrap();
            let mut resumed = restore(space, &snap).unwrap();
            assert_eq!(
                resumed.footprint().measure(),
                original.footprint().measure(),
                "{}",
                alg.name()
            );
        }
    }

    #[test]
    fn snapshot_at_zero_is_a_fresh_start() {
        let space = IdSpace::new(1 << 12).unwrap();
        for alg in suite(space) {
            let original = alg.spawn(3);
            let snap = original.snapshot().unwrap();
            let mut resumed = restore(space, &snap).unwrap();
            let mut fresh = alg.spawn(3);
            for _ in 0..20 {
                assert_eq!(resumed.next_id().unwrap(), fresh.next_id().unwrap());
            }
        }
    }

    #[test]
    fn session_counter_snapshots_roundtrip() {
        let alg = AlgorithmKind::SessionCounter {
            session_bits: 10,
            counter_bits: 4,
        }
        .build(IdSpace::with_bits(14).unwrap());
        let mut original = alg.spawn(5);
        for _ in 0..40 {
            original.next_id().unwrap();
        }
        let snap = original.snapshot().unwrap();
        let mut resumed = restore(alg.space(), &snap).unwrap();
        for _ in 0..40 {
            assert_eq!(resumed.next_id().unwrap(), original.next_id().unwrap());
        }
    }

    #[test]
    fn corrupt_states_are_rejected_not_panicked() {
        let space = IdSpace::new(1 << 10).unwrap();
        // Cluster start outside the universe.
        let bad = GeneratorState::Cluster {
            start: 1 << 20,
            generated: 0,
        };
        assert!(restore(space, &bad).is_err());
        // All-zero RNG.
        let bad = GeneratorState::Random {
            rng: [0; 4],
            drawn: 0,
            displacements: vec![],
            emitted: vec![],
        };
        assert!(restore(space, &bad).is_err());
        // Bins bin size out of range.
        let bad = GeneratorState::Bins {
            k: 1 << 20,
            rng: [1, 0, 0, 0],
            order_drawn: 0,
            order_displacements: vec![],
            current: None,
            leftover_emitted: 0,
            generated: 0,
            emitted: vec![],
        };
        assert!(restore(space, &bad).is_err());
    }

    #[test]
    fn state_error_formats() {
        let e = StateError("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
