//! A process-wide monotonic nanosecond clock for trace timestamps.
//!
//! Every observability event in the stack is stamped with
//! [`monotonic_ns`]: nanoseconds since the first call in this process.
//! Using one shared epoch (instead of per-subsystem `Instant`s) makes
//! timestamps from the client, server demux, workers, and audit
//! directly comparable, so an assembled corr-id span reads as one
//! causal timeline. The value is timing — it varies run to run and is
//! deliberately excluded from twin-comparison; everything else in the
//! telemetry path is deterministic.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since this process first asked for the time.
/// Monotone, never panics, saturates at `u64::MAX` (~584 years).
pub fn monotonic_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .duration_since(epoch)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_shared() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a, "monotonic clock went backwards: {a} -> {b}");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let c = monotonic_ns();
        assert!(c > a, "clock must advance across a sleep");
    }
}
