//! Circular intervals and interval sets over the ID universe.
//!
//! Every algorithm in the paper except Random emits IDs in *arcs* of the
//! cycle `[0, m)`: Cluster emits one growing arc, Bins(k) emits aligned
//! arcs of length `k`, Cluster★ emits arcs of doubling length, Bins★ emits
//! one aligned arc per chunk. Representing an instance's output as a set of
//! arcs instead of a set of points is what makes both
//!
//! * Cluster★'s placement rule ("draw `x` uniformly such that `run(x, r)`
//!   does not collide with previously chosen runs"), and
//! * symbolic collision detection between instances at demands far beyond
//!   what could be materialized (`d ≈ 2⁴⁰`),
//!
//! tractable. [`IntervalSet`] is the normalized-sorted-disjoint-segment
//! structure providing union, intersection tests, measure, and uniform
//! sampling of run placements.

use crate::id::{Id, IdSpace};
use crate::rng::{uniform_below, Xoshiro256pp};

/// An arc of the cycle `[0, m)`: `len` consecutive IDs starting at `start`,
/// wrapping modulo `m`. `len == m` denotes the full circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// First ID of the arc.
    pub start: Id,
    /// Number of IDs in the arc (`1 ..= m`).
    pub len: u128,
}

impl Arc {
    /// Creates the arc `run(start, len)` in the paper's notation.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the arc does not fit in `space`.
    pub fn new(space: IdSpace, start: Id, len: u128) -> Self {
        assert!(len >= 1, "arcs must contain at least one ID");
        assert!(
            len <= space.size(),
            "arc of length {len} exceeds universe {space}"
        );
        assert!(space.contains(start), "arc start outside the universe");
        Arc { start, len }
    }

    /// The single-ID arc `{id}`.
    pub fn point(space: IdSpace, id: Id) -> Self {
        Arc::new(space, id, 1)
    }

    /// The last ID of the arc.
    pub fn last(&self, space: IdSpace) -> Id {
        space.add(self.start, self.len - 1)
    }

    /// Whether `id` lies on the arc.
    pub fn contains(&self, space: IdSpace, id: Id) -> bool {
        space.forward_distance(self.start, id) < self.len
    }

    /// The `i`-th ID of the arc (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn nth(&self, space: IdSpace, i: u128) -> Id {
        assert!(i < self.len, "index {i} out of arc of length {}", self.len);
        space.add(self.start, i)
    }
}

/// A half-open, non-wrapping segment `[lo, hi)` with `0 <= lo < hi <= m`.
///
/// Internal normal form of [`IntervalSet`]; wrapping arcs are stored as two
/// segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    lo: u128,
    hi: u128,
}

/// A set of IDs represented as sorted, disjoint, non-adjacent segments.
///
/// All operations are `O(s)` or `O(log s)` in the number of segments `s`,
/// which for every algorithm in this crate is at most the number of
/// runs/bins the instance has opened (`O(log d)` for Cluster★ and Bins★,
/// `O(d/k)` for Bins(k), `1` for Cluster).
#[derive(Debug, Clone)]
pub struct IntervalSet {
    space: IdSpace,
    segments: Vec<Segment>,
    measure: u128,
    /// Index of the segment most recently created or extended by an
    /// insertion. Emitters extend the same segment over and over
    /// (consecutive IDs from the current run), so checking this slot first
    /// turns those insertions into amortized O(1) in-place updates with no
    /// binary search and no memmove. Purely an accelerator: stale or
    /// out-of-range hints are detected and ignored.
    hint: usize,
}

impl IntervalSet {
    /// The empty set over `space`.
    pub fn new(space: IdSpace) -> Self {
        IntervalSet {
            space,
            segments: Vec::new(),
            measure: 0,
            hint: 0,
        }
    }

    /// Empties the set, retaining allocated capacity. This is what lets a
    /// Monte-Carlo worker reuse one generator across millions of trials
    /// without touching the allocator.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.measure = 0;
        self.hint = 0;
    }

    /// The universe this set lives in.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of IDs in the set.
    pub fn measure(&self) -> u128 {
        self.measure
    }

    /// Number of IDs *not* in the set.
    pub fn complement_measure(&self) -> u128 {
        self.space.size() - self.measure
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.measure == 0
    }

    /// Whether the set is the whole universe.
    pub fn is_full(&self) -> bool {
        self.measure == self.space.size()
    }

    /// Number of internal segments (diagnostics / complexity assertions).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: Id) -> bool {
        debug_assert!(self.space.contains(id));
        let v = id.value();
        self.segments
            .binary_search_by(|s| {
                if s.hi <= v {
                    std::cmp::Ordering::Less
                } else if s.lo > v {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Splits an arc into at most two non-wrapping half-open segments.
    fn split(&self, arc: Arc) -> [Option<Segment>; 2] {
        let m = self.space.size();
        let lo = arc.start.value();
        if arc.len == m {
            return [Some(Segment { lo: 0, hi: m }), None];
        }
        let end = lo + arc.len; // may exceed m; no overflow since both < 2^127
        if end <= m {
            [Some(Segment { lo, hi: end }), None]
        } else {
            [
                Some(Segment { lo, hi: m }),
                Some(Segment { lo: 0, hi: end - m }),
            ]
        }
    }

    /// Inserts all IDs of `arc` into the set (union).
    pub fn insert(&mut self, arc: Arc) {
        for seg in self.split(arc).into_iter().flatten() {
            self.insert_segment(seg);
        }
    }

    /// Inserts the single ID `id`.
    pub fn insert_point(&mut self, id: Id) {
        self.insert(Arc::point(self.space, id));
    }

    fn insert_segment(&mut self, seg: Segment) {
        // Fast path 1 — extend the hinted segment in place. This is the
        // shape of every consecutive emission from an open run: the new
        // segment starts on or inside the hinted one and stops short of its
        // successor. O(1), no search, no memmove.
        if let Some(&h) = self.segments.get(self.hint) {
            if seg.lo >= h.lo && seg.lo <= h.hi {
                if seg.hi <= h.hi {
                    return; // already covered
                }
                let next_lo = self
                    .segments
                    .get(self.hint + 1)
                    .map(|s| s.lo)
                    .unwrap_or(u128::MAX);
                if seg.hi < next_lo {
                    self.measure += seg.hi - h.hi;
                    self.segments[self.hint].hi = seg.hi;
                    return;
                }
            }
        }
        // Locate the range of existing segments that overlap or touch `seg`.
        let start_idx = self.segments.partition_point(|s| s.hi < seg.lo);
        let end_idx = self.segments.partition_point(|s| s.lo <= seg.hi);
        if start_idx == end_idx {
            // No overlap/adjacency. Appending past the end is O(1); interior
            // insertion pays the memmove (once per *run*, not per ID).
            self.measure += seg.hi - seg.lo;
            self.segments.insert(start_idx, seg);
            self.hint = start_idx;
            return;
        }
        if end_idx == start_idx + 1 {
            // Fast path 2 — merge with exactly one segment: update it in
            // place instead of drain + insert (two memmoves saved).
            let s = &mut self.segments[start_idx];
            let merged = Segment {
                lo: seg.lo.min(s.lo),
                hi: seg.hi.max(s.hi),
            };
            self.measure += (merged.hi - merged.lo) - (s.hi - s.lo);
            *s = merged;
            self.hint = start_idx;
            return;
        }
        let merged = Segment {
            lo: seg.lo.min(self.segments[start_idx].lo),
            hi: seg.hi.max(self.segments[end_idx - 1].hi),
        };
        let removed: u128 = self.segments[start_idx..end_idx]
            .iter()
            .map(|s| s.hi - s.lo)
            .sum();
        self.segments.drain(start_idx + 1..end_idx);
        self.segments[start_idx] = merged;
        self.measure += (merged.hi - merged.lo) - removed;
        self.hint = start_idx;
    }

    /// Whether `arc` intersects the set.
    pub fn intersects_arc(&self, arc: Arc) -> bool {
        self.split(arc)
            .into_iter()
            .flatten()
            .any(|seg| self.overlaps_segment(seg))
    }

    fn overlaps_segment(&self, seg: Segment) -> bool {
        let idx = self.segments.partition_point(|s| s.hi <= seg.lo);
        self.segments.get(idx).is_some_and(|s| s.lo < seg.hi)
    }

    /// Number of IDs of `arc` that are in the set.
    pub fn intersection_measure(&self, arc: Arc) -> u128 {
        self.split(arc)
            .into_iter()
            .flatten()
            .map(|seg| self.segment_intersection_measure(seg))
            .sum()
    }

    fn segment_intersection_measure(&self, seg: Segment) -> u128 {
        let mut total = 0;
        let mut idx = self.segments.partition_point(|s| s.hi <= seg.lo);
        while let Some(s) = self.segments.get(idx) {
            if s.lo >= seg.hi {
                break;
            }
            total += s.hi.min(seg.hi) - s.lo.max(seg.lo);
            idx += 1;
        }
        total
    }

    /// Whether the two sets share any ID. `O(s₁ + s₂)` merge walk.
    ///
    /// This is the symbolic collision test between two instances' emitted
    /// footprints.
    pub fn intersects_set(&self, other: &IntervalSet) -> bool {
        debug_assert_eq!(self.space, other.space);
        let (mut i, mut j) = (0, 0);
        while i < self.segments.len() && j < other.segments.len() {
            let a = self.segments[i];
            let b = other.segments[j];
            if a.lo < b.hi && b.lo < a.hi {
                return true;
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Number of IDs shared by the two sets.
    pub fn intersection_measure_set(&self, other: &IntervalSet) -> u128 {
        debug_assert_eq!(self.space, other.space);
        let (mut i, mut j) = (0, 0);
        let mut total = 0;
        while i < self.segments.len() && j < other.segments.len() {
            let a = self.segments[i];
            let b = other.segments[j];
            let lo = a.lo.max(b.lo);
            let hi = a.hi.min(b.hi);
            if lo < hi {
                total += hi - lo;
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// The *circular gaps*: maximal arcs of the complement.
    ///
    /// If the first and last segments leave room at both ends of `[0, m)`,
    /// those two pieces are one wrapping gap and are reported as a single
    /// arc. An empty set yields one full-circle gap.
    ///
    /// Allocates the result vector; the hot paths
    /// ([`count_fitting_starts`](Self::count_fitting_starts),
    /// [`sample_fitting_start`](Self::sample_fitting_start)) walk the gaps
    /// through an internal zero-allocation cursor instead.
    pub fn gaps(&self) -> Vec<Arc> {
        self.gap_cursor().collect()
    }

    /// Zero-allocation iterator over the circular gaps, in the same order
    /// as [`gaps`](Self::gaps): interior gaps left to right, then the
    /// wrapping gap (if any) last.
    fn gap_cursor(&self) -> GapCursor<'_> {
        GapCursor {
            set: self,
            idx: 0,
            emitted_wrap: self.is_full(),
        }
    }

    /// Uniformly samples an ID from the complement of the set.
    ///
    /// Returns `None` if the set is full.
    pub fn sample_complement(&self, rng: &mut Xoshiro256pp) -> Option<Id> {
        let free = self.complement_measure();
        if free == 0 {
            return None;
        }
        let mut r = uniform_below(rng, free);
        let mut cursor = 0u128;
        for seg in &self.segments {
            let gap = seg.lo - cursor;
            if r < gap {
                return Some(Id(cursor + r));
            }
            r -= gap;
            cursor = seg.hi;
        }
        Some(Id(cursor + r))
    }

    /// Number of starts `x` such that the arc `run(x, len)` is disjoint from
    /// the set. This is the denominator of Cluster★'s placement rule.
    ///
    /// Walks the gaps through the internal cursor — no allocation.
    pub fn count_fitting_starts(&self, len: u128) -> u128 {
        assert!(len >= 1);
        let m = self.space.size();
        assert!(len <= m);
        if self.segments.is_empty() {
            return m;
        }
        self.gap_cursor()
            .filter(|g| g.len >= len)
            .map(|g| g.len - len + 1)
            .sum()
    }

    /// Uniformly samples a start `x` such that `run(x, len)` is disjoint
    /// from the set, or `None` if no such start exists.
    ///
    /// Exactly implements Cluster★'s "draw `x ∈ [m]` uniformly at random
    /// such that `run(x, r)` does not collide with previously chosen runs".
    ///
    /// Two cursor passes (count, then select), zero allocations — this is
    /// the per-run-placement hot path of Cluster★.
    pub fn sample_fitting_start(&self, rng: &mut Xoshiro256pp, len: u128) -> Option<Id> {
        let total = self.count_fitting_starts(len);
        if total == 0 {
            return None;
        }
        if self.segments.is_empty() {
            return Some(Id(uniform_below(rng, total)));
        }
        let mut r = uniform_below(rng, total);
        for gap in self.gap_cursor() {
            if gap.len < len {
                continue;
            }
            let starts = gap.len - len + 1;
            if r < starts {
                return Some(self.space.add(gap.start, r));
            }
            r -= starts;
        }
        unreachable!("sample index exceeded counted fitting starts");
    }

    /// Rebuilds a set from persisted `[lo, hi)` segments (any order; they
    /// are re-normalized on insertion).
    ///
    /// # Panics
    ///
    /// Panics if a segment is degenerate or exceeds the universe.
    pub fn from_segments(space: IdSpace, segments: impl IntoIterator<Item = (u128, u128)>) -> Self {
        let mut set = IntervalSet::new(space);
        for (lo, hi) in segments {
            assert!(lo < hi && hi <= space.size(), "bad segment [{lo}, {hi})");
            set.insert(Arc::new(space, Id(lo), hi - lo));
        }
        set
    }

    /// Iterates the normalized half-open segments `[lo, hi)` in increasing
    /// order. Wrapping arcs appear as two segments. This is the raw view
    /// collision detectors use for k-way sweeps across many instances.
    pub fn segments(&self) -> impl Iterator<Item = (u128, u128)> + '_ {
        self.segments.iter().map(|s| (s.lo, s.hi))
    }

    /// Iterates the set's IDs in increasing order. Test/diagnostic helper;
    /// panics for sets with measure above 2²⁴.
    pub fn iter_ids(&self) -> impl Iterator<Item = Id> + '_ {
        assert!(self.measure <= 1 << 24, "iter_ids is for small sets only");
        self.segments.iter().flat_map(|s| (s.lo..s.hi).map(Id))
    }

    /// Internal invariant check used by tests and debug assertions.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let m = self.space.size();
        let mut measure = 0;
        let mut prev_hi: Option<u128> = None;
        for s in &self.segments {
            assert!(s.lo < s.hi, "degenerate segment");
            assert!(s.hi <= m, "segment out of universe");
            if let Some(ph) = prev_hi {
                assert!(s.lo > ph, "segments must be disjoint and non-adjacent");
            }
            measure += s.hi - s.lo;
            prev_hi = Some(s.hi);
        }
        assert_eq!(measure, self.measure, "cached measure out of sync");
    }
}

/// Zero-allocation iterator over a set's circular gaps.
///
/// Yields the interior gaps between consecutive segments in order, then
/// the single wrapping gap spanning the tail of `[0, m)` and the head
/// before the first segment (reported as one arc, or suppressed when the
/// boundary is covered). On the empty set, yields one full-circle gap.
struct GapCursor<'a> {
    set: &'a IntervalSet,
    /// Next interior gap to consider: between `segments[idx]` and
    /// `segments[idx + 1]`.
    idx: usize,
    emitted_wrap: bool,
}

impl Iterator for GapCursor<'_> {
    type Item = Arc;

    fn next(&mut self) -> Option<Arc> {
        let segs = &self.set.segments;
        let m = self.set.space.size();
        if self.emitted_wrap {
            return None;
        }
        if segs.is_empty() {
            self.emitted_wrap = true;
            return Some(Arc {
                start: Id(0),
                len: m,
            });
        }
        if self.idx + 1 < segs.len() {
            let i = self.idx;
            self.idx += 1;
            // Segments are disjoint and non-adjacent, so interior gaps are
            // always non-empty.
            return Some(Arc {
                start: Id(segs[i].hi),
                len: segs[i + 1].lo - segs[i].hi,
            });
        }
        self.emitted_wrap = true;
        let head = segs[0].lo; // room before the first segment
        let last_hi = segs[segs.len() - 1].hi;
        let tail = m - last_hi; // room after the last segment
        if head + tail > 0 {
            return Some(Arc {
                start: Id(if last_hi == m { 0 } else { last_hi }),
                len: head + tail,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(m: u128) -> IdSpace {
        IdSpace::new(m).unwrap()
    }

    #[test]
    fn arc_basics() {
        let s = space(20);
        let a = Arc::new(s, Id(18), 5); // {18,19,0,1,2}
        assert_eq!(a.last(s), Id(2));
        assert!(a.contains(s, Id(19)));
        assert!(a.contains(s, Id(0)));
        assert!(a.contains(s, Id(2)));
        assert!(!a.contains(s, Id(3)));
        assert!(!a.contains(s, Id(17)));
        assert_eq!(a.nth(s, 0), Id(18));
        assert_eq!(a.nth(s, 4), Id(2));
    }

    #[test]
    fn full_circle_arc() {
        let s = space(8);
        let a = Arc::new(s, Id(5), 8);
        for i in 0..8 {
            assert!(a.contains(s, Id(i)));
        }
    }

    #[test]
    fn insert_and_contains() {
        let s = space(100);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(10), 5)); // [10,15)
        set.insert(Arc::new(s, Id(20), 5)); // [20,25)
        set.assert_invariants();
        assert_eq!(set.measure(), 10);
        assert!(set.contains(Id(10)));
        assert!(set.contains(Id(14)));
        assert!(!set.contains(Id(15)));
        assert!(set.contains(Id(24)));
        assert!(!set.contains(Id(25)));
        assert_eq!(set.segment_count(), 2);
    }

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let s = space(100);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(10), 5)); // [10,15)
        set.insert(Arc::new(s, Id(15), 5)); // adjacent: [15,20)
        set.assert_invariants();
        assert_eq!(set.segment_count(), 1);
        assert_eq!(set.measure(), 10);
        set.insert(Arc::new(s, Id(12), 20)); // overlapping: [12,32)
        set.assert_invariants();
        assert_eq!(set.segment_count(), 1);
        assert_eq!(set.measure(), 22);
    }

    #[test]
    fn insert_merges_across_many_segments() {
        let s = space(1000);
        let mut set = IntervalSet::new(s);
        for i in 0..10 {
            set.insert(Arc::new(s, Id(i * 20), 5));
        }
        assert_eq!(set.segment_count(), 10);
        set.insert(Arc::new(s, Id(0), 200));
        set.assert_invariants();
        assert_eq!(set.segment_count(), 1);
        assert_eq!(set.measure(), 200);
    }

    #[test]
    fn wrapping_arc_splits_and_wrapping_gap_rejoins() {
        let s = space(20);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(18), 5)); // {18,19,0,1,2}
        set.assert_invariants();
        assert_eq!(set.measure(), 5);
        assert!(set.contains(Id(19)));
        assert!(set.contains(Id(0)));
        assert!(set.contains(Id(2)));
        assert!(!set.contains(Id(3)));
        let gaps = set.gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].start, Id(3));
        assert_eq!(gaps[0].len, 15);
    }

    #[test]
    fn gaps_of_empty_and_full_sets() {
        let s = space(16);
        let set = IntervalSet::new(s);
        let gaps = set.gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].len, 16);

        let mut full = IntervalSet::new(s);
        full.insert(Arc::new(s, Id(3), 16));
        assert!(full.is_full());
        assert!(full.gaps().is_empty());
    }

    #[test]
    fn intersects_arc_detects_overlap() {
        let s = space(50);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(10), 10)); // [10,20)
        assert!(set.intersects_arc(Arc::new(s, Id(19), 1)));
        assert!(set.intersects_arc(Arc::new(s, Id(5), 6)));
        assert!(!set.intersects_arc(Arc::new(s, Id(20), 5)));
        assert!(!set.intersects_arc(Arc::new(s, Id(5), 5)));
        // Wrapping probe that reaches into [10,20).
        assert!(set.intersects_arc(Arc::new(s, Id(45), 16)));
        assert!(!set.intersects_arc(Arc::new(s, Id(45), 15)));
    }

    #[test]
    fn intersection_measures() {
        let s = space(50);
        let mut a = IntervalSet::new(s);
        a.insert(Arc::new(s, Id(10), 10)); // [10,20)
        a.insert(Arc::new(s, Id(30), 5)); // [30,35)
        assert_eq!(a.intersection_measure(Arc::new(s, Id(15), 20)), 10); // [15,35): 5 + 5
        let mut b = IntervalSet::new(s);
        b.insert(Arc::new(s, Id(18), 14)); // [18,32)
        assert!(a.intersects_set(&b));
        assert_eq!(a.intersection_measure_set(&b), 4); // [18,20) + [30,32)
        let mut c = IntervalSet::new(s);
        c.insert(Arc::new(s, Id(20), 10)); // [20,30): touches both but overlaps neither
        assert!(!a.intersects_set(&c));
        assert_eq!(a.intersection_measure_set(&c), 0);
    }

    #[test]
    fn sample_complement_avoids_set() {
        let s = space(100);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(0), 90)); // only [90,100) free
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..200 {
            let id = set.sample_complement(&mut rng).unwrap();
            assert!(id.value() >= 90);
        }
        set.insert(Arc::new(s, Id(90), 10));
        assert!(set.sample_complement(&mut rng).is_none());
    }

    #[test]
    fn sample_complement_is_uniform_over_gaps() {
        let s = space(10);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(2), 3)); // occupied {2,3,4}
        set.insert(Arc::new(s, Id(7), 2)); // occupied {7,8}
        let mut rng = Xoshiro256pp::new(2);
        let mut counts = [0u32; 10];
        let trials = 50_000;
        for _ in 0..trials {
            counts[set.sample_complement(&mut rng).unwrap().value() as usize] += 1;
        }
        let free = [0usize, 1, 5, 6, 9];
        for (id, &count) in counts.iter().enumerate() {
            if free.contains(&id) {
                let expected = trials as f64 / free.len() as f64;
                let dev = (count as f64 - expected).abs() / expected;
                assert!(dev < 0.05, "id {id}: count {count} dev {dev:.3}");
            } else {
                assert_eq!(count, 0, "occupied id {id} was sampled");
            }
        }
    }

    #[test]
    fn count_fitting_starts_matches_brute_force() {
        let s = space(30);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(5), 4)); // [5,9)
        set.insert(Arc::new(s, Id(25), 8)); // {25..29, 0,1,2}
        set.assert_invariants();
        for len in 1..=30u128 {
            let brute = (0..30u128)
                .filter(|&x| !set.intersects_arc(Arc::new(s, Id(x), len)))
                .count() as u128;
            assert_eq!(set.count_fitting_starts(len), brute, "len = {len} mismatch");
        }
    }

    #[test]
    fn sample_fitting_start_yields_disjoint_runs() {
        let s = space(64);
        let mut set = IntervalSet::new(s);
        let mut rng = Xoshiro256pp::new(3);
        // Place runs of doubling length, exactly like Cluster★.
        for r in [1u128, 2, 4, 8, 16] {
            let start = set.sample_fitting_start(&mut rng, r).unwrap();
            let run = Arc::new(s, start, r);
            assert!(!set.intersects_arc(run), "placed run must fit");
            set.insert(run);
            set.assert_invariants();
        }
        assert_eq!(set.measure(), 31);
    }

    #[test]
    fn sample_fitting_start_none_when_fragmented() {
        let s = space(10);
        let mut set = IntervalSet::new(s);
        // Occupy every other ID: no gap of length >= 2 remains.
        for i in (0..10u128).step_by(2) {
            set.insert_point(Id(i));
        }
        let mut rng = Xoshiro256pp::new(4);
        assert_eq!(set.count_fitting_starts(2), 0);
        assert!(set.sample_fitting_start(&mut rng, 2).is_none());
        // Length-1 runs still fit in each of the 5 singleton gaps.
        assert_eq!(set.count_fitting_starts(1), 5);
        assert!(set.sample_fitting_start(&mut rng, 1).is_some());
    }

    #[test]
    fn sample_fitting_start_uniform_over_valid_starts() {
        let s = space(12);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(0), 6)); // free: [6,12)
        let len = 3u128;
        // Valid starts: 6,7,8,9 (run must end by 11).
        let mut rng = Xoshiro256pp::new(5);
        let mut counts = std::collections::HashMap::new();
        let trials = 40_000;
        for _ in 0..trials {
            let x = set.sample_fitting_start(&mut rng, len).unwrap();
            *counts.entry(x.value()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for x in 6..=9u128 {
            let c = counts[&x] as f64;
            let expected = trials as f64 / 4.0;
            assert!((c - expected).abs() / expected < 0.05, "start {x}");
        }
    }

    #[test]
    fn clear_retains_nothing_but_stays_usable() {
        let s = space(100);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(10), 5));
        set.insert(Arc::new(s, Id(90), 15)); // wraps
        set.clear();
        set.assert_invariants();
        assert!(set.is_empty());
        assert_eq!(set.segment_count(), 0);
        assert_eq!(set.gaps().len(), 1);
        set.insert(Arc::new(s, Id(3), 4));
        set.assert_invariants();
        assert_eq!(set.measure(), 4);
        assert!(set.contains(Id(3)));
        assert!(!set.contains(Id(90)));
    }

    #[test]
    fn repeated_one_id_extensions_stay_normalized() {
        // The emitter pattern: the same segment is extended one ID at a
        // time (hint fast path), interleaved with far-away insertions that
        // invalidate the hint.
        let s = space(1 << 20);
        let mut set = IntervalSet::new(s);
        for i in 0..100u128 {
            set.insert(Arc::new(s, Id(5000 + i), 1));
            set.assert_invariants();
        }
        assert_eq!(set.segment_count(), 1);
        set.insert(Arc::new(s, Id(100_000), 7)); // hint now points elsewhere
        for i in 100..200u128 {
            set.insert(Arc::new(s, Id(5000 + i), 1));
            set.assert_invariants();
        }
        assert_eq!(set.segment_count(), 2);
        assert_eq!(set.measure(), 207);
    }

    #[test]
    fn extension_that_reaches_successor_merges_it() {
        let s = space(1000);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(10), 5)); // [10,15)
        set.insert(Arc::new(s, Id(20), 5)); // [20,25)
                                            // Extend the first segment (hinted) right up to the second.
        set.insert(Arc::new(s, Id(15), 5)); // adjacency on both sides
        set.assert_invariants();
        assert_eq!(set.segment_count(), 1);
        assert_eq!(set.measure(), 15);
    }

    #[test]
    fn gap_cursor_matches_collected_gaps_on_fragmented_sets() {
        let s = space(512);
        let mut set = IntervalSet::new(s);
        let mut rng = Xoshiro256pp::new(17);
        for _ in 0..40 {
            let start = uniform_below(&mut rng, 512);
            let len = 1 + uniform_below(&mut rng, 12);
            set.insert(Arc::new(s, Id(start), len));
            set.assert_invariants();
            // gaps() is itself cursor-backed; cross-check totals against
            // the complement measure and brute-force fitting counts.
            let gaps = set.gaps();
            let total: u128 = gaps.iter().map(|g| g.len).sum();
            assert_eq!(total, set.complement_measure());
            for len in [1u128, 2, 5] {
                let brute = (0..512u128)
                    .filter(|&x| !set.intersects_arc(Arc::new(s, Id(x), len)))
                    .count() as u128;
                assert_eq!(set.count_fitting_starts(len), brute);
            }
        }
    }

    #[test]
    fn iter_ids_lists_members_in_order() {
        let s = space(30);
        let mut set = IntervalSet::new(s);
        set.insert(Arc::new(s, Id(28), 4)); // {28,29,0,1}
        set.insert(Arc::new(s, Id(10), 2)); // {10,11}
        let ids: Vec<u128> = set.iter_ids().map(|i| i.value()).collect();
        assert_eq!(ids, vec![0, 1, 10, 11, 28, 29]);
    }
}
