//! Durable generator state: versioned, checksummed on-disk snapshots
//! plus the crash-recovery rule that makes restarts safe.
//!
//! A process embedding these generators must survive a crash without
//! ever repeating an ID — the RocksDB SST-unique-ID setting (PRs
//! #8990/#9126) that motivates the paper. The hazard of naïve
//! persistence is *staleness*: a snapshot taken at emission count `G`
//! says nothing about the IDs emitted between the snapshot and the
//! crash, so resuming exactly at `G` would deterministically re-emit
//! that suffix.
//!
//! This module closes the gap with a **write-ahead reservation**
//! discipline:
//!
//! 1. A [`SnapshotRecord`] stores the generator state *plus* a
//!    `reservation` `R`: permission for the running process to emit up
//!    to `R` further IDs past the recorded state.
//! 2. The process persists a fresh record **before** emitting any ID
//!    beyond the current reservation frontier (the service layer's
//!    durability hook enforces this per lease).
//! 3. [`recover`] restores the recorded state and then **skips the
//!    entire reserved window** — abandoning the in-flight run/bin
//!    segment the crashed process may have been emitting from, and
//!    letting every later placement be re-drawn from the persisted RNG
//!    stream.
//!
//! Because each instance's ID stream is a deterministic permutation
//! prefix of its seed, the recovered instance continues that same
//! permutation strictly *after* the reservation frontier: anything the
//! crashed process can have emitted (a prefix of the first
//! `generated + R` IDs) is disjoint from everything the recovered
//! instance will ever emit. The cost is bounded leakage — at most `R`
//! IDs are abandoned per crash — never a repeat. This is the
//! paper-faithful middle ground between RocksDB's "fresh instance per
//! restart" (safe, but every restart grows the effective `n` and with
//! it the collision exposure) and exact resume (which is only safe if
//! nothing was emitted after the snapshot).
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! magic    8 bytes   "UUIDSNP1"-independent tag: b"UUIDSNAP"
//! version  u32 LE    1
//! length   u64 LE    payload byte count
//! payload  ...       seq, epoch, reservation, universe, GeneratorState
//! checksum u64 LE    FNV-1a over magic + version + length + payload
//! ```
//!
//! All integers are little-endian; variable-length sequences carry a
//! `u64` count prefix (the shared [`codec`](crate::codec) vocabulary —
//! the same primitives the `uuidp-client` wire frames are built from).
//! Records are written to a temporary file and atomically renamed into
//! place, so a torn write leaves the previous record intact; any
//! corruption (truncation, bit flips, unknown versions) is reported as
//! a typed [`PersistError`], never a panic.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::codec::{
    fnv1a, put_opt_pair, put_opt_u128, put_pair_seq, put_rng, put_u128, put_u128_seq, put_u32,
    put_u64, CodecError, Cursor,
};
use crate::id::IdSpace;
use crate::state::{restore, GeneratorState, StateError};
use crate::traits::IdGenerator;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"UUIDSNAP";

/// Current on-disk format version.
pub const VERSION: u32 = 1;

/// A persisted generator snapshot plus its write-ahead reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Monotone per-tenant sequence number (diagnostics; newer wins).
    pub seq: u64,
    /// The service epoch the tenant was in when the record was written
    /// (epochs key restart-aware audit ownership).
    pub epoch: u32,
    /// IDs the process may emit past `state` before it must persist
    /// again. Recovery abandons this whole window.
    pub reservation: u128,
    /// The ID universe the generator draws from.
    pub space: IdSpace,
    /// The generator state at persist time.
    pub state: GeneratorState,
}

/// Error reading, writing, or recovering a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported.
    UnsupportedVersion(u32),
    /// The stored checksum does not match the content.
    ChecksumMismatch,
    /// The payload ended before the record was complete.
    Truncated,
    /// The payload decoded but described an impossible record.
    Corrupt(String),
    /// The decoded state failed generator-level validation.
    State(StateError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a uuidp snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: {VERSION})")
            }
            PersistError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            PersistError::State(e) => write!(f, "snapshot state rejected: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => PersistError::Truncated,
            CodecError::Corrupt(msg) => PersistError::Corrupt(msg),
        }
    }
}

fn encode_state(out: &mut Vec<u8>, state: &GeneratorState) {
    match state {
        GeneratorState::Random {
            rng,
            drawn,
            displacements,
            emitted,
        } => {
            out.push(0);
            put_rng(out, rng);
            put_u128(out, *drawn);
            put_pair_seq(out, displacements);
            put_u128_seq(out, emitted);
        }
        GeneratorState::Cluster { start, generated } => {
            out.push(1);
            put_u128(out, *start);
            put_u128(out, *generated);
        }
        GeneratorState::Bins {
            k,
            rng,
            order_drawn,
            order_displacements,
            current,
            leftover_emitted,
            generated,
            emitted,
        } => {
            out.push(2);
            put_u128(out, *k);
            put_rng(out, rng);
            put_u128(out, *order_drawn);
            put_pair_seq(out, order_displacements);
            put_opt_pair(out, current);
            put_u128(out, *leftover_emitted);
            put_u128(out, *generated);
            put_pair_seq(out, emitted);
        }
        GeneratorState::ClusterStar {
            rng,
            growth,
            next_len,
            runs,
            current_used,
            generated,
        } => {
            out.push(3);
            put_rng(out, rng);
            put_u32(out, *growth);
            put_u128(out, *next_len);
            put_pair_seq(out, runs);
            put_opt_u128(out, current_used);
            put_u128(out, *generated);
        }
        GeneratorState::BinsStar {
            rng,
            chunks,
            chunk_size,
            next_chunk,
            bins,
            current_used,
            generated,
        } => {
            out.push(4);
            put_rng(out, rng);
            put_u32(out, *chunks);
            put_u128(out, *chunk_size);
            put_u32(out, *next_chunk);
            put_pair_seq(out, bins);
            put_opt_u128(out, current_used);
            put_u128(out, *generated);
        }
        GeneratorState::SessionCounter {
            rng,
            session_bits,
            counter_bits,
            used_sessions,
            current_session,
            counter,
            generated,
        } => {
            out.push(5);
            put_rng(out, rng);
            put_u32(out, *session_bits);
            put_u32(out, *counter_bits);
            put_u128_seq(out, used_sessions);
            put_opt_u128(out, current_session);
            put_u128(out, *counter);
            put_u128(out, *generated);
        }
    }
}

fn decode_state(c: &mut Cursor<'_>) -> Result<GeneratorState, PersistError> {
    Ok(match c.u8()? {
        0 => GeneratorState::Random {
            rng: c.rng()?,
            drawn: c.u128()?,
            displacements: c.pair_seq()?,
            emitted: c.u128_seq()?,
        },
        1 => GeneratorState::Cluster {
            start: c.u128()?,
            generated: c.u128()?,
        },
        2 => GeneratorState::Bins {
            k: c.u128()?,
            rng: c.rng()?,
            order_drawn: c.u128()?,
            order_displacements: c.pair_seq()?,
            current: c.opt_pair()?,
            leftover_emitted: c.u128()?,
            generated: c.u128()?,
            emitted: c.pair_seq()?,
        },
        3 => GeneratorState::ClusterStar {
            rng: c.rng()?,
            growth: c.u32()?,
            next_len: c.u128()?,
            runs: c.pair_seq()?,
            current_used: c.opt_u128()?,
            generated: c.u128()?,
        },
        4 => GeneratorState::BinsStar {
            rng: c.rng()?,
            chunks: c.u32()?,
            chunk_size: c.u128()?,
            next_chunk: c.u32()?,
            bins: c.pair_seq()?,
            current_used: c.opt_u128()?,
            generated: c.u128()?,
        },
        5 => GeneratorState::SessionCounter {
            rng: c.rng()?,
            session_bits: c.u32()?,
            counter_bits: c.u32()?,
            used_sessions: c.u128_seq()?,
            current_session: c.opt_u128()?,
            counter: c.u128()?,
            generated: c.u128()?,
        },
        t => return Err(PersistError::Corrupt(format!("unknown state tag {t}"))),
    })
}

/// Serializes `record` into the versioned, checksummed file format.
pub fn encode_record(record: &SnapshotRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    put_u64(&mut payload, record.seq);
    put_u32(&mut payload, record.epoch);
    put_u128(&mut payload, record.reservation);
    put_u128(&mut payload, record.space.size());
    encode_state(&mut payload, &record.state);

    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Parses bytes produced by [`encode_record`], validating magic,
/// version, length, and checksum before touching the payload.
pub fn decode_record(bytes: &[u8]) -> Result<SnapshotRecord, PersistError> {
    let mut c = Cursor::new(bytes);
    if c.take(8)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    // Length arithmetic stays in checked u64: a crafted length near
    // the integer maximum must come back as Truncated, not overflow
    // (never-panic is this module's contract).
    let payload_len = c.u64()?;
    let body_start = c.position();
    let body_end = (body_start as u64)
        .checked_add(payload_len)
        .ok_or(PersistError::Truncated)?;
    if body_end.checked_add(8) != Some(bytes.len() as u64) {
        return Err(PersistError::Truncated);
    }
    let body_end = body_end as usize;
    let mut trailer = Cursor::new(bytes.get(body_end..).ok_or(PersistError::Truncated)?);
    let stored = trailer.u64()?;
    let checked = bytes.get(..body_end).ok_or(PersistError::Truncated)?;
    if fnv1a(checked) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    let body = bytes
        .get(body_start..body_end)
        .ok_or(PersistError::Truncated)?;
    let mut c = Cursor::new(body);
    let seq = c.u64()?;
    let epoch = c.u32()?;
    let reservation = c.u128()?;
    let m = c.u128()?;
    let space = IdSpace::new(m).map_err(|e| PersistError::Corrupt(format!("bad universe: {e}")))?;
    let state = decode_state(&mut c)?;
    c.finish()?;
    Ok(SnapshotRecord {
        seq,
        epoch,
        reservation,
        space,
        state,
    })
}

/// Rebuilds a generator from `record` under the crash-recovery rule:
/// restore the persisted state, then abandon the entire reserved
/// window by skipping it.
///
/// Every ID the crashed process can have emitted lies in the first
/// `state.generated + reservation` positions of the instance's
/// permutation (that is what the write-ahead discipline guarantees),
/// and the recovered generator continues strictly after them — so it
/// never re-emits a pre-crash ID, at the cost of leaking at most
/// `reservation` IDs. If the skip exhausts the generator it is
/// returned exhausted, which is still never-re-emitting.
pub fn recover(record: &SnapshotRecord) -> Result<Box<dyn IdGenerator>, PersistError> {
    let mut generator = restore(record.space, &record.state).map_err(PersistError::State)?;
    let _ = generator.skip(record.reservation);
    Ok(generator)
}

// ---------------------------------------------------------------------
// Directory-backed store
// ---------------------------------------------------------------------

/// A directory of per-tenant snapshot files (`tenant-<id>.snap`),
/// written atomically (temp file + rename) so crashes mid-write leave
/// the previous record readable.
///
/// By default writes are *not* fsynced: rename atomicity alone covers
/// every crash where the OS survives (process kills, the fleet chaos
/// harness), and write-ahead records are on the issue path. Deployments
/// that must survive power loss should enable
/// [`with_sync`](SnapshotStore::with_sync).
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    sync: bool,
}

impl SnapshotStore {
    /// Opens (creating if necessary) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, PersistError> {
        SnapshotStore::with_sync(dir, false)
    }

    /// Opens the store, choosing whether every save fsyncs before the
    /// rename (power-loss durability at per-record fsync cost).
    pub fn with_sync(dir: impl Into<PathBuf>, sync: bool) -> Result<SnapshotStore, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir, sync })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant}.snap"))
    }

    /// Atomically replaces `tenant`'s record: write to a temp file,
    /// rename over the live name. With sync on, both the file *and the
    /// directory* are fsynced — a durable record behind a non-durable
    /// rename would recover stale state after power loss, which is the
    /// exact hazard the write-ahead discipline exists to close.
    pub fn save(&self, tenant: u64, record: &SnapshotRecord) -> Result<(), PersistError> {
        let bytes = encode_record(record);
        let tmp = self.dir.join(format!("tenant-{tenant}.snap.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            if self.sync {
                file.sync_all()?;
            }
        }
        fs::rename(&tmp, self.path(tenant))?;
        if self.sync {
            fs::File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads `tenant`'s record, `Ok(None)` if none was ever saved.
    pub fn load(&self, tenant: u64) -> Result<Option<SnapshotRecord>, PersistError> {
        match fs::read(self.path(tenant)) {
            Ok(bytes) => decode_record(&bytes).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Deletes `tenant`'s record if present.
    pub fn remove(&self, tenant: u64) -> Result<(), PersistError> {
        match fs::remove_file(self.path(tenant)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Tenants with a saved record, in ascending order.
    pub fn tenants(&self) -> Result<Vec<u64>, PersistError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("tenant-")
                .and_then(|r| r.strip_suffix(".snap"))
            {
                if let Ok(id) = id.parse() {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uuidp-persist-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_kinds() -> Vec<(AlgorithmKind, IdSpace)> {
        let space = IdSpace::new(1 << 16).unwrap();
        vec![
            (AlgorithmKind::Random, space),
            (AlgorithmKind::Cluster, space),
            (AlgorithmKind::Bins { k: 16 }, space),
            (AlgorithmKind::ClusterStar, space),
            (AlgorithmKind::BinsStar, space),
            (
                AlgorithmKind::SessionCounter {
                    session_bits: 10,
                    counter_bits: 6,
                },
                IdSpace::with_bits(16).unwrap(),
            ),
        ]
    }

    fn record_for(kind: &AlgorithmKind, space: IdSpace, emitted: u128) -> SnapshotRecord {
        let alg = kind.build(space);
        let mut gen = alg.spawn(42);
        for _ in 0..emitted {
            gen.next_id().unwrap();
        }
        SnapshotRecord {
            seq: 7,
            epoch: 2,
            reservation: 64,
            space,
            state: gen.snapshot().expect("snapshot-capable"),
        }
    }

    #[test]
    fn every_algorithm_state_round_trips_through_the_codec() {
        for (kind, space) in sample_kinds() {
            let record = record_for(&kind, space, 37);
            let decoded =
                decode_record(&encode_record(&record)).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(decoded, record, "{kind:?}");
        }
    }

    #[test]
    fn store_saves_loads_and_lists_atomically() {
        let dir = temp_dir("store");
        let store = SnapshotStore::open(&dir).unwrap();
        let space = IdSpace::new(1 << 12).unwrap();
        let record = record_for(&AlgorithmKind::Cluster, space, 5);
        assert_eq!(store.load(3).unwrap(), None);
        store.save(3, &record).unwrap();
        store.save(9, &record).unwrap();
        assert_eq!(store.load(3).unwrap(), Some(record.clone()));
        assert_eq!(store.tenants().unwrap(), vec![3, 9]);
        // Overwrite wins; no temp files linger.
        let mut newer = record.clone();
        newer.seq = 8;
        store.save(3, &newer).unwrap();
        assert_eq!(store.load(3).unwrap().unwrap().seq, 8);
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_str()
            .unwrap()
            .ends_with(".tmp")));
        store.remove(3).unwrap();
        store.remove(3).unwrap(); // idempotent
        assert_eq!(store.tenants().unwrap(), vec![9]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let space = IdSpace::new(1 << 12).unwrap();
        let record = record_for(&AlgorithmKind::BinsStar, space, 20);
        let good = encode_record(&record);

        // Every single-byte flip must fail loudly (magic, version,
        // length, payload, or checksum — never a silent wrong decode).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x41;
            assert!(decode_record(&bad).is_err(), "flip at byte {i} accepted");
        }
        // Every truncation must fail.
        for cut in 0..good.len() {
            assert!(
                decode_record(&good[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Garbage appended past the checksum fails the length check.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_err());
        // A crafted near-MAX length field must come back Truncated,
        // not overflow the length arithmetic.
        let mut huge = good.clone();
        huge[12..20].copy_from_slice(&(u64::MAX - 4).to_le_bytes());
        assert!(matches!(decode_record(&huge), Err(PersistError::Truncated)));
    }

    #[test]
    fn unknown_versions_are_rejected_by_number() {
        let space = IdSpace::new(1 << 10).unwrap();
        let mut bytes = encode_record(&record_for(&AlgorithmKind::Cluster, space, 1));
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-stamp the checksum so the version check itself is hit.
        let end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        match decode_record(&bytes) {
            Err(PersistError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion(99), got {other:?}"),
        }
    }

    #[test]
    fn recover_abandons_the_reserved_window() {
        for (kind, space) in sample_kinds() {
            let alg = kind.build(space);
            let mut original = alg.spawn(11);
            let mut pre_crash = Vec::new();
            for _ in 0..40 {
                pre_crash.push(original.next_id().unwrap());
            }
            let record = SnapshotRecord {
                seq: 1,
                epoch: 0,
                reservation: 25,
                space,
                state: original.snapshot().unwrap(),
            };
            // The crash happens mid-window: 17 more IDs go out the door.
            for _ in 0..17 {
                pre_crash.push(original.next_id().unwrap());
            }
            let mut recovered = recover(&record).unwrap();
            assert_eq!(
                recovered.generated(),
                40 + 25,
                "{kind:?}: recovery resumes at the reservation frontier"
            );
            // Nothing the recovered instance emits repeats a pre-crash ID,
            // and the stream is the seed's permutation past the window.
            let mut reference = alg.spawn(11);
            reference.skip(40 + 25).unwrap();
            for step in 0..60 {
                let id = recovered.next_id().unwrap();
                assert_eq!(id, reference.next_id().unwrap(), "{kind:?} step {step}");
                assert!(!pre_crash.contains(&id), "{kind:?} re-emitted {id}");
            }
        }
    }

    #[test]
    fn recover_past_exhaustion_yields_an_exhausted_generator() {
        let space = IdSpace::new(64).unwrap();
        let alg = AlgorithmKind::Cluster.build(space);
        let mut gen = alg.spawn(5);
        for _ in 0..50 {
            gen.next_id().unwrap();
        }
        let record = SnapshotRecord {
            seq: 1,
            epoch: 0,
            reservation: 1000, // far past the universe
            space,
            state: gen.snapshot().unwrap(),
        };
        let mut recovered = recover(&record).unwrap();
        assert!(
            recovered.next_id().is_err(),
            "must be exhausted, not reused"
        );
    }

    #[test]
    fn persist_error_displays_name_the_failure() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(PersistError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(PersistError::Truncated.to_string().contains("truncated"));
    }
}
