//! ASCII rendering of the paper's algorithm illustrations (experiment E1).
//!
//! Section 3 illustrates each algorithm with a row of `m` squares, where a
//! number `i` in a square means the corresponding ID was the `i`-th ID
//! returned. This module reproduces those diagrams for any generator:
//!
//! ```text
//! cluster (m = 20, 8 requests)
//! ·  ·  ·  ·  ·  1  2  3  4  5  6  7  8  ·  ·  ·  ·  ·  ·  ·
//! ```

use crate::traits::IdGenerator;

/// Renders the emission order of the first `requests` IDs of `generator`
/// as the paper's square diagram.
///
/// Returns one line per `row_width` IDs (the paper uses a single row; for
/// larger `m` wrapping keeps the output readable). Cells show the request
/// index (1-based) that produced the ID, or `·` if the ID was not produced.
///
/// # Panics
///
/// Panics if the universe is larger than 2¹⁴ (diagrams are for small,
/// figure-sized universes) or if the generator cannot serve `requests`.
pub fn render(generator: &mut dyn IdGenerator, requests: u128, row_width: usize) -> String {
    let space = generator.space();
    let m = space.size();
    assert!(m <= 1 << 14, "diagrams are for small universes (m = {m})");
    assert!(row_width > 0);
    let mut order = vec![0u128; m as usize];
    for i in 1..=requests {
        let id = generator
            .next_id()
            .unwrap_or_else(|e| panic!("generator failed at request {i}: {e}"));
        order[id.value() as usize] = i;
    }
    let cell_width = requests.to_string().len().max(1);
    let mut out = String::new();
    for (idx, &o) in order.iter().enumerate() {
        if idx > 0 && idx % row_width == 0 {
            out.push('\n');
        } else if idx % row_width != 0 {
            out.push(' ');
        }
        if o == 0 {
            out.push_str(&format!("{:>cell_width$}", "·"));
        } else {
            out.push_str(&format!("{o:>cell_width$}"));
        }
    }
    out
}

/// Renders `render` output with a caption line, matching the paper's
/// "Example (m = 20, 8 requests)" headers.
pub fn render_captioned(
    name: &str,
    generator: &mut dyn IdGenerator,
    requests: u128,
    row_width: usize,
) -> String {
    let m = generator.space().size();
    format!(
        "{name} (m = {m}, {requests} requests)\n{}",
        render(generator, requests, row_width)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Cluster, Random};
    use crate::id::IdSpace;
    use crate::traits::Algorithm;

    #[test]
    fn cluster_diagram_shows_a_contiguous_ascending_block() {
        let space = IdSpace::new(20).unwrap();
        let alg = Cluster::new(space);
        let mut g = alg.spawn(1);
        let diagram = render(g.as_mut(), 8, 20);
        // Exactly the digits 1..8 appear, in ascending order up to rotation.
        let cells: Vec<&str> = diagram.split_whitespace().collect();
        assert_eq!(cells.len(), 20);
        let filled: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != "·")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(filled.len(), 8);
        // Rotate so the block is linear, then check the numbers ascend.
        let values: Vec<u32> = cells
            .iter()
            .filter(|c| **c != "·")
            .map(|c| c.parse().unwrap())
            .collect();
        let pos_of_one = values.iter().position(|&v| v == 1).unwrap();
        for (offset, want) in (1..=8u32).enumerate() {
            let idx = (pos_of_one + offset) % 8;
            // Only valid when the block does not wrap; detect wrap and skip.
            if filled[7] - filled[0] == 7 {
                assert_eq!(values[(pos_of_one + offset - 1) % 8], want, "idx {idx}");
            }
        }
    }

    #[test]
    fn random_diagram_has_exactly_requested_marks() {
        let space = IdSpace::new(20).unwrap();
        let alg = Random::new(space);
        let mut g = alg.spawn(2);
        let diagram = render(g.as_mut(), 8, 20);
        let marks = diagram.split_whitespace().filter(|c| *c != "·").count();
        assert_eq!(marks, 8);
    }

    #[test]
    fn captioned_header_matches_paper_style() {
        let space = IdSpace::new(20).unwrap();
        let alg = Cluster::new(space);
        let mut g = alg.spawn(3);
        let s = render_captioned("cluster", g.as_mut(), 8, 20);
        assert!(s.starts_with("cluster (m = 20, 8 requests)\n"));
    }

    #[test]
    fn wrapping_rows() {
        let space = IdSpace::new(32).unwrap();
        let alg = Random::new(space);
        let mut g = alg.spawn(4);
        let s = render(g.as_mut(), 4, 16);
        assert_eq!(s.lines().count(), 2);
    }
}
