//! Deterministic random number generation.
//!
//! Everything in this repository — generators, adversaries, Monte-Carlo
//! trials — must be exactly reproducible from a single `u64` seed, so that
//! experiments can be re-run and failures can be replayed. We therefore ship
//! our own small, well-known PRNGs (SplitMix64 for seed derivation,
//! xoshiro256++ for bulk generation) rather than depending on `StdRng`,
//! whose algorithm is explicitly unspecified and has changed across `rand`
//! releases. Both implement [`rand::RngCore`] so they compose with the
//! wider `rand` ecosystem.
//!
//! None of this is cryptographic. The paper's adversary knows the algorithm
//! but not the random bits; for the *simulation* of that game a fast
//! statistical PRNG is the right tool. A production deployment of these
//! algorithms should use an OS CSPRNG for the random draws (see the crate
//! docs), which changes nothing about the analysis.

use rand::RngCore;

/// SplitMix64: the standard 64-bit seed expander (Steele, Lea, Flood 2014).
///
/// Used to derive independent child seeds from a master seed — e.g. one seed
/// per instance per Monte-Carlo trial — without any correlation between
/// children. Also a perfectly serviceable (if small-state) RNG by itself.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All 2⁶⁴ seeds are valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_value() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_value()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

/// xoshiro256++ 1.0 (Blackman, Vigna 2019): the workhorse generator.
///
/// 256 bits of state, excellent statistical quality, a few nanoseconds per
/// draw. Seeded through SplitMix64 as its authors recommend, so any `u64`
/// seed yields a well-mixed initial state (the all-zero state is unreachable
/// this way).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [
            sm.next_value(),
            sm.next_value(),
            sm.next_value(),
            sm.next_value(),
        ];
        Xoshiro256pp { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_value(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 128 random bits.
    #[inline]
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_value() as u128) << 64) | self.next_value() as u128
    }

    /// The raw 256-bit state, for persistence ([`crate::state`]).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro cannot leave.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_value() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_value()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Samples a uniform integer in `[0, bound)` by 128-bit rejection sampling.
///
/// Uses the classic "zone" method: draw 128 bits, accept if below the
/// largest multiple of `bound` that fits in a `u128`. The acceptance
/// probability is at least 1/2, so the expected number of draws is < 2.
///
/// # Panics
///
/// Panics if `bound == 0`.
#[inline]
pub fn uniform_below(rng: &mut Xoshiro256pp, bound: u128) -> u128 {
    assert!(bound > 0, "uniform_below requires a positive bound");
    if bound.is_power_of_two() {
        return rng.next_u128() & (bound - 1);
    }
    // Largest multiple of `bound` representable in u128.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let x = rng.next_u128();
        if x <= zone {
            return x % bound;
        }
    }
}

/// Derives a stream of independent child seeds from a master seed.
///
/// The derivation mixes a *domain tag* so that e.g. "seed for instance 3 of
/// trial 7" and "seed for the adversary of trial 7" can never coincide.
#[derive(Debug, Clone)]
pub struct SeedTree {
    master: u64,
}

/// Domains for [`SeedTree`] derivation; each consumer of randomness gets its
/// own domain so seeds never collide across roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedDomain {
    /// Seed for the `i`-th algorithm instance of a trial.
    Instance(u64),
    /// Seed for the adversary of a trial.
    Adversary,
    /// Seed for workload generation.
    Workload,
    /// Free-form auxiliary domain.
    Aux(u64),
}

impl SeedTree {
    /// A seed tree rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedTree { master }
    }

    /// The subtree for Monte-Carlo trial `trial`.
    pub fn trial(&self, trial: u64) -> SeedTree {
        let mut sm = SplitMix64::new(self.master ^ 0xA076_1D64_78BD_642F);
        let a = sm.next_value();
        SeedTree {
            master: mix(a, trial),
        }
    }

    /// The leaf seed for `domain` within this subtree.
    pub fn seed(&self, domain: SeedDomain) -> u64 {
        let (tag, idx) = match domain {
            SeedDomain::Instance(i) => (0x01, i),
            SeedDomain::Adversary => (0x02, 0),
            SeedDomain::Workload => (0x03, 0),
            SeedDomain::Aux(i) => (0x04, i),
        };
        mix(
            self.master ^ (tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            idx,
        )
    }

    /// Convenience: a ready-to-use RNG for `domain`.
    pub fn rng(&self, domain: SeedDomain) -> Xoshiro256pp {
        Xoshiro256pp::new(self.seed(domain))
    }
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut sm = SplitMix64::new(a ^ b.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    sm.next_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_value()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_value()).collect();
        assert_eq!(xs, ys);
        // Known first output for seed 0 per the reference implementation.
        let mut z = SplitMix64::new(0);
        assert_eq!(z.next_value(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_different_seeds_diverge() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        let same = (0..16).filter(|_| a.next_value() == b.next_value()).count();
        assert!(same <= 1, "streams from different seeds should diverge");
    }

    #[test]
    fn uniform_below_respects_bound() {
        let mut rng = Xoshiro256pp::new(7);
        for bound in [
            1u128,
            2,
            3,
            7,
            20,
            1 << 20,
            (1 << 64) + 12345,
            u128::MAX / 3,
        ] {
            for _ in 0..200 {
                assert!(uniform_below(&mut rng, bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_below_power_of_two_fast_path() {
        let mut rng = Xoshiro256pp::new(11);
        for _ in 0..1000 {
            assert!(uniform_below(&mut rng, 1) == 0);
            assert!(uniform_below(&mut rng, 16) < 16);
        }
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::new(13);
        let bound = 10u128;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[uniform_below(&mut rng, bound) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for (digit, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "digit {digit} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn seed_tree_domains_are_distinct() {
        let tree = SeedTree::new(99);
        let t0 = tree.trial(0);
        let t1 = tree.trial(1);
        let seeds = [
            t0.seed(SeedDomain::Instance(0)),
            t0.seed(SeedDomain::Instance(1)),
            t0.seed(SeedDomain::Adversary),
            t0.seed(SeedDomain::Workload),
            t1.seed(SeedDomain::Instance(0)),
            t1.seed(SeedDomain::Adversary),
        ];
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn seed_tree_is_reproducible() {
        let a = SeedTree::new(5).trial(3).seed(SeedDomain::Instance(2));
        let b = SeedTree::new(5).trial(3).seed(SeedDomain::Instance(2));
        assert_eq!(a, b);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256pp::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
