//! The proxy runtime: executes [`ConnPlan`]s against live sockets.
//!
//! One accept thread hands each inbound connection its plan (seeded, or
//! scripted for tests), dials the upstream, and spawns two pump threads
//! — request direction and reply direction — that forward bytes while
//! applying the plan: byte-exact cuts, byte-exact flips, latency, and
//! chunked slow-peer writes. All timing here shapes *when* bytes move,
//! never *which* bytes move, so the damage is replayable.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use uuidp_client::frame::{HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN};
use uuidp_core::clock;
use uuidp_core::codec::fnv1a;
use uuidp_obs::{Counter, Registry, Stage, TraceRecorder};

use crate::{ChaosSpec, ConnPlan, Fault};

/// How often blocked pumps wake to check for shutdown/sever.
const POLL: Duration = Duration::from_millis(10);

/// Stall between chunked writes in slow-peer (throttle) mode.
const THROTTLE_STALL: Duration = Duration::from_micros(50);

/// Bound on dialing the upstream on behalf of a client.
const UPSTREAM_DIAL: Duration = Duration::from_secs(2);

/// Injected-fault totals, as observed by the proxy itself (the
/// client-side view of the same events lives in the stress/fleet
/// fault-class counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connections accepted (including refused ones).
    pub connections: u64,
    /// Connections refused at accept (partition windows).
    pub refused: u64,
    /// Request streams cut mid-frame.
    pub dropped_requests: u64,
    /// Reply streams cut mid-frame.
    pub truncated_replies: u64,
    /// Checksum-breaking reply flips injected.
    pub corrupted_replies: u64,
    /// Checksum-preserving reply rewrites injected.
    pub resealed_replies: u64,
    /// Connections that failed because the upstream was unreachable.
    pub upstream_failures: u64,
}

impl FaultCounts {
    /// Total mid-stream faults actually injected.
    pub fn injected(&self) -> u64 {
        self.refused
            + self.dropped_requests
            + self.truncated_replies
            + self.corrupted_replies
            + self.resealed_replies
    }

    /// Folds `other` into `self` (multi-proxy aggregation — one proxy
    /// per fleet node).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.connections += other.connections;
        self.refused += other.refused;
        self.dropped_requests += other.dropped_requests;
        self.truncated_replies += other.truncated_replies;
        self.corrupted_replies += other.corrupted_replies;
        self.resealed_replies += other.resealed_replies;
        self.upstream_failures += other.upstream_failures;
    }
}

#[derive(Default)]
struct Tally {
    connections: AtomicU64,
    refused: AtomicU64,
    dropped_requests: AtomicU64,
    truncated_replies: AtomicU64,
    corrupted_replies: AtomicU64,
    resealed_replies: AtomicU64,
    upstream_failures: AtomicU64,
}

/// Live mirror of the tally into an attached metric registry: every
/// injected fault bumps both its atomic tally slot (the proxy's own
/// ground truth, always on) and the matching `uuidp_netchaos_*`
/// counter, so a mid-run scrape sees the injected-fault totals next to
/// the service's own counters — and an end-of-run check can assert the
/// two views are *equal*, pinning the whole export path.
struct ObsMirror {
    connections: Arc<Counter>,
    refused: Arc<Counter>,
    dropped_requests: Arc<Counter>,
    truncated_replies: Arc<Counter>,
    corrupted_replies: Arc<Counter>,
    resealed_replies: Arc<Counter>,
    upstream_failures: Arc<Counter>,
    trace: Arc<TraceRecorder>,
}

enum Plans {
    Seeded { spec: ChaosSpec, seed: u64 },
    Scripted(Vec<ConnPlan>),
}

struct Shared {
    upstream: Mutex<SocketAddr>,
    plans: Plans,
    passthrough: AtomicBool,
    stop: AtomicBool,
    tally: Tally,
    obs: RwLock<Option<ObsMirror>>,
}

impl Shared {
    /// Bumps one mirrored counter, if a registry is attached. Fault
    /// sites fire at most a few times per connection, so the read lock
    /// here is nowhere near the byte-pumping hot path.
    fn obs_bump(&self, pick: fn(&ObsMirror) -> &Counter) {
        if let Some(m) = self.obs.read().expect("obs lock").as_ref() {
            pick(m).inc();
        }
    }

    /// Stamps a proxy-stage trace event, if a recorder is attached.
    /// The proxy works below frame parsing, so events carry corr 0
    /// (connection-level) with the connection number as detail context.
    fn obs_trace(&self, detail: &'static str) {
        if let Some(m) = self.obs.read().expect("obs lock").as_ref() {
            m.trace
                .record(0, 0, Stage::ProxyConn, detail, clock::monotonic_ns());
        }
    }
    fn plan_for(&self, conn: u64) -> ConnPlan {
        if self.passthrough.load(Ordering::Acquire) {
            return ConnPlan::passthrough(conn);
        }
        match &self.plans {
            Plans::Seeded { spec, seed } => ConnPlan::derive(spec, *seed, conn),
            Plans::Scripted(plans) => plans
                .get(conn as usize)
                .copied()
                .unwrap_or_else(|| ConnPlan::passthrough(conn)),
        }
    }
}

/// A running chaos proxy: a loopback listener forwarding to one
/// upstream address under a deterministic fault schedule.
pub struct ChaosProxy {
    local: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port and starts proxying to `upstream`
    /// under `spec`'s fault schedule, seeded by `seed`.
    pub fn launch(upstream: SocketAddr, spec: ChaosSpec, seed: u64) -> io::Result<ChaosProxy> {
        ChaosProxy::launch_inner(upstream, Plans::Seeded { spec, seed })
    }

    /// [`ChaosProxy::launch`] with an explicit per-connection script
    /// instead of a seeded schedule — connection `i` gets `plans[i]`,
    /// anything beyond the script is passthrough. For tests that need a
    /// precise fault on a precise connection.
    pub fn launch_scripted(upstream: SocketAddr, plans: Vec<ConnPlan>) -> io::Result<ChaosProxy> {
        ChaosProxy::launch_inner(upstream, Plans::Scripted(plans))
    }

    fn launch_inner(upstream: SocketAddr, plans: Plans) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream: Mutex::new(upstream),
            plans,
            passthrough: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            tally: Tally::default(),
            obs: RwLock::new(None),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ChaosProxy {
            local,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Repoints the proxy at a new upstream address (a crash-restarted
    /// node comes back on a fresh port). Existing connections keep
    /// their old upstream; new ones dial the new.
    pub fn retarget(&self, upstream: SocketAddr) {
        *self.shared.upstream.lock().expect("upstream lock") = upstream;
    }

    /// Suppresses (or re-enables) all faults for *new* connections.
    /// Validation phases run through the proxy in passthrough mode so
    /// their exact-count gates stay exact.
    pub fn set_passthrough(&self, on: bool) {
        self.shared.passthrough.store(on, Ordering::Release);
    }

    /// Attaches a metric registry (and trace recorder) to this proxy:
    /// from now on every injected fault bumps a `uuidp_netchaos_*`
    /// counter alongside its internal tally, and each accepted or
    /// refused connection stamps a `proxy-conn` trace event. Attach
    /// *before* driving traffic — faults injected earlier stay in
    /// [`ChaosProxy::counts`] only. The registry is typically the
    /// served node's own (via `TcpServer::registry()`), so one scrape
    /// shows injected ground truth next to the service's view of the
    /// damage.
    pub fn attach_obs(&self, registry: &Registry, trace: Arc<TraceRecorder>) {
        let mirror = ObsMirror {
            connections: registry.counter("uuidp_netchaos_connections_total"),
            refused: registry.counter("uuidp_netchaos_refused_total"),
            dropped_requests: registry.counter("uuidp_netchaos_dropped_requests_total"),
            truncated_replies: registry.counter("uuidp_netchaos_truncated_replies_total"),
            corrupted_replies: registry.counter("uuidp_netchaos_corrupted_replies_total"),
            resealed_replies: registry.counter("uuidp_netchaos_resealed_replies_total"),
            upstream_failures: registry.counter("uuidp_netchaos_upstream_failures_total"),
            trace,
        };
        *self.shared.obs.write().expect("obs lock") = Some(mirror);
    }

    /// A snapshot of the injected-fault totals.
    pub fn counts(&self) -> FaultCounts {
        let t = &self.shared.tally;
        FaultCounts {
            connections: t.connections.load(Ordering::Relaxed),
            refused: t.refused.load(Ordering::Relaxed),
            dropped_requests: t.dropped_requests.load(Ordering::Relaxed),
            truncated_replies: t.truncated_replies.load(Ordering::Relaxed),
            corrupted_replies: t.corrupted_replies.load(Ordering::Relaxed),
            resealed_replies: t.resealed_replies.load(Ordering::Relaxed),
            upstream_failures: t.upstream_failures.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and winds down the pumps.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let conn = shared.tally.connections.fetch_add(1, Ordering::Relaxed);
                shared.obs_bump(|m| &m.connections);
                let plan = shared.plan_for(conn);
                if plan.refuse {
                    shared.tally.refused.fetch_add(1, Ordering::Relaxed);
                    shared.obs_bump(|m| &m.refused);
                    shared.obs_trace("refuse");
                    // Accept-then-close: the dialer's handshake dies
                    // immediately, as inside a partition window.
                    drop(client);
                    continue;
                }
                shared.obs_trace("accept");
                let conn_shared = Arc::clone(&shared);
                thread::spawn(move || serve_connection(client, plan, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL / 4),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn serve_connection(client: TcpStream, plan: ConnPlan, shared: Arc<Shared>) {
    let upstream_addr = *shared.upstream.lock().expect("upstream lock");
    let upstream = match TcpStream::connect_timeout(&upstream_addr, UPSTREAM_DIAL) {
        Ok(s) => s,
        Err(_) => {
            shared
                .tally
                .upstream_failures
                .fetch_add(1, Ordering::Relaxed);
            shared.obs_bump(|m| &m.upstream_failures);
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    let sever = Arc::new(AtomicBool::new(false));
    let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let req_shared = Arc::clone(&shared);
    let req_sever = Arc::clone(&sever);
    let request =
        thread::spawn(move || pump(client, u2, Direction::Request, plan, req_sever, req_shared));
    pump(upstream, c2, Direction::Reply, plan, sever, shared);
    let _ = request.join();
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// client → server bytes.
    Request,
    /// server → client bytes.
    Reply,
}

/// Forwards `src` to `dst`, applying the plan's faults for `dir`.
/// Severs both sockets (in both pumps, via the shared flag) when the
/// stream ends, errors, or a cut fires.
fn pump(
    src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    plan: ConnPlan,
    sever: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    let mut src = src;
    let _ = src.set_read_timeout(Some(POLL));

    // Split the plan's single fault into this direction's triggers.
    let mut cut_at: Option<u64> = None;
    let mut flip: Option<(u64, u8)> = None;
    let mut resealer: Option<Resealer> = None;
    match (dir, plan.fault) {
        (Direction::Request, Some(Fault::DropRequestAt { offset })) => cut_at = Some(offset),
        (Direction::Reply, Some(Fault::TruncateReplyAt { offset })) => cut_at = Some(offset),
        (Direction::Reply, Some(Fault::CorruptReplyAt { offset, mask })) => {
            flip = Some((offset, mask))
        }
        (Direction::Reply, Some(Fault::CorruptReplyFrame { frame, byte, mask })) => {
            resealer = Some(Resealer::new(frame, byte, mask))
        }
        _ => {}
    }

    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    let mut slept = plan.latency_ns == 0;
    loop {
        if sever.load(Ordering::Acquire) || shared.stop.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        };
        if !slept {
            thread::sleep(Duration::from_nanos(plan.latency_ns));
            slept = true;
        }
        let mut data = buf[..n].to_vec();

        // Checksum-breaking flip: damage the scheduled byte in place.
        if let Some((offset, mask)) = flip {
            if offset >= forwarded && offset < forwarded + n as u64 {
                data[(offset - forwarded) as usize] ^= mask;
                shared
                    .tally
                    .corrupted_replies
                    .fetch_add(1, Ordering::Relaxed);
                shared.obs_bump(|m| &m.corrupted_replies);
                flip = None;
            }
        }

        // Checksum-preserving rewrite: reassemble frames, re-seal one.
        let mut out = if let Some(r) = &mut resealer {
            let mut o = Vec::with_capacity(data.len());
            if r.push(&data, &mut o) {
                shared
                    .tally
                    .resealed_replies
                    .fetch_add(1, Ordering::Relaxed);
                shared.obs_bump(|m| &m.resealed_replies);
            }
            o
        } else {
            data
        };

        // Byte-exact cut: forward the prefix, then sever both ways.
        let mut cut = false;
        if let Some(at) = cut_at {
            if forwarded + n as u64 > at {
                out.truncate(at.saturating_sub(forwarded) as usize);
                cut = true;
            }
        }
        forwarded += n as u64;

        if write_chunked(&mut dst, &out, plan.chunk).is_err() {
            break;
        }
        if cut {
            let counter = match dir {
                Direction::Request => &shared.tally.dropped_requests,
                Direction::Reply => &shared.tally.truncated_replies,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            shared.obs_bump(match dir {
                Direction::Request => |m: &ObsMirror| &m.dropped_requests,
                Direction::Reply => |m: &ObsMirror| &m.truncated_replies,
            });
            break;
        }
    }
    sever.store(true, Ordering::Release);
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Writes `data` in at-most-`chunk`-byte slices, stalling between
/// slices when throttled — the slow-peer fiction.
fn write_chunked(dst: &mut TcpStream, data: &[u8], chunk: u32) -> io::Result<()> {
    if chunk == u32::MAX || data.len() <= chunk as usize {
        return dst.write_all(data);
    }
    for piece in data.chunks(chunk.max(1) as usize) {
        dst.write_all(piece)?;
        thread::sleep(THROTTLE_STALL);
    }
    Ok(())
}

/// Frame-aware reply rewriter for checksum-preserving corruption:
/// reassembles v2 frames, flips one payload byte of the target frame,
/// recomputes the FNV-1a trailer, and releases frames downstream.
/// Degrades to raw passthrough the moment the stream stops looking
/// like v2 frames.
struct Resealer {
    target: u64,
    byte: u64,
    mask: u8,
    acc: Vec<u8>,
    seen: u64,
    done: bool,
}

impl Resealer {
    fn new(target: u64, byte: u64, mask: u8) -> Resealer {
        Resealer {
            target,
            byte,
            mask,
            acc: Vec::new(),
            seen: 0,
            done: false,
        }
    }

    /// Feeds bytes in; appends releasable bytes to `out`. Returns true
    /// if the rewrite fired during this push.
    fn push(&mut self, data: &[u8], out: &mut Vec<u8>) -> bool {
        if self.done {
            out.extend_from_slice(data);
            return false;
        }
        self.acc.extend_from_slice(data);
        let mut fired = false;
        while !self.done {
            if self.acc.len() < HEADER_LEN {
                return fired;
            }
            let sane = self.acc[..4] == MAGIC;
            let payload_len =
                u32::from_le_bytes(self.acc[13..17].try_into().expect("4 header bytes"));
            if !sane || payload_len > MAX_PAYLOAD {
                // Not a healthy v2 stream: stop pretending to parse it.
                self.done = true;
                break;
            }
            let total = HEADER_LEN + payload_len as usize + TRAILER_LEN;
            if self.acc.len() < total {
                return fired;
            }
            if self.seen == self.target && payload_len > 0 {
                let at = HEADER_LEN + (self.byte % payload_len as u64) as usize;
                self.acc[at] ^= self.mask;
                let body_end = HEADER_LEN + payload_len as usize;
                let seal = fnv1a(&self.acc[..body_end]).to_le_bytes();
                self.acc[body_end..total].copy_from_slice(&seal);
                fired = true;
                self.done = true;
            }
            out.extend_from_slice(&self.acc[..total]);
            self.acc.drain(..total);
            self.seen += 1;
        }
        // Degraded or finished: flush whatever is buffered, raw.
        out.append(&mut self.acc);
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uuidp_client::frame::{decode_frame, encode_frame, FrameBody};

    /// A minimal upstream that writes `reply` to every connection after
    /// reading at least one byte, then waits for EOF.
    fn byte_server(reply: Vec<u8>) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            while let Ok((mut sock, _)) = listener.accept() {
                let reply = reply.clone();
                thread::spawn(move || {
                    let mut first = [0u8; 1];
                    if sock.read(&mut first).map(|n| n == 0).unwrap_or(true) {
                        return;
                    }
                    let _ = sock.write_all(&reply);
                    let mut sink = [0u8; 256];
                    while matches!(sock.read(&mut sink), Ok(n) if n > 0) {}
                });
            }
        });
        (addr, handle)
    }

    fn read_to_end_lossy(sock: &mut TcpStream) -> Vec<u8> {
        let mut got = Vec::new();
        let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 1024];
        loop {
            match sock.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        got
    }

    #[test]
    fn passthrough_is_byte_faithful() {
        let reply: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        let (upstream, _server) = byte_server(reply.clone());
        let proxy = ChaosProxy::launch(upstream, ChaosSpec::none(), 1).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        sock.write_all(b"x").expect("poke");
        let got = read_to_end_lossy(&mut sock);
        assert_eq!(got, reply, "passthrough must not reshape the stream");
        assert_eq!(proxy.counts().injected(), 0);
        proxy.shutdown();
    }

    #[test]
    fn refused_connections_die_at_the_handshake() {
        let (upstream, _server) = byte_server(vec![7; 16]);
        let plan = ConnPlan {
            refuse: true,
            ..ConnPlan::passthrough(0)
        };
        let proxy = ChaosProxy::launch_scripted(upstream, vec![plan]).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        let _ = sock.write_all(b"x");
        let got = read_to_end_lossy(&mut sock);
        assert!(got.is_empty(), "a refused connection must carry no bytes");
        assert_eq!(proxy.counts().refused, 1);
        // The next connection (beyond the script) passes through.
        let mut again = TcpStream::connect(proxy.addr()).expect("dial 2");
        again.write_all(b"x").expect("poke");
        assert_eq!(read_to_end_lossy(&mut again).len(), 16);
        proxy.shutdown();
    }

    #[test]
    fn truncation_cuts_the_reply_at_the_exact_byte() {
        let reply: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let (upstream, _server) = byte_server(reply.clone());
        let plan = ConnPlan {
            fault: Some(Fault::TruncateReplyAt { offset: 437 }),
            ..ConnPlan::passthrough(0)
        };
        let proxy = ChaosProxy::launch_scripted(upstream, vec![plan]).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        sock.write_all(b"x").expect("poke");
        let got = read_to_end_lossy(&mut sock);
        assert_eq!(got, reply[..437], "cut must land on the scheduled byte");
        assert_eq!(proxy.counts().truncated_replies, 1);
        proxy.shutdown();
    }

    #[test]
    fn corruption_flips_the_exact_scheduled_byte() {
        let reply: Vec<u8> = vec![0u8; 600];
        let (upstream, _server) = byte_server(reply.clone());
        let plan = ConnPlan {
            fault: Some(Fault::CorruptReplyAt {
                offset: 123,
                mask: 0x20,
            }),
            ..ConnPlan::passthrough(0)
        };
        let proxy = ChaosProxy::launch_scripted(upstream, vec![plan]).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        sock.write_all(b"x").expect("poke");
        let got = read_to_end_lossy(&mut sock);
        assert_eq!(got.len(), reply.len());
        let mut expected = reply.clone();
        expected[123] ^= 0x20;
        assert_eq!(got, expected, "exactly one byte differs, at the offset");
        assert_eq!(proxy.counts().corrupted_replies, 1);
        proxy.shutdown();
    }

    #[test]
    fn request_drop_cuts_the_upstream_view_mid_frame() {
        // The upstream echoes back exactly what it received, so the
        // echoed length reveals what crossed the cut.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let upstream = listener.local_addr().expect("addr");
        let _server = thread::spawn(move || {
            if let Ok((mut sock, _)) = listener.accept() {
                let got = read_to_end_lossy(&mut sock);
                let _ = sock.write_all(&got);
            }
        });
        let plan = ConnPlan {
            fault: Some(Fault::DropRequestAt { offset: 10 }),
            ..ConnPlan::passthrough(0)
        };
        let proxy = ChaosProxy::launch_scripted(upstream, vec![plan]).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        let _ = sock.write_all(&[0xAB; 64]);
        let got = read_to_end_lossy(&mut sock);
        // The server saw at most 10 bytes; the sever may also have cut
        // its echo — never more than the scheduled prefix.
        assert!(
            got.len() <= 10,
            "server processed {} bytes past the cut",
            got.len()
        );
        assert_eq!(proxy.counts().dropped_requests, 1);
        proxy.shutdown();
    }

    #[test]
    fn resealed_corruption_passes_the_checksum_but_changes_the_frame() {
        // Two real v2 frames; the plan re-seals frame 1.
        let f0 = encode_frame(1, &FrameBody::ResetResp { tenant: 5 });
        let f1 = encode_frame(
            2,
            &FrameBody::LeaseResp {
                tenant: 9,
                granted: 64,
                arcs: vec![(1000, 64)],
                error: None,
            },
        );
        let mut reply = f0.clone();
        reply.extend_from_slice(&f1);
        let (upstream, _server) = byte_server(reply);
        let plan = ConnPlan {
            fault: Some(Fault::CorruptReplyFrame {
                frame: 1,
                byte: 11,
                mask: 0x04,
            }),
            ..ConnPlan::passthrough(0)
        };
        let proxy = ChaosProxy::launch_scripted(upstream, vec![plan]).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        sock.write_all(b"x").expect("poke");
        let got = read_to_end_lossy(&mut sock);
        // Frame 0 is untouched.
        let (frame0, used0) = decode_frame(&got)
            .expect("frame 0 decodes")
            .expect("complete");
        assert_eq!(frame0.body, FrameBody::ResetResp { tenant: 5 });
        assert_eq!(&got[..used0], &f0[..]);
        // Frame 1 still DECODES — the checksum was re-sealed — but is
        // not the frame the server sent. Only the audit could tell.
        let (frame1, used1) = decode_frame(&got[used0..])
            .expect("resealed frame must still pass the checksum")
            .expect("complete");
        assert_eq!(used0 + used1, got.len());
        assert_ne!(
            encode_frame(frame1.corr, &frame1.body),
            f1,
            "the resealed frame must differ from the original"
        );
        assert_eq!(proxy.counts().resealed_replies, 1);
        proxy.shutdown();
    }

    #[test]
    fn attached_registry_mirrors_the_fault_tally_exactly() {
        let reply: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let (upstream, _server) = byte_server(reply);
        let plans = vec![
            ConnPlan {
                refuse: true,
                ..ConnPlan::passthrough(0)
            },
            ConnPlan {
                fault: Some(Fault::TruncateReplyAt { offset: 100 }),
                ..ConnPlan::passthrough(1)
            },
            ConnPlan::passthrough(2),
        ];
        let proxy = ChaosProxy::launch_scripted(upstream, plans).expect("proxy");
        let registry = Registry::new();
        let trace = Arc::new(TraceRecorder::new(64));
        proxy.attach_obs(&registry, Arc::clone(&trace));
        for _ in 0..3 {
            let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
            let _ = sock.write_all(b"x");
            let _ = read_to_end_lossy(&mut sock);
        }
        // Pumps deregister asynchronously; wait for the counts to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while proxy.counts().truncated_replies == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let counts = proxy.counts();
        assert_eq!(counts.refused, 1);
        assert_eq!(counts.truncated_replies, 1);
        let snap = registry.snapshot();
        // The mirrored counters agree with the proxy's own tally — the
        // equality the chaos smoke asserts against the scrape.
        assert_eq!(
            snap.scalar("uuidp_netchaos_connections_total"),
            Some(counts.connections as f64)
        );
        assert_eq!(snap.scalar("uuidp_netchaos_refused_total"), Some(1.0));
        assert_eq!(
            snap.scalar("uuidp_netchaos_truncated_replies_total"),
            Some(1.0)
        );
        assert_eq!(
            snap.scalar("uuidp_netchaos_dropped_requests_total"),
            Some(0.0)
        );
        // Every connection stamped a proxy-conn trace event.
        let stamps = trace
            .events()
            .iter()
            .filter(|e| e.stage == Stage::ProxyConn)
            .count();
        assert_eq!(stamps, 3, "one proxy-conn stamp per connection");
        proxy.shutdown();
    }

    #[test]
    fn retarget_moves_new_connections_to_the_new_upstream() {
        let (up_a, _sa) = byte_server(vec![b'a'; 8]);
        let (up_b, _sb) = byte_server(vec![b'b'; 8]);
        let proxy = ChaosProxy::launch(up_a, ChaosSpec::none(), 3).expect("proxy");
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
        sock.write_all(b"x").expect("poke");
        assert_eq!(read_to_end_lossy(&mut sock), vec![b'a'; 8]);
        proxy.retarget(up_b);
        let mut sock = TcpStream::connect(proxy.addr()).expect("dial 2");
        sock.write_all(b"x").expect("poke");
        assert_eq!(read_to_end_lossy(&mut sock), vec![b'b'; 8]);
        proxy.shutdown();
    }

    #[test]
    fn passthrough_mode_suppresses_a_hostile_schedule() {
        let (upstream, _server) = byte_server(vec![9; 512]);
        // Every connection would be refused — unless passthrough.
        let spec = ChaosSpec {
            refuse_per_mille: 1000,
            ..ChaosSpec::none()
        };
        let proxy = ChaosProxy::launch(upstream, spec, 11).expect("proxy");
        proxy.set_passthrough(true);
        for _ in 0..4 {
            let mut sock = TcpStream::connect(proxy.addr()).expect("dial");
            sock.write_all(b"x").expect("poke");
            assert_eq!(read_to_end_lossy(&mut sock).len(), 512);
        }
        assert_eq!(proxy.counts().refused, 0);
        proxy.shutdown();
    }
}
