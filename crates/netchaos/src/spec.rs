//! The chaos spec grammar: fault intensities as data.
//!
//! A spec is either a preset name (`none` | `small` | `heavy`) or a
//! comma-separated list of `key:value` pairs, optionally starting from
//! a preset that the pairs then override:
//!
//! ```text
//! small,corrupt:80,latency_us:200
//! refuse:40,drop:60,trunc:40,throttle:256
//! ```
//!
//! | key | unit | meaning |
//! |-----|------|---------|
//! | `refuse`     | ‰ per connection | accept-then-close (partition window) |
//! | `drop`       | ‰ per connection | cut the request stream at a scheduled byte |
//! | `trunc`      | ‰ per connection | cut the reply stream at a scheduled byte |
//! | `corrupt`    | ‰ per connection | checksum-breaking reply bit-flip |
//! | `fix`        | ‰ per connection | checksum-preserving reply bit-flip (test-only; **not** in any preset) |
//! | `latency_us` | µs | fixed delay injected per connection direction |
//! | `jitter_us`  | µs | upper bound of the seeded random extra delay |
//! | `throttle`   | bytes | slow-peer mode: forward at most this many bytes per write (0 = off) |
//!
//! `drop + trunc + corrupt + fix` must stay ≤ 1000‰: a connection draws
//! one mid-stream fault at most.

/// Fault intensities for a [`crate::ChaosProxy`]. All-zero means pure
/// passthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Per-mille of connections refused at accept (partition window).
    pub refuse_per_mille: u16,
    /// Per-mille of connections whose request stream is cut mid-frame.
    pub drop_per_mille: u16,
    /// Per-mille of connections whose reply stream is cut mid-frame.
    pub trunc_per_mille: u16,
    /// Per-mille of connections with a checksum-breaking reply flip.
    pub corrupt_per_mille: u16,
    /// Per-mille of connections with a checksum-preserving reply flip.
    /// Undetectable by the transport — only the audit can catch what
    /// this does to a lease. Test-only; never set by a preset.
    pub fix_per_mille: u16,
    /// Fixed injected latency per connection direction, microseconds.
    pub latency_us: u64,
    /// Seeded jitter bound added to the fixed latency, microseconds.
    pub jitter_us: u64,
    /// Slow-peer byte-throttling: max bytes forwarded per write
    /// (0 = unthrottled).
    pub throttle: u32,
}

impl ChaosSpec {
    /// The passthrough spec: no faults, no shaping.
    pub fn none() -> Self {
        ChaosSpec::default()
    }

    /// The CI-sized preset: every fault class at mild intensity, small
    /// enough that a retrying client always gets through.
    pub fn small() -> Self {
        ChaosSpec {
            refuse_per_mille: 40,
            drop_per_mille: 60,
            trunc_per_mille: 40,
            corrupt_per_mille: 40,
            fix_per_mille: 0,
            latency_us: 50,
            jitter_us: 200,
            throttle: 0,
        }
    }

    /// The stress-the-retry-path preset.
    pub fn heavy() -> Self {
        ChaosSpec {
            refuse_per_mille: 120,
            drop_per_mille: 150,
            trunc_per_mille: 100,
            corrupt_per_mille: 100,
            fix_per_mille: 0,
            latency_us: 100,
            jitter_us: 500,
            throttle: 256,
        }
    }

    /// Whether this spec injects anything at all.
    pub fn is_passthrough(&self) -> bool {
        *self == ChaosSpec::default()
    }

    /// Parses the spec grammar (see the module docs).
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec::none();
        for (i, token) in s.split(',').enumerate() {
            let token = token.trim();
            if token.is_empty() {
                return Err("empty chaos spec token".into());
            }
            match token {
                "none" | "small" | "heavy" if i == 0 => {
                    spec = match token {
                        "none" => ChaosSpec::none(),
                        "small" => ChaosSpec::small(),
                        _ => ChaosSpec::heavy(),
                    };
                    continue;
                }
                "none" | "small" | "heavy" => {
                    return Err(format!("preset `{token}` must come first in a chaos spec"));
                }
                _ => {}
            }
            let (key, value) = token
                .split_once(':')
                .ok_or_else(|| format!("chaos token `{token}` is not `key:value` or a preset"))?;
            let parse_mille = |v: &str| -> Result<u16, String> {
                let n: u16 = v
                    .parse()
                    .map_err(|_| format!("chaos `{key}` wants an integer, got `{v}`"))?;
                if n > 1000 {
                    return Err(format!("chaos `{key}:{n}` exceeds 1000 per mille"));
                }
                Ok(n)
            };
            match key {
                "refuse" => spec.refuse_per_mille = parse_mille(value)?,
                "drop" => spec.drop_per_mille = parse_mille(value)?,
                "trunc" => spec.trunc_per_mille = parse_mille(value)?,
                "corrupt" => spec.corrupt_per_mille = parse_mille(value)?,
                "fix" => spec.fix_per_mille = parse_mille(value)?,
                "latency_us" => {
                    spec.latency_us = value.parse().map_err(|_| {
                        format!("chaos `latency_us` wants an integer, got `{value}`")
                    })?
                }
                "jitter_us" => {
                    spec.jitter_us = value
                        .parse()
                        .map_err(|_| format!("chaos `jitter_us` wants an integer, got `{value}`"))?
                }
                "throttle" => {
                    spec.throttle = value
                        .parse()
                        .map_err(|_| format!("chaos `throttle` wants an integer, got `{value}`"))?
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        let midstream = spec.drop_per_mille as u32
            + spec.trunc_per_mille as u32
            + spec.corrupt_per_mille as u32
            + spec.fix_per_mille as u32;
        if midstream > 1000 {
            return Err(format!(
                "drop+trunc+corrupt+fix = {midstream} per mille exceeds 1000"
            ));
        }
        Ok(spec)
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_passthrough() {
            return f.write_str("none");
        }
        write!(
            f,
            "refuse:{},drop:{},trunc:{},corrupt:{},fix:{},latency_us:{},jitter_us:{},throttle:{}",
            self.refuse_per_mille,
            self.drop_per_mille,
            self.trunc_per_mille,
            self.corrupt_per_mille,
            self.fix_per_mille,
            self.latency_us,
            self.jitter_us,
            self.throttle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_round_trip() {
        assert_eq!(ChaosSpec::parse("none").unwrap(), ChaosSpec::none());
        assert_eq!(ChaosSpec::parse("small").unwrap(), ChaosSpec::small());
        assert_eq!(ChaosSpec::parse("heavy").unwrap(), ChaosSpec::heavy());
        let spec = ChaosSpec::parse("small,corrupt:80,latency_us:200").unwrap();
        assert_eq!(spec.corrupt_per_mille, 80);
        assert_eq!(spec.latency_us, 200);
        assert_eq!(spec.refuse_per_mille, ChaosSpec::small().refuse_per_mille);
        // Display output re-parses to the same spec.
        let echoed = ChaosSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(echoed, spec);
        assert_eq!(ChaosSpec::none().to_string(), "none");
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            "",
            "bogus",
            "drop",
            "drop:",
            "drop:abc",
            "drop:1001",
            "drop:600,trunc:600", // over the one-fault budget
            "small,heavy",        // preset not first
            "drop:10,small",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn presets_never_use_checksum_preserving_corruption() {
        assert_eq!(ChaosSpec::small().fix_per_mille, 0);
        assert_eq!(ChaosSpec::heavy().fix_per_mille, 0);
    }
}
