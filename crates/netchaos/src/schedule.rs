//! The fault schedule: a pure function from `(spec, seed, conn#)` to a
//! per-connection plan.
//!
//! Nothing here touches a socket or a clock. That is the whole point:
//! two proxies built from the same seed and spec produce bit-identical
//! plans for every connection index, no matter how the runs are timed,
//! which is what makes a chaos regression replayable. The proxy
//! ([`crate::ChaosProxy`]) merely *executes* plans; tests pin the
//! schedule itself via [`schedule_fingerprint`].

use uuidp_core::codec::fnv1a;
use uuidp_core::rng::{uniform_below, SeedDomain, SeedTree, Xoshiro256pp};

use crate::ChaosSpec;

/// The at-most-one mid-stream fault a connection draws.
///
/// Every variant triggers at an exact byte offset (or frame index) in
/// one direction, so the damage is identical across reruns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Cut the client→server stream once `offset` request bytes have
    /// been forwarded, then sever. The server sees a torn frame and
    /// discards it: the in-flight request was provably never processed
    /// (retry-safe).
    DropRequestAt {
        /// Request-direction byte offset of the cut.
        offset: u64,
    },
    /// Forward only the first `offset` server→client bytes, then
    /// sever. The request *was* processed; its reply is lost mid-frame
    /// (lease-in-doubt).
    TruncateReplyAt {
        /// Reply-direction byte offset of the cut.
        offset: u64,
    },
    /// XOR `mask` into the reply byte at `offset` and keep forwarding.
    /// The frame checksum no longer matches: the client gets a typed
    /// connection-fatal error (lease-in-doubt).
    CorruptReplyAt {
        /// Reply-direction byte offset of the flip.
        offset: u64,
        /// Nonzero XOR mask.
        mask: u8,
    },
    /// Flip a payload byte inside reply frame number `frame` and
    /// re-seal the frame with a recomputed FNV-1a. Undetectable by the
    /// transport — the client decodes a *wrong* frame cleanly. This is
    /// the fault class only the audit can catch; test-only.
    CorruptReplyFrame {
        /// Zero-based reply frame index to damage.
        frame: u64,
        /// Which payload byte to flip (taken modulo the payload size).
        byte: u64,
        /// Nonzero XOR mask.
        mask: u8,
    },
}

/// Everything the proxy will do to one connection, decided before its
/// first byte moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPlan {
    /// The connection index this plan was derived for.
    pub conn: u64,
    /// Accept-then-close without ever dialing upstream.
    pub refuse: bool,
    /// Sleep this long before each direction's first forward.
    pub latency_ns: u64,
    /// Max bytes forwarded per write (`u32::MAX` = unthrottled).
    pub chunk: u32,
    /// The mid-stream fault, if this connection drew one.
    pub fault: Option<Fault>,
}

impl ConnPlan {
    /// The do-nothing plan (used for passthrough-mode connections).
    pub fn passthrough(conn: u64) -> ConnPlan {
        ConnPlan {
            conn,
            refuse: false,
            latency_ns: 0,
            chunk: u32::MAX,
            fault: None,
        }
    }

    /// Derives connection `conn`'s plan — a pure function of the
    /// arguments, independent of timing and of every other connection.
    pub fn derive(spec: &ChaosSpec, seed: u64, conn: u64) -> ConnPlan {
        if spec.is_passthrough() {
            return ConnPlan::passthrough(conn);
        }
        // One independent, well-mixed stream per connection index.
        let mut rng = SeedTree::new(seed).trial(conn).rng(SeedDomain::Aux(0));
        let roll = |rng: &mut Xoshiro256pp| uniform_below(rng, 1000) as u16;

        let refuse = roll(&mut rng) < spec.refuse_per_mille;
        let jitter_ns = if spec.jitter_us == 0 {
            0
        } else {
            uniform_below(&mut rng, spec.jitter_us as u128 * 1000) as u64
        };
        let latency_ns = spec
            .latency_us
            .saturating_mul(1000)
            .saturating_add(jitter_ns);
        let chunk = if spec.throttle == 0 {
            u32::MAX
        } else {
            spec.throttle.max(1)
        };

        // A single draw against the cumulative per-mille bands picks at
        // most one mid-stream fault.
        let band = roll(&mut rng);
        let drop_hi = spec.drop_per_mille;
        let trunc_hi = drop_hi + spec.trunc_per_mille;
        let corrupt_hi = trunc_hi + spec.corrupt_per_mille;
        let fix_hi = corrupt_hi + spec.fix_per_mille;
        // Offsets land within the first few requests/replies of the
        // connection (v2 frames are tens of bytes), so faults actually
        // fire on short-lived connections too.
        let offset = |rng: &mut Xoshiro256pp| 1 + uniform_below(rng, 2048) as u64;
        let mask = |rng: &mut Xoshiro256pp| 1u8 << uniform_below(rng, 8) as u8;
        let fault = if band < drop_hi {
            Some(Fault::DropRequestAt {
                offset: offset(&mut rng),
            })
        } else if band < trunc_hi {
            Some(Fault::TruncateReplyAt {
                offset: offset(&mut rng),
            })
        } else if band < corrupt_hi {
            Some(Fault::CorruptReplyAt {
                offset: offset(&mut rng),
                mask: mask(&mut rng),
            })
        } else if band < fix_hi {
            Some(Fault::CorruptReplyFrame {
                // Skip frame 0 (the HelloOk): a silently wrong lease is
                // the interesting case, a broken handshake is not.
                frame: 1 + uniform_below(&mut rng, 8) as u64,
                byte: uniform_below(&mut rng, 1 << 16) as u64,
                mask: mask(&mut rng),
            })
        } else {
            None
        };

        ConnPlan {
            conn,
            refuse,
            latency_ns,
            chunk,
            fault,
        }
    }

    fn fingerprint_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.conn.to_le_bytes());
        out.push(self.refuse as u8);
        out.extend_from_slice(&self.latency_ns.to_le_bytes());
        out.extend_from_slice(&self.chunk.to_le_bytes());
        match self.fault {
            None => out.push(0),
            Some(Fault::DropRequestAt { offset }) => {
                out.push(1);
                out.extend_from_slice(&offset.to_le_bytes());
            }
            Some(Fault::TruncateReplyAt { offset }) => {
                out.push(2);
                out.extend_from_slice(&offset.to_le_bytes());
            }
            Some(Fault::CorruptReplyAt { offset, mask }) => {
                out.push(3);
                out.extend_from_slice(&offset.to_le_bytes());
                out.push(mask);
            }
            Some(Fault::CorruptReplyFrame { frame, byte, mask }) => {
                out.push(4);
                out.extend_from_slice(&frame.to_le_bytes());
                out.extend_from_slice(&byte.to_le_bytes());
                out.push(mask);
            }
        }
    }
}

/// FNV-1a over the first `conns` connection plans — the replayability
/// pin: equal seeds and specs hash equal, anything else diverges.
pub fn schedule_fingerprint(spec: &ChaosSpec, seed: u64, conns: u64) -> u64 {
    let mut bytes = Vec::with_capacity(conns as usize * 32);
    for conn in 0..conns {
        ConnPlan::derive(spec, seed, conn).fingerprint_bytes(&mut bytes);
    }
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_index() {
        let spec = ChaosSpec::heavy();
        for conn in 0..64 {
            assert_eq!(
                ConnPlan::derive(&spec, 0xC4A0, conn),
                ConnPlan::derive(&spec, 0xC4A0, conn),
                "conn {conn}"
            );
        }
        assert_eq!(
            schedule_fingerprint(&spec, 0xC4A0, 256),
            schedule_fingerprint(&spec, 0xC4A0, 256)
        );
        assert_ne!(
            schedule_fingerprint(&spec, 0xC4A0, 256),
            schedule_fingerprint(&spec, 0xC4A1, 256),
            "different seeds must schedule differently"
        );
        assert_ne!(
            schedule_fingerprint(&ChaosSpec::small(), 0xC4A0, 256),
            schedule_fingerprint(&spec, 0xC4A0, 256),
            "different specs must schedule differently"
        );
    }

    #[test]
    fn passthrough_spec_never_schedules_a_fault() {
        for conn in 0..128 {
            let plan = ConnPlan::derive(&ChaosSpec::none(), 7, conn);
            assert_eq!(plan, ConnPlan::passthrough(conn));
        }
    }

    #[test]
    fn heavy_spec_actually_exercises_every_fault_class() {
        let spec = ChaosSpec {
            fix_per_mille: 50,
            ..ChaosSpec::heavy()
        };
        let (mut refused, mut drops, mut truncs, mut corrupts, mut fixes) = (0, 0, 0, 0, 0);
        for conn in 0..2000 {
            let plan = ConnPlan::derive(&spec, 99, conn);
            refused += plan.refuse as u32;
            match plan.fault {
                Some(Fault::DropRequestAt { offset }) => {
                    assert!(offset >= 1);
                    drops += 1;
                }
                Some(Fault::TruncateReplyAt { .. }) => truncs += 1,
                Some(Fault::CorruptReplyAt { mask, .. }) => {
                    assert_ne!(mask, 0);
                    corrupts += 1;
                }
                Some(Fault::CorruptReplyFrame { frame, mask, .. }) => {
                    assert!(frame >= 1, "the handshake frame is never re-sealed");
                    assert_ne!(mask, 0);
                    fixes += 1;
                }
                None => {}
            }
        }
        for (name, n) in [
            ("refuse", refused),
            ("drop", drops),
            ("trunc", truncs),
            ("corrupt", corrupts),
            ("fix", fixes),
        ] {
            assert!(n > 0, "{name} never drawn in 2000 plans");
        }
    }
}
