//! # uuidp-netchaos — the adversarial network layer
//!
//! A deterministic, seed-scheduled loopback TCP proxy that sits between
//! any client and a `TcpServer`/fleet node and injects faults from a
//! reproducible schedule:
//!
//! ```text
//!   client ──► ChaosProxy (127.0.0.1:0) ──► server
//!                 │
//!                 └─ per-connection ConnPlan, pure f(spec, seed, conn#):
//!                    refuse · drop request at byte k · truncate reply
//!                    at byte k · corrupt reply (checksum-breaking or
//!                    checksum-preserving) · latency+jitter · throttle
//! ```
//!
//! The contract that makes chaos regressions *replayable*: a
//! [`ConnPlan`] is a pure function of `(spec, seed, connection index)`
//! — never of wall-clock time — and every fault triggers at an exact
//! **byte offset** in one direction of the stream. TCP delivers bytes
//! reliably and in order, so the same seed cuts the same request,
//! truncates the same reply, and flips the same bit, bit-for-bit,
//! on every run ([`schedule_fingerprint`] pins this).
//!
//! What each fault looks like from the client:
//!
//! * **refuse** — the proxy accepts and instantly closes (a partition
//!   window / refused dial): the handshake fails, *retry-safe*.
//! * **drop** — the client→server stream is cut mid-request: the server
//!   sees a torn frame and discards it, so the request was never
//!   processed — *retry-safe* by construction.
//! * **trunc** — the server→client stream is cut mid-reply: the server
//!   *did* process the request — *lease-in-doubt*; a retried lease
//!   yields fresh IDs and the lost grant leaks (never duplicates).
//! * **corrupt** — a reply byte is flipped. Checksum-breaking flips are
//!   caught by the v2 frame checksum (typed connection-fatal error,
//!   *lease-in-doubt*). Checksum-preserving flips ([`Fault`]
//!   `CorruptReplyFrame`) re-seal the frame with a valid FNV-1a — the
//!   transport cannot detect them, which is exactly why the *audit*
//!   exists; they are for tests of that last line of defense and never
//!   appear in the driven presets.
//! * **latency / jitter / throttle** — sleeps and chunked writes; they
//!   shape tail latency but never the byte stream, so audit totals
//!   stay reproducible while p99/p999 feel the pain.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod proxy;
mod schedule;
mod spec;

pub use proxy::{ChaosProxy, FaultCounts};
pub use schedule::{schedule_fingerprint, ConnPlan, Fault};
pub use spec::ChaosSpec;
