//! The readiness-driven v2 I/O core.
//!
//! One reactor thread owns **all** v2 connection state (the single-
//! actor ownership shape of holochain's `kitsune_p2p` event loops):
//! sockets, reassembly buffers, and per-connection reply queues all
//! live here, and every other thread talks to the reactor exclusively
//! through [`ReactorCmd`] messages — the accept loop adopts new
//! connections, pool/control workers queue reply frames, stop paths
//! send [`ReactorCmd::Stop`]. No locks guard connection state because
//! nothing else can reach it.
//!
//! Readiness comes from one of two interchangeable [`Poller`] backends:
//!
//! * **epoll** (Linux, default): level-triggered `epoll_wait` via the
//!   raw-syscall [`crate::sys`] module, with an `eventfd` waker so
//!   command senders can interrupt an indefinite block. An idle server
//!   — however many thousands of connections it holds — makes **zero**
//!   wakeups until a socket or command stirs.
//! * **poll rotation** (the `poll-fallback` feature, and every
//!   non-Linux target): the previous demux shape — treat every
//!   connection as ready each pass, yield while traffic flows, back
//!   off to 200µs sleeps when quiet. Portable, but idle cost scales
//!   with connection count.
//!
//! Reads are capped per connection per pass (bytes *and* dispatched
//! frames), so a firehosing peer cannot starve its siblings: leftover
//! socket bytes re-report under level-triggered readiness, and
//! leftover *decoded-but-buffered* frames park the connection in the
//! reactor's backlog, which is pumped again on the next pass with a
//! zero timeout. Replies never block a pool worker: they queue on the
//! owning connection and are flushed with **vectored writes** on write
//! readiness, so a batch of replies to one multiplexing client retires
//! in one syscall (`uuidp_net_replies_per_syscall` histograms exactly
//! that ratio). A peer that stops reading accumulates queued replies
//! until [`MAX_OUT_QUEUE`] and is then severed — queued-reply
//! backpressure replaces the old lock-held spin/sleep send.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

#[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
use std::os::fd::AsRawFd;

use uuidp_client::frame;
use uuidp_obs::{AtomicHistogram, Counter, Gauge};

use crate::net::{
    dispatch_frame, handle_v1_connection, CtrlJob, Disposition, PoolJob, ServerState, V2Conn,
};
use crate::reassembly::{BufPool, ReadBuf};
use crate::service::ServiceReport;
#[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
use crate::sys;

/// Socket bytes one connection may read per pump pass.
const READ_CAP: usize = 64 * 1024;
/// Frames one connection may dispatch per pump pass.
const FRAME_CAP: usize = 128;
/// Queued-reply bytes after which a non-reading peer is severed.
const MAX_OUT_QUEUE: usize = 64 * 1024 * 1024;
/// Reply buffers coalesced into one vectored write.
const MAX_IOV: usize = 64;
/// Poll timeout while finished v1 handler threads await reaping.
const V1_REAP_MS: i32 = 100;
/// The poller token reserved for the epoll waker's eventfd.
#[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
const WAKER_TOKEN: u64 = u64::MAX;

/// Which readiness backend a server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetBackend {
    /// epoll when compiled in (Linux without `poll-fallback`),
    /// otherwise the poll rotation.
    Auto,
    /// epoll, failing `bind` where it is not compiled in.
    Epoll,
    /// The portable poll rotation, everywhere.
    Poll,
}

impl NetBackend {
    /// Whether the epoll backend exists in this build.
    pub fn epoll_compiled() -> bool {
        cfg!(all(target_os = "linux", not(feature = "poll-fallback")))
    }
}

impl std::str::FromStr for NetBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(NetBackend::Auto),
            "epoll" => Ok(NetBackend::Epoll),
            "poll" => Ok(NetBackend::Poll),
            other => Err(format!(
                "unknown net backend `{other}` (expected auto, epoll, or poll)"
            )),
        }
    }
}

impl std::fmt::Display for NetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NetBackend::Auto => "auto",
            NetBackend::Epoll => "epoll",
            NetBackend::Poll => "poll",
        })
    }
}

/// Raises this process's open-file soft limit toward `target` (the
/// 10k-connection bench needs ~3 fds per connection). Returns the
/// resulting limit, or `None` where unsupported (non-Linux builds and
/// the `poll-fallback` feature, which compile out the syscall surface).
pub fn raise_nofile(target: u64) -> Option<u64> {
    #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
    {
        sys::raise_nofile(target).ok()
    }
    #[cfg(not(all(target_os = "linux", not(feature = "poll-fallback"))))]
    {
        let _ = target;
        None
    }
}

/// Wakes a possibly blocked reactor from another thread. The epoll
/// backend blocks in `epoll_wait`, so the waker is an eventfd
/// registered like any other fd; the rotation backend sleeps in short
/// slices and checks the flag between them.
pub(crate) struct Waker {
    flag: AtomicBool,
    #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
    efd: Option<sys::EventFd>,
}

impl Waker {
    fn flag_only() -> Waker {
        Waker {
            flag: AtomicBool::new(false),
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            efd: None,
        }
    }

    pub(crate) fn wake(&self) {
        self.flag.store(true, Ordering::Release);
        #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
        if let Some(efd) = &self.efd {
            efd.signal();
        }
    }

    /// Consumes a pending wake, returning whether one was set.
    fn take(&self) -> bool {
        self.flag.swap(false, Ordering::Acquire)
    }
}

/// Commands into the reactor thread. This is the *entire* write surface
/// other threads have over connection state.
pub(crate) enum ReactorCmd {
    /// A freshly accepted (nonblocking, nodelay) socket to own.
    Adopt(TcpStream),
    /// One encoded frame to queue on `conn_id`'s reply queue. `done`
    /// (used by the shutdown path) is signalled when the frame has
    /// fully reached the socket — or with an error if it cannot.
    Reply {
        conn_id: u64,
        bytes: Vec<u8>,
        done: Option<SyncSender<io::Result<()>>>,
    },
    /// Drop everything and exit (the stop paths' abrupt sever).
    Stop,
}

/// A cloneable handle over the reactor's command channel + waker.
#[derive(Clone)]
pub(crate) struct ReactorHandle {
    tx: Sender<ReactorCmd>,
    waker: Arc<Waker>,
}

impl ReactorHandle {
    pub(crate) fn new(tx: Sender<ReactorCmd>, waker: Arc<Waker>) -> ReactorHandle {
        ReactorHandle { tx, waker }
    }

    /// Hands a new connection to the reactor. `false` when the reactor
    /// is gone (the server is coming down).
    pub(crate) fn adopt(&self, stream: TcpStream) -> bool {
        let ok = self.tx.send(ReactorCmd::Adopt(stream)).is_ok();
        self.waker.wake();
        ok
    }

    /// Queues one encoded reply frame for `conn_id`.
    pub(crate) fn reply(
        &self,
        conn_id: u64,
        bytes: Vec<u8>,
        done: Option<SyncSender<io::Result<()>>>,
    ) -> io::Result<()> {
        self.tx
            .send(ReactorCmd::Reply {
                conn_id,
                bytes,
                done,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "reactor is gone"))?;
        self.waker.wake();
        Ok(())
    }

    /// Tells the reactor to drop everything and exit.
    pub(crate) fn stop(&self) {
        let _ = self.tx.send(ReactorCmd::Stop);
        self.waker.wake();
    }
}

/// One readiness report.
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
}

enum PollerImpl {
    #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
    Epoll {
        ep: sys::Epoll,
        buf: Vec<sys::EpollEvent>,
    },
    Rotation {
        tokens: Vec<u64>,
        idle_passes: u32,
    },
}

/// The readiness source, either backend behind one registration and
/// wait surface.
pub(crate) struct Poller {
    imp: PollerImpl,
    waker: Arc<Waker>,
}

impl Poller {
    /// Builds the poller (and its waker) for `backend`.
    pub(crate) fn new(backend: NetBackend) -> io::Result<Poller> {
        let rotation = || Poller {
            imp: PollerImpl::Rotation {
                tokens: Vec::new(),
                idle_passes: 0,
            },
            waker: Arc::new(Waker::flag_only()),
        };
        match backend {
            NetBackend::Poll => Ok(rotation()),
            NetBackend::Auto | NetBackend::Epoll => {
                #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
                {
                    let ep = sys::Epoll::new()?;
                    let efd = sys::EventFd::new()?;
                    ep.add(efd.raw(), WAKER_TOKEN, false)?;
                    Ok(Poller {
                        imp: PollerImpl::Epoll {
                            ep,
                            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
                        },
                        waker: Arc::new(Waker {
                            flag: AtomicBool::new(false),
                            efd: Some(efd),
                        }),
                    })
                }
                #[cfg(not(all(target_os = "linux", not(feature = "poll-fallback"))))]
                {
                    match backend {
                        NetBackend::Auto => Ok(rotation()),
                        _ => Err(io::Error::new(
                            io::ErrorKind::Unsupported,
                            "the epoll backend is not compiled into this build \
                             (non-Linux target or the poll-fallback feature)",
                        )),
                    }
                }
            }
        }
    }

    /// The resolved backend, for logs/tests/benches.
    pub(crate) fn name(&self) -> &'static str {
        match self.imp {
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            PollerImpl::Epoll { .. } => "epoll",
            PollerImpl::Rotation { .. } => "poll",
        }
    }

    pub(crate) fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    fn register(&mut self, stream: &TcpStream, token: u64) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            PollerImpl::Epoll { ep, .. } => ep.add(stream.as_raw_fd(), token, false),
            PollerImpl::Rotation { tokens, .. } => {
                let _ = stream;
                tokens.push(token);
                Ok(())
            }
        }
    }

    /// Toggles write interest (a no-op for the rotation, which reports
    /// every connection writable each pass).
    fn set_writable(&mut self, stream: &TcpStream, token: u64, writable: bool) {
        match &mut self.imp {
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            PollerImpl::Epoll { ep, .. } => {
                let _ = ep.modify(stream.as_raw_fd(), token, writable);
            }
            PollerImpl::Rotation { .. } => {
                let _ = (stream, token, writable);
            }
        }
    }

    fn deregister(&mut self, stream: &TcpStream, token: u64) {
        match &mut self.imp {
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            PollerImpl::Epoll { ep, .. } => {
                let _ = ep.del(stream.as_raw_fd());
                let _ = token;
            }
            PollerImpl::Rotation { tokens, .. } => {
                let _ = stream;
                tokens.retain(|t| *t != token);
            }
        }
    }

    /// Blocks (bounded by `timeout_ms`; `-1` = forever) for readiness,
    /// filling `out`. The epoll arm translates kernel events — errors
    /// and hangups count as readable so the pump observes the failure;
    /// the rotation arm reports every registered token read+write
    /// ready, yielding while passes are productive (`timeout_ms == 0`)
    /// and backing off to 200µs sleep slices — waker-interruptible —
    /// when idle.
    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) {
        out.clear();
        match &mut self.imp {
            #[cfg(all(target_os = "linux", not(feature = "poll-fallback")))]
            PollerImpl::Epoll { ep, buf } => {
                let n = ep.wait(buf, timeout_ms).unwrap_or(0);
                for ev in buf.iter().take(n) {
                    let bits = { ev.events };
                    let token = { ev.data };
                    if token == WAKER_TOKEN {
                        if let Some(efd) = &self.waker.efd {
                            efd.drain();
                        }
                        self.waker.take();
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: bits
                            & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                            != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                    });
                }
            }
            PollerImpl::Rotation {
                tokens,
                idle_passes,
            } => {
                if timeout_ms == 0 {
                    *idle_passes = 0;
                    std::thread::yield_now();
                } else {
                    // One backoff slice per wait: the reactor calls
                    // again immediately, so quiet periods settle into a
                    // 200µs cadence — the cost the epoll backend (and
                    // BENCH_PR8) measures against.
                    *idle_passes = idle_passes.saturating_add(1);
                    if !self.waker.take() {
                        if *idle_passes < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                }
                self.waker.take();
                for token in tokens.iter() {
                    out.push(Event {
                        token: *token,
                        readable: true,
                        writable: true,
                    });
                }
            }
        }
    }
}

/// One queued reply frame (plus the flush ack the shutdown path uses).
struct OutFrame {
    bytes: Vec<u8>,
    at: usize,
    done: Option<SyncSender<io::Result<()>>>,
}

/// One connection, as the reactor owns it.
struct NetConn {
    conn_id: u64,
    stream: TcpStream,
    shared: Arc<V2Conn>,
    /// Reassembly buffer; `None` while nothing is pending (the buffer
    /// lives in the pool between partial frames).
    rbuf: Option<ReadBuf>,
    out: VecDeque<OutFrame>,
    out_bytes: usize,
    /// First byte seen and judged to be v2.
    sniffed: bool,
    hello_done: bool,
    /// Write interest currently armed with the poller.
    write_interest: bool,
    /// Pass number this connection was last pumped on (dedupes the
    /// readable-event and backlog pump sources).
    pumped_pass: u64,
    /// Has queued replies not yet flushed this pass.
    dirty: bool,
}

/// What one pump pass decided about a connection.
enum Fate {
    Keep {
        backlog: bool,
    },
    /// Sever — after best-effort writing `farewell` (a pre-encoded
    /// fatal error frame), so protocol violations still get their
    /// diagnostic before EOF.
    Remove {
        farewell: Option<Vec<u8>>,
    },
    /// First byte says v1: hand socket + buffered prefix to a blocking
    /// line-protocol handler thread.
    HandOffV1(Vec<u8>),
}

/// Everything `bind_with` wires into the reactor thread.
pub(crate) struct ReactorSeed {
    pub state: Arc<ServerState>,
    pub poller: Poller,
    pub cmd_rx: Receiver<ReactorCmd>,
    pub handle: ReactorHandle,
    pub pool_txs: Vec<SyncSender<PoolJob>>,
    pub ctrl_tx: SyncSender<CtrlJob>,
    pub accept_v2: bool,
    pub report_tx: SyncSender<ServiceReport>,
    pub local_addr: std::net::SocketAddr,
}

/// The reactor: see the module docs for the full shape.
pub(crate) struct Reactor {
    state: Arc<ServerState>,
    poller: Poller,
    cmd_rx: Receiver<ReactorCmd>,
    handle: ReactorHandle,
    pool_txs: Vec<SyncSender<PoolJob>>,
    ctrl_tx: SyncSender<CtrlJob>,
    accept_v2: bool,
    report_tx: SyncSender<ServiceReport>,
    local_addr: std::net::SocketAddr,
    conns: HashMap<u64, NetConn>,
    /// Connections holding complete-but-undispatched frames (hit the
    /// per-pass frame cap); pumped again next pass with a 0 timeout.
    backlog: Vec<u64>,
    /// Connections with replies queued this pass, to flush.
    dirty: Vec<u64>,
    pool: BufPool,
    scratch: Vec<u8>,
    v1_handlers: Vec<JoinHandle<()>>,
    pass: u64,
    wakeups: Arc<Counter>,
    replies_per_syscall: Arc<AtomicHistogram>,
    v1_live: Arc<Gauge>,
    /// Reply bytes queued across all connections, awaiting flush.
    out_queue: Arc<Gauge>,
    /// Connections the reactor severed (backpressure cap, dead write,
    /// protocol violation) — normal EOFs do not count.
    severed: Arc<Counter>,
}

impl Reactor {
    pub(crate) fn new(seed: ReactorSeed) -> Reactor {
        let registry = &seed.state.registry;
        let wakeups = registry.counter("uuidp_net_wakeups_total");
        let replies_per_syscall = registry.histogram("uuidp_net_replies_per_syscall");
        let v1_live = registry.gauge("uuidp_net_v1_handlers_live");
        let out_queue = registry.gauge("uuidp_net_out_queue_bytes");
        let severed = registry.counter("uuidp_net_severed_total");
        Reactor {
            state: seed.state,
            poller: seed.poller,
            cmd_rx: seed.cmd_rx,
            handle: seed.handle,
            pool_txs: seed.pool_txs,
            ctrl_tx: seed.ctrl_tx,
            accept_v2: seed.accept_v2,
            report_tx: seed.report_tx,
            local_addr: seed.local_addr,
            conns: HashMap::new(),
            backlog: Vec::new(),
            dirty: Vec::new(),
            pool: BufPool::new(),
            scratch: vec![0u8; 16 * 1024],
            v1_handlers: Vec::new(),
            pass: 0,
            wakeups,
            replies_per_syscall,
            v1_live,
            out_queue,
            severed,
        }
    }

    /// The reactor thread's main loop.
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if !self.backlog.is_empty() {
                0 // parked frames to dispatch: come straight back
            } else if !self.v1_handlers.is_empty() {
                V1_REAP_MS // finished v1 handlers want reaping
            } else {
                -1 // idle: block until a socket or a command stirs
            };
            self.poller.wait(&mut events, timeout);
            self.wakeups.inc();
            self.pass += 1;
            if self.drain_cmds() {
                break;
            }
            self.reap_v1();
            // Pump: readiness first, then the parked backlog.
            let parked = std::mem::take(&mut self.backlog);
            for ev in &events {
                if ev.readable {
                    self.pump(ev.token);
                }
            }
            for conn_id in parked {
                let already = self
                    .conns
                    .get(&conn_id)
                    .is_none_or(|c| c.pumped_pass == self.pass);
                if !already {
                    self.pump(conn_id);
                }
            }
            // Replies dispatched above (hello-ok, metrics, errors) and
            // anything pool workers finished meanwhile.
            if self.drain_cmds() {
                break;
            }
            // Flush: write-ready connections, then freshly dirty ones.
            for ev in &events {
                if ev.writable {
                    self.flush(ev.token);
                }
            }
            let dirty = std::mem::take(&mut self.dirty);
            for conn_id in dirty {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.dirty = false;
                }
                self.flush(conn_id);
            }
        }
        self.finish();
    }

    /// Applies queued commands; `true` means Stop was seen.
    fn drain_cmds(&mut self) -> bool {
        let mut stop = false;
        while let Ok(cmd) = self.cmd_rx.try_recv() {
            match cmd {
                ReactorCmd::Adopt(stream) => self.adopt(stream),
                ReactorCmd::Reply {
                    conn_id,
                    bytes,
                    done,
                } => self.queue_reply(conn_id, bytes, done),
                ReactorCmd::Stop => stop = true,
            }
        }
        stop
    }

    fn adopt(&mut self, stream: TcpStream) {
        let Some(conn_id) = self.state.register(&stream) else {
            return; // racing a shutdown; already severed
        };
        if self.poller.register(&stream, conn_id).is_err() {
            self.state.deregister(conn_id);
            return;
        }
        let shared = Arc::new(V2Conn::new(conn_id, self.handle.clone()));
        self.conns.insert(
            conn_id,
            NetConn {
                conn_id,
                stream,
                shared,
                rbuf: None,
                out: VecDeque::new(),
                out_bytes: 0,
                sniffed: false,
                hello_done: false,
                write_interest: false,
                pumped_pass: 0,
                dirty: false,
            },
        );
    }

    fn queue_reply(
        &mut self,
        conn_id: u64,
        bytes: Vec<u8>,
        done: Option<SyncSender<io::Result<()>>>,
    ) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            // The connection died before its reply was written — the
            // same race a crash mid-reply produces.
            if let Some(done) = done {
                let _ = done.send(Err(io::ErrorKind::BrokenPipe.into()));
            }
            return;
        };
        conn.out_bytes += bytes.len();
        self.out_queue.add(bytes.len() as i64);
        conn.out.push_back(OutFrame { bytes, at: 0, done });
        if conn.out_bytes > MAX_OUT_QUEUE {
            self.severed.inc();
            // The peer stopped reading long ago: backpressure by sever,
            // not by blocking a worker thread.
            self.remove(conn_id);
            return;
        }
        if !conn.dirty {
            conn.dirty = true;
            self.dirty.push(conn_id);
        }
    }

    /// Reaps finished v1 handler threads (the old demux held every
    /// JoinHandle until shutdown — one leak per v1 connection).
    fn reap_v1(&mut self) {
        if self.v1_handlers.is_empty() {
            return;
        }
        self.v1_handlers.retain(|h| !h.is_finished());
        self.v1_live.set(self.v1_handlers.len() as i64);
    }

    fn pump(&mut self, conn_id: u64) {
        let Some(mut conn) = self.conns.remove(&conn_id) else {
            return;
        };
        conn.pumped_pass = self.pass;
        match self.pump_inner(&mut conn) {
            Fate::Keep { backlog } => {
                if backlog {
                    self.backlog.push(conn_id);
                }
                self.conns.insert(conn_id, conn);
            }
            Fate::Remove { farewell } => {
                // A farewell frame means the reactor is severing the
                // connection over a violation; a bare removal is the
                // peer's own EOF and does not count as a sever.
                if let Some(bytes) = farewell {
                    self.severed.inc();
                    write_farewell(&conn.stream, &bytes);
                }
                self.dispose(conn);
            }
            Fate::HandOffV1(prefix) => self.handoff_v1(conn, prefix),
        }
    }

    fn pump_inner(&mut self, conn: &mut NetConn) -> Fate {
        let mut read_bytes = 0usize;
        let mut closed = false;
        while read_bytes < READ_CAP {
            let want = (READ_CAP - read_bytes).min(self.scratch.len());
            match (&conn.stream).read(&mut self.scratch[..want]) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    read_bytes += n;
                    if !conn.sniffed {
                        // First bytes ever: negotiate the protocol.
                        if self.scratch[0] != frame::MAGIC[0] {
                            return Fate::HandOffV1(self.scratch[..n].to_vec());
                        }
                        conn.sniffed = true;
                        if !self.accept_v2 {
                            return Fate::Remove {
                                farewell: Some(error_frame(
                                    0,
                                    "protocol v2 is disabled on this listener",
                                )),
                            };
                        }
                    }
                    let pool = &mut self.pool;
                    let rbuf = conn.rbuf.get_or_insert_with(|| pool.get());
                    rbuf.extend(&self.scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        // Dispatch complete frames, capped per pass — unless the peer
        // is gone, in which case whatever it pipelined before closing
        // still deserves dispatch (nobody is left to starve).
        let mut frames = 0usize;
        if let Some(rbuf) = conn.rbuf.as_mut() {
            while closed || frames < FRAME_CAP {
                match frame::decode_frame(rbuf.pending()) {
                    Ok(None) => break,
                    Ok(Some((f, used))) => {
                        rbuf.consume(used);
                        frames += 1;
                        match dispatch_frame(
                            &conn.shared,
                            &mut conn.hello_done,
                            f,
                            &self.state,
                            &self.pool_txs,
                            &self.ctrl_tx,
                        ) {
                            Disposition::Keep => {}
                            Disposition::Sever { farewell } => {
                                return Fate::Remove {
                                    farewell: farewell
                                        .map(|(corr, message)| error_frame(corr, &message)),
                                };
                            }
                        }
                    }
                    Err(e) => {
                        // Framing errors are connection-fatal: a binary
                        // stream cannot be resynchronized.
                        return Fate::Remove {
                            farewell: Some(error_frame(0, &e.to_string())),
                        };
                    }
                }
            }
            let backlog = !closed && has_complete_frame(rbuf.pending());
            rbuf.compact();
            if rbuf.is_empty() {
                if let Some(rbuf) = conn.rbuf.take() {
                    self.pool.put(rbuf);
                }
            }
            if closed {
                return Fate::Remove { farewell: None };
            }
            return Fate::Keep { backlog };
        }
        if closed {
            Fate::Remove { farewell: None }
        } else {
            Fate::Keep { backlog: false }
        }
    }

    /// Flushes one connection's reply queue with vectored writes.
    fn flush(&mut self, conn_id: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            while !conn.out.is_empty() {
                let mut iovs: Vec<io::IoSlice<'_>> =
                    Vec::with_capacity(conn.out.len().min(MAX_IOV));
                for (i, frame) in conn.out.iter().take(MAX_IOV).enumerate() {
                    let at = if i == 0 { frame.at } else { 0 };
                    iovs.push(io::IoSlice::new(&frame.bytes[at..]));
                }
                match (&conn.stream).write_vectored(&iovs) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(mut n) => {
                        conn.out_bytes -= n;
                        self.out_queue.add(-(n as i64));
                        let mut retired = 0u64;
                        while n > 0 {
                            let front = conn.out.front_mut().expect("retiring written bytes");
                            let left = front.bytes.len() - front.at;
                            if n >= left {
                                n -= left;
                                if let Some(done) = conn.out.pop_front().and_then(|f| f.done) {
                                    let _ = done.send(Ok(()));
                                }
                                retired += 1;
                            } else {
                                front.at += n;
                                n = 0;
                            }
                        }
                        // How many whole replies this one syscall moved:
                        // the batching ratio the vectored flush exists
                        // for (the old path was one write per reply).
                        self.replies_per_syscall.record_ns(retired);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            // A write to a dead peer is a forced sever, not a clean EOF.
            self.severed.inc();
            self.remove(conn_id);
            return;
        }
        // Arm write interest only while bytes wait (otherwise a mostly
        // idle connection would wake the reactor on every pass).
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let want = !conn.out.is_empty();
        if want != conn.write_interest {
            conn.write_interest = want;
            self.poller.set_writable(&conn.stream, conn_id, want);
        }
    }

    /// Removes and disposes one connection.
    fn remove(&mut self, conn_id: u64) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            self.dispose(conn);
        }
    }

    fn dispose(&mut self, conn: NetConn) {
        self.out_queue.add(-(conn.out_bytes as i64));
        self.poller.deregister(&conn.stream, conn.conn_id);
        self.state.deregister(conn.conn_id);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        for frame in conn.out {
            if let Some(done) = frame.done {
                let _ = done.send(Err(io::ErrorKind::BrokenPipe.into()));
            }
        }
        if let Some(rbuf) = conn.rbuf {
            self.pool.put(rbuf);
        }
    }

    /// Hands a sniffed-as-v1 connection to a blocking handler thread.
    fn handoff_v1(&mut self, conn: NetConn, prefix: Vec<u8>) {
        self.poller.deregister(&conn.stream, conn.conn_id);
        // Blocking reads can only be unblocked by a stored write half —
        // store one (and bail if a shutdown races the promotion).
        if !self.state.promote_v1(conn.conn_id, &conn.stream) {
            if let Some(rbuf) = conn.rbuf {
                self.pool.put(rbuf);
            }
            return;
        }
        // Back to blocking: the v1 handler thread owns it now.
        let _ = conn.stream.set_nonblocking(false);
        let state = Arc::clone(&self.state);
        let report_tx = self.report_tx.clone();
        let local_addr = self.local_addr;
        let conn_id = conn.conn_id;
        let stream = conn.stream;
        self.v1_handlers.push(std::thread::spawn(move || {
            handle_v1_connection(stream, conn_id, prefix, state, report_tx, local_addr);
        }));
        self.v1_live.set(self.v1_handlers.len() as i64);
    }

    /// The abrupt exit every stop path funnels into: pending flush acks
    /// fail, connections drop (the stop path already severed the
    /// registered write halves), v1 handlers are joined out.
    fn finish(mut self) {
        let conns: Vec<NetConn> = self.conns.drain().map(|(_, c)| c).collect();
        for conn in conns {
            self.dispose(conn);
        }
        for handle in self.v1_handlers.drain(..) {
            let _ = handle.join();
        }
        self.v1_live.set(0);
    }
}

fn error_frame(corr: u64, message: &str) -> Vec<u8> {
    frame::encode_frame(
        corr,
        &frame::FrameBody::Error {
            message: message.into(),
        },
    )
}

/// Best-effort synchronous write of a farewell error frame to a
/// connection that is about to be severed (its queue is forfeit, but a
/// protocol-violation diagnostic must still reach the peer). Bounded:
/// error frames are tiny, so a send buffer with no room for one means
/// the peer was not reading anyway.
fn write_farewell(stream: &TcpStream, bytes: &[u8]) {
    let mut at = 0;
    let mut stalls = 0u32;
    while at < bytes.len() && stalls < 500 {
        match (&*stream).write(&bytes[at..]) {
            Ok(0) => return,
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                stalls += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Whether `pending` holds at least one complete frame (or a header so
/// corrupt the decoder will fault it, which also deserves a pump).
/// Header-only peek — no payload decode, no checksum.
fn has_complete_frame(pending: &[u8]) -> bool {
    if pending.len() < frame::HEADER_LEN {
        return false;
    }
    let len = u32::from_le_bytes([pending[13], pending[14], pending[15], pending[16]]);
    if len > frame::MAX_PAYLOAD {
        return true; // decode_frame will sever it
    }
    pending.len() >= frame::HEADER_LEN + len as usize + frame::TRAILER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_parse_and_render() {
        for (s, b) in [
            ("auto", NetBackend::Auto),
            ("epoll", NetBackend::Epoll),
            ("poll", NetBackend::Poll),
        ] {
            assert_eq!(s.parse::<NetBackend>().unwrap(), b);
            assert_eq!(b.to_string(), s);
        }
        assert!("select".parse::<NetBackend>().is_err());
    }

    #[test]
    fn poller_resolution_matches_the_build() {
        let auto = Poller::new(NetBackend::Auto).unwrap();
        if NetBackend::epoll_compiled() {
            assert_eq!(auto.name(), "epoll");
            assert_eq!(Poller::new(NetBackend::Epoll).unwrap().name(), "epoll");
        } else {
            assert_eq!(auto.name(), "poll");
            assert!(Poller::new(NetBackend::Epoll).is_err());
        }
        assert_eq!(Poller::new(NetBackend::Poll).unwrap().name(), "poll");
    }

    #[test]
    fn complete_frame_peek_agrees_with_the_decoder() {
        let bytes = frame::encode_frame(9, &frame::FrameBody::DrainReq);
        for cut in 0..bytes.len() {
            let complete = has_complete_frame(&bytes[..cut]);
            assert!(!complete, "prefix of {cut} bytes is not a whole frame");
        }
        assert!(has_complete_frame(&bytes));
        // A corrupt over-cap length still reports pump-worthy.
        let mut corrupt = bytes.clone();
        corrupt[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(has_complete_frame(&corrupt));
    }
}
